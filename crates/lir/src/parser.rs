//! Parser for the textual LIR format produced by the printer.
//!
//! `parse_module(print_module(m))` reconstructs `m` exactly (the property
//! suite checks this as a fixpoint). The grammar is the small subset of
//! `.ll` syntax the printer emits.

use std::fmt;

use crate::module::{
    BinOp, Block, BlockId, CastKind, Function, Global, GlobalInit, IcmpPred, Inst, InstKind,
    Module, Operand, ValueId,
};
use crate::types::Ty;

/// A parse failure with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    s: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str, line: usize) -> Self {
        Cursor { s, pos: 0, line }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: msg.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(' ') || self.rest().starts_with('\t') {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{tok}` at `{}`",
                &self.rest()[..self.rest().len().min(20)]
            )))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '.'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected identifier"));
        }
        let id = rest[..end].to_string();
        self.pos += end;
        Ok(id)
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        let neg = rest.starts_with('-');
        let start = if neg { 1 } else { 0 };
        let end = rest[start..]
            .char_indices()
            .find(|(_, c)| !c.is_ascii_digit())
            .map(|(i, _)| i + start)
            .unwrap_or(rest.len());
        if end == start {
            return Err(self.err("expected integer"));
        }
        let v: i64 = rest[..end]
            .parse()
            .map_err(|e| self.err(format!("bad integer: {e}")))?;
        self.pos += end;
        Ok(v)
    }

    /// Parses a type, including pointer suffixes.
    fn ty(&mut self) -> Result<Ty, ParseError> {
        self.skip_ws();
        let mut base = if self.eat("[") {
            let n = self.int()? as usize;
            self.expect("x")?;
            let elem = self.ty()?;
            self.expect("]")?;
            elem.array(n)
        } else {
            let id = self.ident()?;
            match id.as_str() {
                "i1" => Ty::I1,
                "i8" => Ty::I8,
                "i32" => Ty::I32,
                "i64" => Ty::I64,
                "double" => Ty::F64,
                "void" => Ty::Void,
                other => return Err(self.err(format!("unknown type `{other}`"))),
            }
        };
        loop {
            self.skip_ws();
            if self.rest().starts_with('*') {
                self.pos += 1;
                base = base.ptr();
            } else {
                break;
            }
        }
        Ok(base)
    }

    /// Parses an untyped operand given its type.
    fn operand(&mut self, ty: &Ty) -> Result<Operand, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        if rest.starts_with('%') {
            self.pos += 1;
            let n = self.int()?;
            Ok(Operand::Value(ValueId(n as u32)))
        } else if rest.starts_with('@') {
            self.pos += 1;
            Ok(Operand::Global(self.ident()?))
        } else if rest.starts_with("undef") {
            self.pos += 5;
            Ok(Operand::Undef(ty.clone()))
        } else if *ty == Ty::F64 {
            // float literal: sign, digits, optional fraction/exponent
            let end = rest
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_digit() || "+-.eE".contains(*c)))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            let v: f64 = rest[..end]
                .parse()
                .map_err(|e| self.err(format!("bad float: {e}")))?;
            self.pos += end;
            Ok(Operand::ConstF64(v))
        } else {
            let v = self.int()?;
            Ok(Operand::ConstInt {
                value: v,
                ty: ty.clone(),
            })
        }
    }

    /// Parses `ty operand`.
    fn typed_operand(&mut self) -> Result<(Ty, Operand), ParseError> {
        let ty = self.ty()?;
        let op = self.operand(&ty)?;
        Ok((ty, op))
    }

    fn block_ref(&mut self) -> Result<BlockId, ParseError> {
        self.expect("label")?;
        self.expect("%bb")?;
        Ok(BlockId(self.int()? as u32))
    }
}

/// Parses a module from its textual form.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut m = Module::new("parsed");
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = raw.trim();
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("; module ") {
            m.name = rest.trim().to_string();
            continue;
        }
        if line.starts_with(';') {
            continue;
        }
        if line.starts_with('@') {
            m.globals.push(parse_global(line, lineno)?);
            continue;
        }
        if let Some(rest) = line.strip_prefix("declare ") {
            let mut c = Cursor::new(rest, lineno);
            let ret_ty = c.ty()?;
            c.expect("@")?;
            let name = c.ident()?;
            c.expect("(")?;
            let mut params = Vec::new();
            if !c.eat(")") {
                loop {
                    params.push(c.ty()?);
                    if c.eat(")") {
                        break;
                    }
                    c.expect(",")?;
                }
            }
            m.push_function(crate::module::FunctionBuilder::declaration(
                name, params, ret_ty,
            ));
            continue;
        }
        if let Some(rest) = line.strip_prefix("define ") {
            let mut c = Cursor::new(rest, lineno);
            let ret_ty = c.ty()?;
            c.expect("@")?;
            let name = c.ident()?;
            c.expect("(")?;
            let mut params = Vec::new();
            if !c.eat(")") {
                loop {
                    let ty = c.ty()?;
                    c.expect("%")?;
                    let _n = c.int()?;
                    params.push(ty);
                    if c.eat(")") {
                        break;
                    }
                    c.expect(",")?;
                }
            }
            c.expect("{")?;
            // body
            let mut blocks: Vec<Block> = Vec::new();
            let mut max_value = params.len() as u32;
            loop {
                let Some((bidx, braw)) = lines.next() else {
                    return Err(ParseError {
                        line: lineno,
                        message: "unterminated function".into(),
                    });
                };
                let bline = braw.trim();
                let blineno = bidx + 1;
                if bline == "}" {
                    break;
                }
                if bline.is_empty() {
                    continue;
                }
                if let Some(lbl) = bline.strip_suffix(':') {
                    let id = lbl
                        .strip_prefix("bb")
                        .and_then(|n| n.parse::<u32>().ok())
                        .ok_or(ParseError {
                            line: blineno,
                            message: format!("bad block label `{lbl}`"),
                        })?;
                    blocks.push(Block {
                        id: BlockId(id),
                        insts: Vec::new(),
                    });
                    continue;
                }
                let block = blocks.last_mut().ok_or(ParseError {
                    line: blineno,
                    message: "instruction before any block label".into(),
                })?;
                let inst = parse_inst(bline, blineno)?;
                if let Some(ValueId(v)) = inst.result {
                    max_value = max_value.max(v + 1);
                }
                block.insts.push(inst);
            }
            m.push_function(Function {
                name,
                params,
                ret_ty,
                blocks,
                next_value: max_value,
            });
            continue;
        }
        return Err(ParseError {
            line: lineno,
            message: format!("unrecognized line `{line}`"),
        });
    }
    Ok(m)
}

fn parse_global(line: &str, lineno: usize) -> Result<Global, ParseError> {
    let mut c = Cursor::new(line, lineno);
    c.expect("@")?;
    let name = c.ident()?;
    c.expect("=")?;
    c.expect("global")?;
    let ty = c.ty()?;
    c.skip_ws();
    let rest = c.rest();
    let init = if rest.starts_with("zeroinitializer") {
        GlobalInit::Zero
    } else if let Some(body) = rest.strip_prefix("c\"") {
        let body = body.strip_suffix('"').ok_or(c.err("unterminated string"))?;
        let mut bytes = Vec::new();
        let mut chars = body.chars();
        while let Some(ch) = chars.next() {
            if ch == '\\' {
                let h1 = chars.next().ok_or(c.err("bad escape"))?;
                let h2 = chars.next().ok_or(c.err("bad escape"))?;
                let hex: String = [h1, h2].iter().collect();
                bytes.push(
                    u8::from_str_radix(&hex, 16).map_err(|e| c.err(format!("bad escape: {e}")))?,
                );
            } else {
                bytes.push(ch as u8);
            }
        }
        GlobalInit::Bytes(bytes)
    } else if rest.starts_with('[') {
        let mut c2 = Cursor::new(rest, lineno);
        c2.expect("[")?;
        let mut words = Vec::new();
        if !c2.eat("]") {
            loop {
                c2.expect("i64")?;
                words.push(c2.int()?);
                if c2.eat("]") {
                    break;
                }
                c2.expect(",")?;
            }
        }
        GlobalInit::I64s(words)
    } else {
        return Err(c.err(format!("bad global initializer `{rest}`")));
    };
    Ok(Global { name, ty, init })
}

fn parse_inst(line: &str, lineno: usize) -> Result<Inst, ParseError> {
    let mut c = Cursor::new(line, lineno);
    // optional `%N = `
    let mut result = None;
    c.skip_ws();
    if c.rest().starts_with('%') {
        // lookahead: `%N =` means result; `%` otherwise can't start an inst
        c.pos += 1;
        let n = c.int()?;
        c.expect("=")?;
        result = Some(ValueId(n as u32));
    }
    let op = c.ident()?;
    let kind = match op.as_str() {
        "alloca" => InstKind::Alloca { ty: c.ty()? },
        "load" => {
            let ty = c.ty()?;
            c.expect(",")?;
            let (_pty, ptr) = c.typed_operand()?;
            InstKind::Load { ty, ptr }
        }
        "store" => {
            let ty = c.ty()?;
            let val = c.operand(&ty)?;
            c.expect(",")?;
            let (_pty, ptr) = c.typed_operand()?;
            InstKind::Store { ty, val, ptr }
        }
        "add" | "sub" | "mul" | "sdiv" | "srem" | "and" | "or" | "xor" | "shl" | "ashr"
        | "fadd" | "fsub" | "fmul" | "fdiv" => {
            let bop = match op.as_str() {
                "add" | "fadd" => BinOp::Add,
                "sub" | "fsub" => BinOp::Sub,
                "mul" | "fmul" => BinOp::Mul,
                "sdiv" | "fdiv" => BinOp::SDiv,
                "srem" => BinOp::SRem,
                "and" => BinOp::And,
                "or" => BinOp::Or,
                "xor" => BinOp::Xor,
                "shl" => BinOp::Shl,
                "ashr" => BinOp::AShr,
                _ => unreachable!(),
            };
            let ty = c.ty()?;
            let lhs = c.operand(&ty)?;
            c.expect(",")?;
            let rhs = c.operand(&ty)?;
            InstKind::Bin {
                op: bop,
                ty,
                lhs,
                rhs,
            }
        }
        "icmp" | "fcmp" => {
            let pred = match c.ident()?.as_str() {
                "eq" | "oeq" => IcmpPred::Eq,
                "ne" | "one" => IcmpPred::Ne,
                "slt" | "olt" => IcmpPred::Slt,
                "sle" | "ole" => IcmpPred::Sle,
                "sgt" | "ogt" => IcmpPred::Sgt,
                "sge" | "oge" => IcmpPred::Sge,
                p => return Err(c.err(format!("unknown predicate `{p}`"))),
            };
            let ty = c.ty()?;
            let lhs = c.operand(&ty)?;
            c.expect(",")?;
            let rhs = c.operand(&ty)?;
            InstKind::Icmp { pred, ty, lhs, rhs }
        }
        "br" => {
            c.skip_ws();
            if c.rest().starts_with("label") {
                InstKind::Br {
                    target: c.block_ref()?,
                }
            } else {
                c.expect("i1")?;
                let cond = c.operand(&Ty::I1)?;
                c.expect(",")?;
                let then_bb = c.block_ref()?;
                c.expect(",")?;
                let else_bb = c.block_ref()?;
                InstKind::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                }
            }
        }
        "ret" => {
            let ty = c.ty()?;
            if ty == Ty::Void {
                InstKind::Ret { val: None }
            } else {
                InstKind::Ret {
                    val: Some(c.operand(&ty)?),
                }
            }
        }
        "call" => {
            let ret_ty = c.ty()?;
            c.expect("@")?;
            let callee = c.ident()?;
            c.expect("(")?;
            let mut args = Vec::new();
            if !c.eat(")") {
                loop {
                    let (_t, a) = c.typed_operand()?;
                    args.push(a);
                    if c.eat(")") {
                        break;
                    }
                    c.expect(",")?;
                }
            }
            InstKind::Call {
                callee,
                ret_ty,
                args,
            }
        }
        "phi" => {
            let ty = c.ty()?;
            let mut incomings = Vec::new();
            loop {
                c.expect("[")?;
                let v = c.operand(&ty)?;
                c.expect(",")?;
                c.expect("%bb")?;
                let b = BlockId(c.int()? as u32);
                c.expect("]")?;
                incomings.push((v, b));
                if !c.eat(",") {
                    break;
                }
            }
            InstKind::Phi { ty, incomings }
        }
        "getelementptr" => {
            let elem_ty = c.ty()?;
            c.expect(",")?;
            let (_bty, base) = c.typed_operand()?;
            c.expect(",")?;
            let (_ity, index) = c.typed_operand()?;
            InstKind::Gep {
                elem_ty,
                base,
                index,
            }
        }
        "select" => {
            c.expect("i1")?;
            let cond = c.operand(&Ty::I1)?;
            c.expect(",")?;
            let ty = c.ty()?;
            let then_v = c.operand(&ty)?;
            c.expect(",")?;
            let ty2 = c.ty()?;
            let else_v = c.operand(&ty2)?;
            InstKind::Select {
                ty,
                cond,
                then_v,
                else_v,
            }
        }
        "zext" | "sext" | "trunc" | "bitcast" | "sitofp" | "fptosi" => {
            let kind = match op.as_str() {
                "zext" => CastKind::Zext,
                "sext" => CastKind::Sext,
                "trunc" => CastKind::Trunc,
                "sitofp" => CastKind::Sitofp,
                "fptosi" => CastKind::Fptosi,
                _ => CastKind::Bitcast,
            };
            let from = c.ty()?;
            let val = c.operand(&from)?;
            c.expect("to")?;
            let to = c.ty()?;
            InstKind::Cast {
                kind,
                val,
                from,
                to,
            }
        }
        "unreachable" => InstKind::Unreachable,
        other => return Err(c.err(format!("unknown opcode `{other}`"))),
    };
    Ok(Inst { result, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::FunctionBuilder;

    #[test]
    fn roundtrip_simple_function() {
        let mut m = Module::new("rt");
        let mut fb = FunctionBuilder::new("f", vec![Ty::I64, Ty::I64], Ty::I64);
        let bb0 = fb.entry_block();
        let bb1 = fb.add_block();
        let bb2 = fb.add_block();
        let a = fb.param_operand(0);
        let b = fb.param_operand(1);
        let s = fb.binop(bb0, BinOp::Add, Ty::I64, a.clone(), b);
        let cnd = fb.icmp(
            bb0,
            IcmpPred::Sgt,
            Ty::I64,
            s.clone(),
            Operand::const_i64(0),
        );
        fb.cond_br(bb0, cnd, bb1, bb2);
        fb.ret(bb1, Some(s.clone()));
        let n = fb.binop(bb2, BinOp::Sub, Ty::I64, Operand::const_i64(0), s);
        fb.ret(bb2, Some(n));
        m.push_function(fb.finish());

        let text = m.to_text();
        let parsed = parse_module(&text).expect("parse");
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn roundtrip_memory_and_calls() {
        let mut m = Module::new("mem");
        m.push_function(FunctionBuilder::declaration(
            "rt_print_i64",
            vec![Ty::I64],
            Ty::Void,
        ));
        let mut fb = FunctionBuilder::new("main", vec![], Ty::I64);
        let bb = fb.entry_block();
        let arr = fb.alloca(bb, Ty::I64.array(4));
        let base = fb.cast(
            bb,
            CastKind::Bitcast,
            arr.clone(),
            Ty::I64.array(4).ptr(),
            Ty::I64.ptr(),
        );
        let p = fb.gep(bb, Ty::I64, base, Operand::const_i64(2));
        fb.store(bb, Ty::I64, Operand::const_i64(7), p.clone());
        let v = fb.load(bb, Ty::I64, p);
        fb.call(bb, "rt_print_i64", Ty::Void, vec![v.clone()]);
        fb.ret(bb, Some(v));
        m.push_function(fb.finish());

        let text = m.to_text();
        let parsed = parse_module(&text).expect("parse");
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn roundtrip_phi_select_globals() {
        let mut m = Module::new("phi");
        m.globals.push(Global {
            name: "tbl".into(),
            ty: Ty::I64.array(2),
            init: GlobalInit::I64s(vec![10, 20]),
        });
        m.globals.push(Global {
            name: "msg".into(),
            ty: Ty::I8.array(2),
            init: GlobalInit::Bytes(vec![104, 0]),
        });
        let mut fb = FunctionBuilder::new("g", vec![Ty::I1], Ty::I64);
        let bb0 = fb.entry_block();
        let bb1 = fb.add_block();
        let bb2 = fb.add_block();
        let c = fb.param_operand(0);
        fb.cond_br(bb0, c.clone(), bb1, bb2);
        fb.br(bb1, bb2);
        let ph = fb.phi(
            bb2,
            Ty::I64,
            vec![(Operand::const_i64(1), bb0), (Operand::const_i64(2), bb1)],
        );
        let sel = fb.select(bb2, Ty::I64, c, ph.clone(), Operand::const_i64(9));
        fb.ret(bb2, Some(sel));
        m.push_function(fb.finish());

        let text = m.to_text();
        let parsed = parse_module(&text).expect("parse");
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn error_reports_line() {
        let bad = "define i64 @f() {\nbb0:\n  %1 = bogus i64 1, 2\n}\n";
        let err = parse_module(bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn parses_float_constants() {
        let text =
            "define double @h() {\nbb0:\n  %0 = fadd double 1.5, -2.25\n  ret double %0\n}\n";
        let m = parse_module(text).unwrap();
        let f = m.function("h").unwrap();
        match &f.blocks[0].insts[0].kind {
            InstKind::Bin { lhs, rhs, .. } => {
                assert_eq!(*lhs, Operand::ConstF64(1.5));
                assert_eq!(*rhs, Operand::ConstF64(-2.25));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
