//! The LIR object model: modules, functions, blocks, instructions, operands,
//! and the [`FunctionBuilder`] the front-ends lower through.

use crate::types::Ty;

/// Function-scoped SSA value number (`%N` in the textual format).
///
/// Parameters take the first ids (`%0..%arity-1`); instruction results are
/// numbered after them in creation order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Index of a basic block inside its function (`bbN` in the textual format).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// An instruction operand.
#[derive(Clone, PartialEq, Debug)]
pub enum Operand {
    /// SSA value reference.
    Value(ValueId),
    /// Integer constant of a given type.
    ConstInt { value: i64, ty: Ty },
    /// Double constant.
    ConstF64(f64),
    /// Address of a module-level global.
    Global(String),
    /// Undefined value of a given type (decompiler output uses these).
    Undef(Ty),
}

impl Operand {
    /// `i64` integer constant.
    pub fn const_i64(value: i64) -> Operand {
        Operand::ConstInt { value, ty: Ty::I64 }
    }

    /// `i32` integer constant.
    pub fn const_i32(value: i64) -> Operand {
        Operand::ConstInt { value, ty: Ty::I32 }
    }

    /// `i1` boolean constant.
    pub fn const_bool(value: bool) -> Operand {
        Operand::ConstInt {
            value: value as i64,
            ty: Ty::I1,
        }
    }

    /// The SSA value this operand references, if any.
    pub fn as_value(&self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(*v),
            _ => None,
        }
    }

    /// True for constant operands (int, float, global address, undef).
    pub fn is_const(&self) -> bool {
        !matches!(self, Operand::Value(_))
    }
}

/// Integer/float binary opcodes. With `Ty::F64` the printer renders the
/// `f`-prefixed LLVM spelling (`fadd`, `fsub`, …).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division.
    SDiv,
    /// Signed remainder.
    SRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    AShr,
}

impl BinOp {
    /// LLVM-style mnemonic for integer types.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::AShr => "ashr",
        }
    }

    /// Mnemonic for float types (`fadd` …); shifts/bitwise have no float form.
    pub fn float_mnemonic(&self) -> Option<&'static str> {
        match self {
            BinOp::Add => Some("fadd"),
            BinOp::Sub => Some("fsub"),
            BinOp::Mul => Some("fmul"),
            BinOp::SDiv => Some("fdiv"),
            _ => None,
        }
    }

    /// True when `op x y == op y x`.
    pub fn commutative(&self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }
}

/// Signed integer comparison predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IcmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
}

impl IcmpPred {
    /// LLVM-style predicate keyword.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            IcmpPred::Eq => "eq",
            IcmpPred::Ne => "ne",
            IcmpPred::Slt => "slt",
            IcmpPred::Sle => "sle",
            IcmpPred::Sgt => "sgt",
            IcmpPred::Sge => "sge",
        }
    }

    /// Evaluates the predicate on two signed integers.
    pub fn eval(&self, a: i64, b: i64) -> bool {
        match self {
            IcmpPred::Eq => a == b,
            IcmpPred::Ne => a != b,
            IcmpPred::Slt => a < b,
            IcmpPred::Sle => a <= b,
            IcmpPred::Sgt => a > b,
            IcmpPred::Sge => a >= b,
        }
    }

    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(&self) -> IcmpPred {
        match self {
            IcmpPred::Eq => IcmpPred::Eq,
            IcmpPred::Ne => IcmpPred::Ne,
            IcmpPred::Slt => IcmpPred::Sgt,
            IcmpPred::Sle => IcmpPred::Sge,
            IcmpPred::Sgt => IcmpPred::Slt,
            IcmpPred::Sge => IcmpPred::Sle,
        }
    }
}

/// Cast opcodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CastKind {
    /// Zero extension.
    Zext,
    /// Sign extension.
    Sext,
    /// Truncation.
    Trunc,
    /// Reinterpreting bit cast (pointer ⇄ pointer).
    Bitcast,
    /// Signed integer → double.
    Sitofp,
    /// Double → signed integer (truncating).
    Fptosi,
}

impl CastKind {
    /// LLVM-style mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CastKind::Zext => "zext",
            CastKind::Sext => "sext",
            CastKind::Trunc => "trunc",
            CastKind::Bitcast => "bitcast",
            CastKind::Sitofp => "sitofp",
            CastKind::Fptosi => "fptosi",
        }
    }
}

/// Instruction payload.
#[derive(Clone, PartialEq, Debug)]
pub enum InstKind {
    /// Stack slot of the given type; yields a pointer to it.
    Alloca {
        /// Allocated type.
        ty: Ty,
    },
    /// Load a `ty` from a pointer.
    Load {
        /// Loaded type.
        ty: Ty,
        /// Address operand.
        ptr: Operand,
    },
    /// Store `val : ty` through a pointer.
    Store {
        /// Stored type.
        ty: Ty,
        /// Value operand.
        val: Operand,
        /// Address operand.
        ptr: Operand,
    },
    /// Binary arithmetic/logic.
    Bin {
        /// Opcode.
        op: BinOp,
        /// Operand type.
        ty: Ty,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Integer comparison producing `i1`.
    Icmp {
        /// Predicate.
        pred: IcmpPred,
        /// Operand type.
        ty: Ty,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Two-way conditional branch on an `i1`.
    CondBr {
        /// Condition operand.
        cond: Operand,
        /// Taken when true.
        then_bb: BlockId,
        /// Taken when false.
        else_bb: BlockId,
    },
    /// Function return.
    Ret {
        /// Returned value (None for `void`).
        val: Option<Operand>,
    },
    /// Direct call by symbol name.
    Call {
        /// Callee symbol.
        callee: String,
        /// Declared return type.
        ret_ty: Ty,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// SSA φ node.
    Phi {
        /// Result type.
        ty: Ty,
        /// `(value, predecessor)` pairs.
        incomings: Vec<(Operand, BlockId)>,
    },
    /// Pointer arithmetic: `base + index · sizeof(elem_ty)`.
    Gep {
        /// Element type the index strides over.
        elem_ty: Ty,
        /// Base pointer.
        base: Operand,
        /// Index operand.
        index: Operand,
    },
    /// Ternary select on an `i1`.
    Select {
        /// Result type.
        ty: Ty,
        /// Condition operand.
        cond: Operand,
        /// Value when true.
        then_v: Operand,
        /// Value when false.
        else_v: Operand,
    },
    /// Width/representation cast.
    Cast {
        /// Cast opcode.
        kind: CastKind,
        /// Source operand.
        val: Operand,
        /// Source type.
        from: Ty,
        /// Destination type.
        to: Ty,
    },
    /// Control flow must not reach here.
    Unreachable,
}

impl InstKind {
    /// Opcode text — the ProGraML `text` attribute of an instruction node.
    pub fn opcode(&self) -> &'static str {
        match self {
            InstKind::Alloca { .. } => "alloca",
            InstKind::Load { .. } => "load",
            InstKind::Store { .. } => "store",
            InstKind::Bin { op, ty, .. } => {
                if *ty == Ty::F64 {
                    op.float_mnemonic().unwrap_or(op.mnemonic())
                } else {
                    op.mnemonic()
                }
            }
            InstKind::Icmp { .. } => "icmp",
            InstKind::Br { .. } => "br",
            InstKind::CondBr { .. } => "br",
            InstKind::Ret { .. } => "ret",
            InstKind::Call { .. } => "call",
            InstKind::Phi { .. } => "phi",
            InstKind::Gep { .. } => "getelementptr",
            InstKind::Select { .. } => "select",
            InstKind::Cast { kind, .. } => kind.mnemonic(),
            InstKind::Unreachable => "unreachable",
        }
    }

    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Br { .. }
                | InstKind::CondBr { .. }
                | InstKind::Ret { .. }
                | InstKind::Unreachable
        )
    }

    /// True when the instruction produces an SSA result.
    pub fn has_result(&self) -> bool {
        match self {
            InstKind::Store { .. }
            | InstKind::Br { .. }
            | InstKind::CondBr { .. }
            | InstKind::Ret { .. }
            | InstKind::Unreachable => false,
            InstKind::Call { ret_ty, .. } => *ret_ty != Ty::Void,
            _ => true,
        }
    }

    /// Operands in positional order (the ProGraML edge `position` attribute
    /// is an operand's index in this list).
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            InstKind::Alloca { .. } | InstKind::Br { .. } | InstKind::Unreachable => vec![],
            InstKind::Load { ptr, .. } => vec![ptr],
            InstKind::Store { val, ptr, .. } => vec![val, ptr],
            InstKind::Bin { lhs, rhs, .. } | InstKind::Icmp { lhs, rhs, .. } => vec![lhs, rhs],
            InstKind::CondBr { cond, .. } => vec![cond],
            InstKind::Ret { val } => val.iter().collect(),
            InstKind::Call { args, .. } => args.iter().collect(),
            InstKind::Phi { incomings, .. } => incomings.iter().map(|(v, _)| v).collect(),
            InstKind::Gep { base, index, .. } => vec![base, index],
            InstKind::Select {
                cond,
                then_v,
                else_v,
                ..
            } => vec![cond, then_v, else_v],
            InstKind::Cast { val, .. } => vec![val],
        }
    }

    /// Mutable operand access, same order as [`InstKind::operands`].
    pub fn operands_mut(&mut self) -> Vec<&mut Operand> {
        match self {
            InstKind::Alloca { .. } | InstKind::Br { .. } | InstKind::Unreachable => vec![],
            InstKind::Load { ptr, .. } => vec![ptr],
            InstKind::Store { val, ptr, .. } => vec![val, ptr],
            InstKind::Bin { lhs, rhs, .. } | InstKind::Icmp { lhs, rhs, .. } => vec![lhs, rhs],
            InstKind::CondBr { cond, .. } => vec![cond],
            InstKind::Ret { val } => val.iter_mut().collect(),
            InstKind::Call { args, .. } => args.iter_mut().collect(),
            InstKind::Phi { incomings, .. } => incomings.iter_mut().map(|(v, _)| v).collect(),
            InstKind::Gep { base, index, .. } => vec![base, index],
            InstKind::Select {
                cond,
                then_v,
                else_v,
                ..
            } => vec![cond, then_v, else_v],
            InstKind::Cast { val, .. } => vec![val],
        }
    }

    /// Result type, when the instruction has a result.
    pub fn result_ty(&self) -> Option<Ty> {
        match self {
            InstKind::Alloca { ty } => Some(ty.clone().ptr()),
            InstKind::Load { ty, .. } => Some(ty.clone()),
            InstKind::Bin { ty, .. } => Some(ty.clone()),
            InstKind::Icmp { .. } => Some(Ty::I1),
            InstKind::Call { ret_ty, .. } => {
                if *ret_ty == Ty::Void {
                    None
                } else {
                    Some(ret_ty.clone())
                }
            }
            InstKind::Phi { ty, .. } => Some(ty.clone()),
            InstKind::Gep { elem_ty, .. } => Some(elem_ty.clone().ptr()),
            InstKind::Select { ty, .. } => Some(ty.clone()),
            InstKind::Cast { to, .. } => Some(to.clone()),
            _ => None,
        }
    }
}

/// One instruction: optional SSA result plus payload.
#[derive(Clone, PartialEq, Debug)]
pub struct Inst {
    /// SSA result id (present iff the kind produces a value).
    pub result: Option<ValueId>,
    /// The operation.
    pub kind: InstKind,
}

/// A basic block: straight-line instructions ending in one terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// This block's id (must equal its index in `Function::blocks`).
    pub id: BlockId,
    /// Instructions; the last one is the terminator in verified functions.
    pub insts: Vec<Inst>,
}

impl Block {
    /// The terminator instruction, if the block has one.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.kind.is_terminator())
    }
}

/// Module-level global initializer.
#[derive(Clone, PartialEq, Debug)]
pub enum GlobalInit {
    /// Zero-initialized.
    Zero,
    /// 64-bit words.
    I64s(Vec<i64>),
    /// Raw bytes (strings).
    Bytes(Vec<u8>),
}

/// A module-level global variable.
#[derive(Clone, PartialEq, Debug)]
pub struct Global {
    /// Symbol name (without the `@`).
    pub name: String,
    /// Value type.
    pub ty: Ty,
    /// Initializer.
    pub init: GlobalInit,
}

/// A function: signature plus body (empty body ⇒ external declaration).
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Symbol name (without the `@`).
    pub name: String,
    /// Parameter types; parameters take value ids `0..params.len()`.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret_ty: Ty,
    /// Basic blocks; `blocks[i].id == BlockId(i)`.
    pub blocks: Vec<Block>,
    /// Next unassigned SSA value number.
    pub next_value: u32,
}

impl Function {
    /// True for body-less external declarations.
    pub fn is_declaration(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of instructions across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Infers the type of every SSA value (`None` for unassigned ids).
    /// Index by `ValueId.0`.
    pub fn value_types(&self) -> Vec<Option<Ty>> {
        let mut types: Vec<Option<Ty>> = vec![None; self.next_value as usize];
        for (i, p) in self.params.iter().enumerate() {
            types[i] = Some(p.clone());
        }
        for block in &self.blocks {
            for inst in &block.insts {
                if let Some(r) = inst.result {
                    types[r.0 as usize] = inst.kind.result_ty();
                }
            }
        }
        types
    }

    /// Iterates `(block_id, inst_index, inst)` over the whole body.
    pub fn iter_insts(&self) -> impl Iterator<Item = (BlockId, usize, &Inst)> {
        self.blocks.iter().flat_map(|b| {
            b.insts
                .iter()
                .enumerate()
                .map(move |(i, inst)| (b.id, i, inst))
        })
    }
}

/// A compilation unit: globals plus functions.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    /// Module name (diagnostics only).
    pub name: String,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Functions, including external declarations.
    pub functions: Vec<Function>,
}

impl Module {
    /// Empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            globals: Vec::new(),
            functions: Vec::new(),
        }
    }

    /// Appends a function.
    pub fn push_function(&mut self, f: Function) {
        self.functions.push(f);
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total instruction count over all function bodies.
    pub fn num_insts(&self) -> usize {
        self.functions.iter().map(Function::num_insts).sum()
    }

    /// Renders the module in the LLVM-like textual format.
    pub fn to_text(&self) -> String {
        crate::printer::print_module(self)
    }
}

/// Incrementally builds one [`Function`] in SSA form.
///
/// Front-ends create blocks, then append instructions to any block in any
/// order; `finish()` hands back the function. Value numbering is automatic.
pub struct FunctionBuilder {
    f: Function,
}

impl FunctionBuilder {
    /// Starts a function with an entry block already present.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret_ty: Ty) -> Self {
        let next_value = params.len() as u32;
        let f = Function {
            name: name.into(),
            params,
            ret_ty,
            blocks: vec![Block {
                id: BlockId(0),
                insts: Vec::new(),
            }],
            next_value,
        };
        FunctionBuilder { f }
    }

    /// Declares an external function (no body).
    pub fn declaration(name: impl Into<String>, params: Vec<Ty>, ret_ty: Ty) -> Function {
        let next_value = params.len() as u32;
        Function {
            name: name.into(),
            params,
            ret_ty,
            blocks: Vec::new(),
            next_value,
        }
    }

    /// The entry block id.
    pub fn entry_block(&self) -> BlockId {
        BlockId(0)
    }

    /// Appends a fresh empty block.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.f.blocks.len() as u32);
        self.f.blocks.push(Block {
            id,
            insts: Vec::new(),
        });
        id
    }

    /// Operand referencing parameter `i`.
    pub fn param_operand(&self, i: usize) -> Operand {
        assert!(i < self.f.params.len(), "param {i} out of range");
        Operand::Value(ValueId(i as u32))
    }

    fn fresh(&mut self) -> ValueId {
        let v = ValueId(self.f.next_value);
        self.f.next_value += 1;
        v
    }

    /// Appends an instruction, allocating a result id when the kind has one.
    pub fn push(&mut self, bb: BlockId, kind: InstKind) -> Option<Operand> {
        let result = if kind.has_result() {
            Some(self.fresh())
        } else {
            None
        };
        let op = result.map(Operand::Value);
        self.f.blocks[bb.0 as usize]
            .insts
            .push(Inst { result, kind });
        op
    }

    /// `alloca ty` — returns the slot pointer.
    pub fn alloca(&mut self, bb: BlockId, ty: Ty) -> Operand {
        self.push(bb, InstKind::Alloca { ty })
            .expect("alloca yields a value")
    }

    /// `load ty, ptr`.
    pub fn load(&mut self, bb: BlockId, ty: Ty, ptr: Operand) -> Operand {
        self.push(bb, InstKind::Load { ty, ptr })
            .expect("load yields a value")
    }

    /// `store val, ptr`.
    pub fn store(&mut self, bb: BlockId, ty: Ty, val: Operand, ptr: Operand) {
        self.push(bb, InstKind::Store { ty, val, ptr });
    }

    /// Binary op.
    pub fn binop(&mut self, bb: BlockId, op: BinOp, ty: Ty, lhs: Operand, rhs: Operand) -> Operand {
        self.push(bb, InstKind::Bin { op, ty, lhs, rhs })
            .expect("bin yields a value")
    }

    /// Integer compare.
    pub fn icmp(
        &mut self,
        bb: BlockId,
        pred: IcmpPred,
        ty: Ty,
        lhs: Operand,
        rhs: Operand,
    ) -> Operand {
        self.push(bb, InstKind::Icmp { pred, ty, lhs, rhs })
            .expect("icmp yields a value")
    }

    /// Unconditional branch.
    pub fn br(&mut self, bb: BlockId, target: BlockId) {
        self.push(bb, InstKind::Br { target });
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, bb: BlockId, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.push(
            bb,
            InstKind::CondBr {
                cond,
                then_bb,
                else_bb,
            },
        );
    }

    /// Return.
    pub fn ret(&mut self, bb: BlockId, val: Option<Operand>) {
        self.push(bb, InstKind::Ret { val });
    }

    /// Direct call.
    pub fn call(
        &mut self,
        bb: BlockId,
        callee: impl Into<String>,
        ret_ty: Ty,
        args: Vec<Operand>,
    ) -> Option<Operand> {
        self.push(
            bb,
            InstKind::Call {
                callee: callee.into(),
                ret_ty,
                args,
            },
        )
    }

    /// φ node.
    pub fn phi(&mut self, bb: BlockId, ty: Ty, incomings: Vec<(Operand, BlockId)>) -> Operand {
        self.push(bb, InstKind::Phi { ty, incomings })
            .expect("phi yields a value")
    }

    /// Pointer arithmetic.
    pub fn gep(&mut self, bb: BlockId, elem_ty: Ty, base: Operand, index: Operand) -> Operand {
        self.push(
            bb,
            InstKind::Gep {
                elem_ty,
                base,
                index,
            },
        )
        .expect("gep yields a value")
    }

    /// Ternary select.
    pub fn select(
        &mut self,
        bb: BlockId,
        ty: Ty,
        cond: Operand,
        then_v: Operand,
        else_v: Operand,
    ) -> Operand {
        self.push(
            bb,
            InstKind::Select {
                ty,
                cond,
                then_v,
                else_v,
            },
        )
        .expect("select yields a value")
    }

    /// Width cast helper.
    pub fn cast(&mut self, bb: BlockId, kind: CastKind, val: Operand, from: Ty, to: Ty) -> Operand {
        self.push(
            bb,
            InstKind::Cast {
                kind,
                val,
                from,
                to,
            },
        )
        .expect("cast yields a value")
    }

    /// True if the block already ends in a terminator.
    pub fn is_terminated(&self, bb: BlockId) -> bool {
        self.f.blocks[bb.0 as usize].terminator().is_some()
    }

    /// Finalizes and returns the function.
    pub fn finish(self) -> Function {
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_fn() -> Function {
        let mut fb = FunctionBuilder::new("f", vec![Ty::I64, Ty::I64], Ty::I64);
        let bb = fb.entry_block();
        let a = fb.param_operand(0);
        let b = fb.param_operand(1);
        let s = fb.binop(bb, BinOp::Add, Ty::I64, a, b);
        fb.ret(bb, Some(s));
        fb.finish()
    }

    #[test]
    fn builder_numbers_values_after_params() {
        let f = simple_fn();
        assert_eq!(f.next_value, 3); // %0, %1 params; %2 result
        let inst = &f.blocks[0].insts[0];
        assert_eq!(inst.result, Some(ValueId(2)));
    }

    #[test]
    fn value_types_inferred() {
        let f = simple_fn();
        let tys = f.value_types();
        assert_eq!(tys[0], Some(Ty::I64));
        assert_eq!(tys[2], Some(Ty::I64));
    }

    #[test]
    fn operand_positions_match_order() {
        let k = InstKind::Select {
            ty: Ty::I64,
            cond: Operand::const_bool(true),
            then_v: Operand::const_i64(1),
            else_v: Operand::const_i64(2),
        };
        let ops = k.operands();
        assert_eq!(ops.len(), 3);
        assert_eq!(*ops[1], Operand::const_i64(1));
    }

    #[test]
    fn terminator_discipline() {
        let f = simple_fn();
        assert!(f.blocks[0].terminator().is_some());
        assert!(InstKind::Ret { val: None }.is_terminator());
        assert!(!InstKind::Alloca { ty: Ty::I32 }.is_terminator());
    }

    #[test]
    fn opcode_text() {
        assert_eq!(InstKind::Alloca { ty: Ty::I32 }.opcode(), "alloca");
        let fadd = InstKind::Bin {
            op: BinOp::Add,
            ty: Ty::F64,
            lhs: Operand::ConstF64(1.0),
            rhs: Operand::ConstF64(2.0),
        };
        assert_eq!(fadd.opcode(), "fadd");
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new("m");
        m.push_function(simple_fn());
        assert!(m.function("f").is_some());
        assert!(m.function("g").is_none());
        assert_eq!(m.num_insts(), 2);
    }

    #[test]
    fn declarations_have_no_body() {
        let d = FunctionBuilder::declaration("ext", vec![Ty::I64], Ty::Void);
        assert!(d.is_declaration());
    }

    #[test]
    fn icmp_pred_eval_and_swap() {
        assert!(IcmpPred::Slt.eval(1, 2));
        assert!(!IcmpPred::Sge.eval(1, 2));
        assert_eq!(IcmpPred::Slt.swapped(), IcmpPred::Sgt);
        assert!(IcmpPred::Slt.swapped().eval(2, 1));
    }
}
