//! A fuel-limited LIR interpreter.
//!
//! The test suite uses interpretation as the semantic oracle: a transformed
//! module (optimized, or compiled to VISA and decompiled back) must produce
//! the same observable output — the sequence of `rt_print_*` calls plus the
//! return value — as the original.
//!
//! Memory is a flat byte array: globals are laid out at startup, `alloca`
//! and the `rt_alloc` intrinsic bump-allocate after them. Address 0 is kept
//! unmapped so null dereferences fault.

use std::collections::HashMap;

use crate::module::{BinOp, BlockId, CastKind, GlobalInit, InstKind, Module, Operand, ValueId};
use crate::types::Ty;

/// A runtime value: integer/pointer (`I`) or double (`F`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Val {
    /// Integer, boolean, or address.
    I(i64),
    /// Double.
    F(f64),
}

impl Val {
    /// Integer payload (panics on a float — a type error upstream).
    pub fn as_i(&self) -> i64 {
        match self {
            Val::I(v) => *v,
            Val::F(v) => *v as i64,
        }
    }

    /// Float payload.
    pub fn as_f(&self) -> f64 {
        match self {
            Val::I(v) => *v as f64,
            Val::F(v) => *v,
        }
    }
}

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Instruction budget exhausted.
    OutOfFuel,
    /// `rt_trap` was called (bounds/null check failure) or `unreachable` hit.
    Trap(String),
    /// Call to a function that has no body and is not an intrinsic.
    MissingFunction(String),
    /// Out-of-range load/store.
    BadMemAccess(i64),
    /// Integer division or remainder by zero.
    DivByZero,
    /// Call stack exceeded the frame limit.
    StackOverflow,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "out of fuel"),
            ExecError::Trap(m) => write!(f, "trap: {m}"),
            ExecError::MissingFunction(n) => write!(f, "missing function @{n}"),
            ExecError::BadMemAccess(a) => write!(f, "bad memory access at {a}"),
            ExecError::DivByZero => write!(f, "division by zero"),
            ExecError::StackOverflow => write!(f, "stack overflow"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a successful run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Function return value (None for void).
    pub ret: Option<Val>,
    /// Values printed via `rt_print_i64` / `rt_print_f64` (floats as bits).
    pub output: Vec<i64>,
    /// Instructions executed.
    pub executed: u64,
}

const MAX_FRAMES: usize = 512;

/// Interpreter state for one module.
pub struct Interp<'m> {
    module: &'m Module,
    mem: Vec<u8>,
    globals: HashMap<&'m str, i64>,
    fuel: u64,
    executed: u64,
    output: Vec<i64>,
}

impl<'m> Interp<'m> {
    /// Builds an interpreter with the given instruction budget.
    pub fn new(module: &'m Module, fuel: u64) -> Self {
        let mut mem = vec![0u8; 64]; // low guard region; address 0 stays null
        let mut globals = HashMap::new();
        for g in &module.globals {
            let addr = mem.len() as i64;
            globals.insert(g.name.as_str(), addr);
            let size = g.ty.size_bytes().max(1);
            let mut bytes = vec![0u8; size];
            match &g.init {
                GlobalInit::Zero => {}
                GlobalInit::I64s(words) => {
                    for (i, w) in words.iter().enumerate() {
                        let off = i * 8;
                        if off + 8 <= size {
                            bytes[off..off + 8].copy_from_slice(&w.to_le_bytes());
                        }
                    }
                }
                GlobalInit::Bytes(bs) => {
                    let n = bs.len().min(size);
                    bytes[..n].copy_from_slice(&bs[..n]);
                }
            }
            mem.extend_from_slice(&bytes);
            // 8-byte align the next global
            while !mem.len().is_multiple_of(8) {
                mem.push(0);
            }
        }
        Interp {
            module,
            mem,
            globals,
            fuel,
            executed: 0,
            output: Vec::new(),
        }
    }

    /// Runs `name(args)` to completion.
    pub fn run(mut self, name: &str, args: &[Val]) -> Result<Outcome, ExecError> {
        let ret = self.call(name, args, 0)?;
        Ok(Outcome {
            ret,
            output: self.output,
            executed: self.executed,
        })
    }

    fn alloc(&mut self, bytes: usize) -> i64 {
        let addr = self.mem.len() as i64;
        self.mem.extend(std::iter::repeat_n(0u8, bytes.max(1)));
        while !self.mem.len().is_multiple_of(8) {
            self.mem.push(0);
        }
        addr
    }

    fn load(&self, addr: i64, ty: &Ty) -> Result<Val, ExecError> {
        let size = ty.size_bytes();
        if addr < 8 || (addr as usize) + size > self.mem.len() {
            return Err(ExecError::BadMemAccess(addr));
        }
        let a = addr as usize;
        Ok(match ty {
            Ty::I1 => Val::I((self.mem[a] & 1) as i64),
            Ty::I8 => Val::I(self.mem[a] as i8 as i64),
            Ty::I32 => {
                let mut b = [0u8; 4];
                b.copy_from_slice(&self.mem[a..a + 4]);
                Val::I(i32::from_le_bytes(b) as i64)
            }
            Ty::F64 => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&self.mem[a..a + 8]);
                Val::F(f64::from_le_bytes(b))
            }
            _ => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&self.mem[a..a + 8]);
                Val::I(i64::from_le_bytes(b))
            }
        })
    }

    fn store(&mut self, addr: i64, ty: &Ty, v: Val) -> Result<(), ExecError> {
        let size = ty.size_bytes();
        if addr < 8 || (addr as usize) + size > self.mem.len() {
            return Err(ExecError::BadMemAccess(addr));
        }
        let a = addr as usize;
        match ty {
            Ty::I1 | Ty::I8 => self.mem[a] = v.as_i() as u8,
            Ty::I32 => self.mem[a..a + 4].copy_from_slice(&(v.as_i() as i32).to_le_bytes()),
            Ty::F64 => self.mem[a..a + 8].copy_from_slice(&v.as_f().to_le_bytes()),
            _ => self.mem[a..a + 8].copy_from_slice(&v.as_i().to_le_bytes()),
        }
        Ok(())
    }

    fn intrinsic(&mut self, name: &str, args: &[Val]) -> Result<Option<Option<Val>>, ExecError> {
        match name {
            "rt_print_i64" => {
                self.output.push(args.first().map(Val::as_i).unwrap_or(0));
                Ok(Some(None))
            }
            "rt_print_f64" => {
                self.output
                    .push(args.first().map(|v| v.as_f().to_bits() as i64).unwrap_or(0));
                Ok(Some(None))
            }
            "rt_alloc" => {
                let n = args.first().map(Val::as_i).unwrap_or(0).max(0) as usize;
                let addr = self.alloc(n);
                Ok(Some(Some(Val::I(addr))))
            }
            "rt_trap" => Err(ExecError::Trap("rt_trap".into())),
            "rt_abs_i64" => Ok(Some(Some(Val::I(args[0].as_i().wrapping_abs())))),
            "rt_min_i64" => Ok(Some(Some(Val::I(args[0].as_i().min(args[1].as_i()))))),
            "rt_max_i64" => Ok(Some(Some(Val::I(args[0].as_i().max(args[1].as_i()))))),
            _ => Ok(None),
        }
    }

    fn call(&mut self, name: &str, args: &[Val], depth: usize) -> Result<Option<Val>, ExecError> {
        if depth >= MAX_FRAMES {
            return Err(ExecError::StackOverflow);
        }
        if let Some(r) = self.intrinsic(name, args)? {
            return Ok(r);
        }
        let f = self
            .module
            .function(name)
            .filter(|f| !f.is_declaration())
            .ok_or_else(|| ExecError::MissingFunction(name.to_string()))?;

        let mut vals: Vec<Option<Val>> = vec![None; f.next_value as usize];
        for (i, a) in args.iter().enumerate().take(f.params.len()) {
            vals[i] = Some(*a);
        }
        let mut block = BlockId(0);
        let mut prev: Option<BlockId> = None;
        loop {
            // φ nodes read their inputs simultaneously on block entry
            let blk = &f.blocks[block.0 as usize];
            let mut phi_writes: Vec<(ValueId, Val)> = Vec::new();
            for inst in &blk.insts {
                if let InstKind::Phi { incomings, .. } = &inst.kind {
                    let from = prev.expect("phi in entry block");
                    let (op, _) = incomings
                        .iter()
                        .find(|(_, b)| *b == from)
                        .ok_or_else(|| ExecError::Trap(format!("phi missing edge bb{}", from.0)))?;
                    let v = self.operand(op, &vals)?;
                    phi_writes.push((inst.result.unwrap(), v));
                } else {
                    break; // φs are grouped at the block head by construction
                }
            }
            for (r, v) in phi_writes {
                vals[r.0 as usize] = Some(v);
            }

            let mut next: Option<(BlockId, BlockId)> = None;
            let start = blk
                .insts
                .iter()
                .take_while(|i| matches!(i.kind, InstKind::Phi { .. }))
                .count();
            for inst in &blk.insts[start..] {
                if self.executed >= self.fuel {
                    return Err(ExecError::OutOfFuel);
                }
                self.executed += 1;
                match &inst.kind {
                    InstKind::Phi { .. } => {
                        return Err(ExecError::Trap("phi after non-phi".into()))
                    }
                    InstKind::Alloca { ty } => {
                        let addr = self.alloc(ty.size_bytes());
                        vals[inst.result.unwrap().0 as usize] = Some(Val::I(addr));
                    }
                    InstKind::Load { ty, ptr } => {
                        let a = self.operand(ptr, &vals)?.as_i();
                        let v = self.load(a, ty)?;
                        vals[inst.result.unwrap().0 as usize] = Some(v);
                    }
                    InstKind::Store { ty, val, ptr } => {
                        let v = self.operand(val, &vals)?;
                        let a = self.operand(ptr, &vals)?.as_i();
                        self.store(a, ty, v)?;
                    }
                    InstKind::Bin { op, ty, lhs, rhs } => {
                        let a = self.operand(lhs, &vals)?;
                        let b = self.operand(rhs, &vals)?;
                        let v = if *ty == Ty::F64 {
                            Val::F(eval_fbin(*op, a.as_f(), b.as_f()))
                        } else {
                            Val::I(normalize(eval_ibin(*op, a.as_i(), b.as_i())?, ty))
                        };
                        vals[inst.result.unwrap().0 as usize] = Some(v);
                    }
                    InstKind::Icmp { pred, ty, lhs, rhs } => {
                        let a = self.operand(lhs, &vals)?;
                        let b = self.operand(rhs, &vals)?;
                        let r = if *ty == Ty::F64 {
                            match pred.mnemonic() {
                                "eq" => a.as_f() == b.as_f(),
                                "ne" => a.as_f() != b.as_f(),
                                "slt" => a.as_f() < b.as_f(),
                                "sle" => a.as_f() <= b.as_f(),
                                "sgt" => a.as_f() > b.as_f(),
                                _ => a.as_f() >= b.as_f(),
                            }
                        } else {
                            pred.eval(a.as_i(), b.as_i())
                        };
                        vals[inst.result.unwrap().0 as usize] = Some(Val::I(r as i64));
                    }
                    InstKind::Br { target } => {
                        next = Some((*target, block));
                        break;
                    }
                    InstKind::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        let c = self.operand(cond, &vals)?.as_i();
                        next = Some((if c != 0 { *then_bb } else { *else_bb }, block));
                        break;
                    }
                    InstKind::Ret { val } => {
                        return match val {
                            Some(op) => Ok(Some(self.operand(op, &vals)?)),
                            None => Ok(None),
                        };
                    }
                    InstKind::Call {
                        callee,
                        args: call_args,
                        ..
                    } => {
                        let mut av = Vec::with_capacity(call_args.len());
                        for a in call_args {
                            av.push(self.operand(a, &vals)?);
                        }
                        let r = self.call(callee, &av, depth + 1)?;
                        if let Some(res) = inst.result {
                            vals[res.0 as usize] =
                                Some(r.ok_or_else(|| ExecError::Trap("void call result".into()))?);
                        }
                    }
                    InstKind::Gep {
                        elem_ty,
                        base,
                        index,
                    } => {
                        let b = self.operand(base, &vals)?.as_i();
                        let i = self.operand(index, &vals)?.as_i();
                        let addr = b.wrapping_add(i.wrapping_mul(elem_ty.size_bytes() as i64));
                        vals[inst.result.unwrap().0 as usize] = Some(Val::I(addr));
                    }
                    InstKind::Select {
                        cond,
                        then_v,
                        else_v,
                        ..
                    } => {
                        let c = self.operand(cond, &vals)?.as_i();
                        let v = if c != 0 {
                            self.operand(then_v, &vals)?
                        } else {
                            self.operand(else_v, &vals)?
                        };
                        vals[inst.result.unwrap().0 as usize] = Some(v);
                    }
                    InstKind::Cast {
                        kind,
                        val,
                        from,
                        to,
                    } => {
                        let v = self.operand(val, &vals)?;
                        let out = eval_cast(*kind, v, from, to);
                        vals[inst.result.unwrap().0 as usize] = Some(out);
                    }
                    InstKind::Unreachable => {
                        return Err(ExecError::Trap("unreachable executed".into()))
                    }
                }
            }
            match next {
                Some((nb, pb)) => {
                    prev = Some(pb);
                    block = nb;
                }
                None => return Err(ExecError::Trap("block fell through".into())),
            }
        }
    }

    fn operand(&self, op: &Operand, vals: &[Option<Val>]) -> Result<Val, ExecError> {
        match op {
            Operand::Value(v) => {
                vals[v.0 as usize].ok_or_else(|| ExecError::Trap(format!("read of unset %{}", v.0)))
            }
            Operand::ConstInt { value, .. } => Ok(Val::I(*value)),
            Operand::ConstF64(x) => Ok(Val::F(*x)),
            Operand::Global(name) => self
                .globals
                .get(name.as_str())
                .map(|a| Val::I(*a))
                .ok_or_else(|| ExecError::Trap(format!("unknown global @{name}"))),
            Operand::Undef(_) => Ok(Val::I(0)),
        }
    }
}

fn eval_ibin(op: BinOp, a: i64, b: i64) -> Result<i64, ExecError> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::SDiv => {
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            a.wrapping_div(b)
        }
        BinOp::SRem => {
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::AShr => a.wrapping_shr(b as u32 & 63),
    })
}

fn eval_fbin(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::SDiv => a / b,
        _ => f64::NAN,
    }
}

/// Integers are stored sign-extended to 64 bits regardless of nominal width.
fn normalize(v: i64, ty: &Ty) -> i64 {
    match ty {
        Ty::I1 => v & 1,
        Ty::I8 => v as i8 as i64,
        Ty::I32 => v as i32 as i64,
        _ => v,
    }
}

fn eval_cast(kind: CastKind, v: Val, from: &Ty, to: &Ty) -> Val {
    match kind {
        CastKind::Bitcast => match (from, to) {
            // reinterpret bits across the int/float divide (decompiled code
            // moves doubles through integer registers)
            (Ty::F64, t) if t.is_int() || t.is_ptr() => Val::I(v.as_f().to_bits() as i64),
            (f, Ty::F64) if f.is_int() || f.is_ptr() => Val::F(f64::from_bits(v.as_i() as u64)),
            _ => v,
        },
        CastKind::Zext => {
            let bits = from.bits().unwrap_or(64);
            let mask = if bits >= 64 {
                -1i64
            } else {
                (1i64 << bits) - 1
            };
            Val::I(v.as_i() & mask)
        }
        CastKind::Sext => Val::I(normalize(v.as_i(), from)),
        CastKind::Trunc => Val::I(normalize(v.as_i(), to)),
        CastKind::Sitofp => Val::F(v.as_i() as f64),
        CastKind::Fptosi => Val::I(normalize(v.as_f() as i64, to)),
    }
}

/// Convenience: run `name` in `module` with i64 arguments and default fuel.
pub fn run_function(
    module: &Module,
    name: &str,
    args: &[i64],
    fuel: u64,
) -> Result<Outcome, ExecError> {
    let vals: Vec<Val> = args.iter().map(|&a| Val::I(a)).collect();
    Interp::new(module, fuel).run(name, &vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{FunctionBuilder, IcmpPred};

    #[test]
    fn arithmetic_and_return() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("f", vec![Ty::I64, Ty::I64], Ty::I64);
        let bb = fb.entry_block();
        let a = fb.param_operand(0);
        let b = fb.param_operand(1);
        let s = fb.binop(bb, BinOp::Mul, Ty::I64, a, b);
        let s2 = fb.binop(bb, BinOp::Add, Ty::I64, s, Operand::const_i64(1));
        fb.ret(bb, Some(s2));
        m.push_function(fb.finish());
        let out = run_function(&m, "f", &[6, 7], 1000).unwrap();
        assert_eq!(out.ret, Some(Val::I(43)));
    }

    #[test]
    fn loop_sums_first_n() {
        // sum 0..n via alloca counter — exercises load/store/branch/phi-free path
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("sum", vec![Ty::I64], Ty::I64);
        let bb0 = fb.entry_block();
        let cond_bb = fb.add_block();
        let body_bb = fb.add_block();
        let done_bb = fb.add_block();
        let n = fb.param_operand(0);
        let i_slot = fb.alloca(bb0, Ty::I64);
        let s_slot = fb.alloca(bb0, Ty::I64);
        fb.store(bb0, Ty::I64, Operand::const_i64(0), i_slot.clone());
        fb.store(bb0, Ty::I64, Operand::const_i64(0), s_slot.clone());
        fb.br(bb0, cond_bb);
        let i = fb.load(cond_bb, Ty::I64, i_slot.clone());
        let c = fb.icmp(cond_bb, IcmpPred::Slt, Ty::I64, i.clone(), n);
        fb.cond_br(cond_bb, c, body_bb, done_bb);
        let i2 = fb.load(body_bb, Ty::I64, i_slot.clone());
        let s = fb.load(body_bb, Ty::I64, s_slot.clone());
        let s2 = fb.binop(body_bb, BinOp::Add, Ty::I64, s, i2.clone());
        fb.store(body_bb, Ty::I64, s2, s_slot.clone());
        let i3 = fb.binop(body_bb, BinOp::Add, Ty::I64, i2, Operand::const_i64(1));
        fb.store(body_bb, Ty::I64, i3, i_slot);
        fb.br(body_bb, cond_bb);
        let fin = fb.load(done_bb, Ty::I64, s_slot);
        fb.ret(done_bb, Some(fin));
        m.push_function(fb.finish());
        let out = run_function(&m, "sum", &[10], 10_000).unwrap();
        assert_eq!(out.ret, Some(Val::I(45)));
    }

    #[test]
    fn phi_merges_values() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("absdiff", vec![Ty::I64, Ty::I64], Ty::I64);
        let bb0 = fb.entry_block();
        let bb1 = fb.add_block();
        let bb2 = fb.add_block();
        let bb3 = fb.add_block();
        let a = fb.param_operand(0);
        let b = fb.param_operand(1);
        let c = fb.icmp(bb0, IcmpPred::Sgt, Ty::I64, a.clone(), b.clone());
        fb.cond_br(bb0, c, bb1, bb2);
        let d1 = fb.binop(bb1, BinOp::Sub, Ty::I64, a.clone(), b.clone());
        fb.br(bb1, bb3);
        let d2 = fb.binop(bb2, BinOp::Sub, Ty::I64, b, a);
        fb.br(bb2, bb3);
        let ph = fb.phi(bb3, Ty::I64, vec![(d1, bb1), (d2, bb2)]);
        fb.ret(bb3, Some(ph));
        m.push_function(fb.finish());
        assert_eq!(
            run_function(&m, "absdiff", &[3, 10], 100).unwrap().ret,
            Some(Val::I(7))
        );
        assert_eq!(
            run_function(&m, "absdiff", &[10, 3], 100).unwrap().ret,
            Some(Val::I(7))
        );
    }

    #[test]
    fn intrinsics_print_and_alloc() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("main", vec![], Ty::I64);
        let bb = fb.entry_block();
        let buf = fb
            .call(bb, "rt_alloc", Ty::I64, vec![Operand::const_i64(16)])
            .unwrap();
        fb.store(bb, Ty::I64, Operand::const_i64(99), buf.clone());
        let v = fb.load(bb, Ty::I64, buf);
        fb.call(bb, "rt_print_i64", Ty::Void, vec![v.clone()]);
        fb.ret(bb, Some(v));
        m.push_function(fb.finish());
        let out = run_function(&m, "main", &[], 100).unwrap();
        assert_eq!(out.output, vec![99]);
        assert_eq!(out.ret, Some(Val::I(99)));
    }

    #[test]
    fn fuel_limits_infinite_loops() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("spin", vec![], Ty::Void);
        let bb0 = fb.entry_block();
        let bb1 = fb.add_block();
        fb.br(bb0, bb1);
        fb.br(bb1, bb1);
        m.push_function(fb.finish());
        assert_eq!(
            run_function(&m, "spin", &[], 100).unwrap_err(),
            ExecError::OutOfFuel
        );
    }

    #[test]
    fn division_by_zero_faults() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("d", vec![Ty::I64], Ty::I64);
        let bb = fb.entry_block();
        let p = fb.param_operand(0);
        let r = fb.binop(bb, BinOp::SDiv, Ty::I64, Operand::const_i64(10), p);
        fb.ret(bb, Some(r));
        m.push_function(fb.finish());
        assert_eq!(
            run_function(&m, "d", &[0], 100).unwrap_err(),
            ExecError::DivByZero
        );
        assert_eq!(
            run_function(&m, "d", &[2], 100).unwrap().ret,
            Some(Val::I(5))
        );
    }

    #[test]
    fn null_deref_faults() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("n", vec![], Ty::I64);
        let bb = fb.entry_block();
        let v = fb.load(
            bb,
            Ty::I64,
            Operand::ConstInt {
                value: 0,
                ty: Ty::I64.ptr(),
            },
        );
        fb.ret(bb, Some(v));
        m.push_function(fb.finish());
        assert!(matches!(
            run_function(&m, "n", &[], 100).unwrap_err(),
            ExecError::BadMemAccess(0)
        ));
    }

    #[test]
    fn recursion_works_and_overflows_gracefully() {
        // fib via recursion
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("fib", vec![Ty::I64], Ty::I64);
        let bb0 = fb.entry_block();
        let rec = fb.add_block();
        let base = fb.add_block();
        let n = fb.param_operand(0);
        let c = fb.icmp(
            bb0,
            IcmpPred::Slt,
            Ty::I64,
            n.clone(),
            Operand::const_i64(2),
        );
        fb.cond_br(bb0, c, base, rec);
        fb.ret(base, Some(n.clone()));
        let n1 = fb.binop(rec, BinOp::Sub, Ty::I64, n.clone(), Operand::const_i64(1));
        let f1 = fb.call(rec, "fib", Ty::I64, vec![n1]).unwrap();
        let n2 = fb.binop(rec, BinOp::Sub, Ty::I64, n, Operand::const_i64(2));
        let f2 = fb.call(rec, "fib", Ty::I64, vec![n2]).unwrap();
        let s = fb.binop(rec, BinOp::Add, Ty::I64, f1, f2);
        fb.ret(rec, Some(s));
        m.push_function(fb.finish());
        assert_eq!(
            run_function(&m, "fib", &[10], 100_000).unwrap().ret,
            Some(Val::I(55))
        );
    }

    #[test]
    fn globals_are_addressable() {
        let mut m = Module::new("t");
        m.globals.push(crate::module::Global {
            name: "tbl".into(),
            ty: Ty::I64.array(3),
            init: crate::module::GlobalInit::I64s(vec![5, 6, 7]),
        });
        let mut fb = FunctionBuilder::new("g", vec![Ty::I64], Ty::I64);
        let bb = fb.entry_block();
        let base = fb.cast(
            bb,
            CastKind::Bitcast,
            Operand::Global("tbl".into()),
            Ty::I64.array(3).ptr(),
            Ty::I64.ptr(),
        );
        let p = fb.gep(bb, Ty::I64, base, fb.param_operand(0));
        let v = fb.load(bb, Ty::I64, p);
        fb.ret(bb, Some(v));
        m.push_function(fb.finish());
        assert_eq!(
            run_function(&m, "g", &[1], 100).unwrap().ret,
            Some(Val::I(6))
        );
        assert_eq!(
            run_function(&m, "g", &[2], 100).unwrap().ret,
            Some(Val::I(7))
        );
    }

    #[test]
    fn casts_behave() {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("c", vec![Ty::I64], Ty::I64);
        let bb = fb.entry_block();
        let p = fb.param_operand(0);
        let t = fb.cast(bb, CastKind::Trunc, p, Ty::I64, Ty::I8);
        let z = fb.cast(bb, CastKind::Zext, t.clone(), Ty::I8, Ty::I64);
        let s = fb.cast(bb, CastKind::Sext, t, Ty::I8, Ty::I64);
        let d = fb.binop(bb, BinOp::Sub, Ty::I64, z, s);
        fb.ret(bb, Some(d));
        m.push_function(fb.finish());
        // 0xFF: zext = 255, sext = -1 ⇒ diff = 256
        assert_eq!(
            run_function(&m, "c", &[255], 100).unwrap().ret,
            Some(Val::I(256))
        );
        // 0x7F: both 127 ⇒ 0
        assert_eq!(
            run_function(&m, "c", &[127], 100).unwrap().ret,
            Some(Val::I(0))
        );
    }
}
