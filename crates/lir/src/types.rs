//! LIR types.

use std::fmt;

/// A first-class LIR type. Mirrors the LLVM types the paper's pipeline
/// actually encounters: small integers, a double float, pointers, and
/// fixed-size arrays.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Ty {
    /// 1-bit boolean (icmp results, branch conditions).
    I1,
    /// 8-bit integer (bytes, chars).
    I8,
    /// 32-bit integer.
    I32,
    /// 64-bit integer — the workhorse type; decompiled code degrades to it.
    I64,
    /// 64-bit IEEE float.
    F64,
    /// Pointer to a pointee type.
    Ptr(Box<Ty>),
    /// Fixed-length array.
    Array(Box<Ty>, usize),
    /// Function return "no value".
    Void,
}

impl Ty {
    /// Pointer to `self`.
    pub fn ptr(self) -> Ty {
        Ty::Ptr(Box::new(self))
    }

    /// Array of `n` elements of `self`.
    pub fn array(self, n: usize) -> Ty {
        Ty::Array(Box::new(self), n)
    }

    /// True for any integer type (including i1).
    pub fn is_int(&self) -> bool {
        matches!(self, Ty::I1 | Ty::I8 | Ty::I32 | Ty::I64)
    }

    /// True for pointer types.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// Element type of an array.
    pub fn elem(&self) -> Option<&Ty> {
        match self {
            Ty::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Bit width of integer types.
    pub fn bits(&self) -> Option<u32> {
        match self {
            Ty::I1 => Some(1),
            Ty::I8 => Some(8),
            Ty::I32 => Some(32),
            Ty::I64 => Some(64),
            _ => None,
        }
    }

    /// Size in bytes when laid out in the VISA binary substrate.
    pub fn size_bytes(&self) -> usize {
        match self {
            Ty::I1 | Ty::I8 => 1,
            Ty::I32 => 4,
            Ty::I64 | Ty::F64 | Ty::Ptr(_) => 8,
            Ty::Array(t, n) => t.size_bytes() * n,
            Ty::Void => 0,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::I1 => write!(f, "i1"),
            Ty::I8 => write!(f, "i8"),
            Ty::I32 => write!(f, "i32"),
            Ty::I64 => write!(f, "i64"),
            Ty::F64 => write!(f, "double"),
            Ty::Ptr(t) => write!(f, "{t}*"),
            Ty::Array(t, n) => write!(f, "[{n} x {t}]"),
            Ty::Void => write!(f, "void"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_llvm_style() {
        assert_eq!(Ty::I32.to_string(), "i32");
        assert_eq!(Ty::I64.ptr().to_string(), "i64*");
        assert_eq!(Ty::I32.array(4).to_string(), "[4 x i32]");
        assert_eq!(Ty::I8.ptr().ptr().to_string(), "i8**");
        assert_eq!(Ty::F64.to_string(), "double");
    }

    #[test]
    fn sizes() {
        assert_eq!(Ty::I32.size_bytes(), 4);
        assert_eq!(Ty::I64.size_bytes(), 8);
        assert_eq!(Ty::I32.array(10).size_bytes(), 40);
        assert_eq!(Ty::I64.ptr().size_bytes(), 8);
    }

    #[test]
    fn predicates() {
        assert!(Ty::I1.is_int());
        assert!(!Ty::F64.is_int());
        assert!(Ty::I8.ptr().is_ptr());
        assert_eq!(Ty::I8.ptr().pointee(), Some(&Ty::I8));
        assert_eq!(Ty::I32.array(3).elem(), Some(&Ty::I32));
        assert_eq!(Ty::I32.bits(), Some(32));
        assert_eq!(Ty::F64.bits(), None);
    }
}
