//! Module verifier: structural SSA discipline every pass must preserve.
//!
//! Checks, per function:
//! * every block ends with exactly one terminator, and terminators appear
//!   only in tail position,
//! * result ids are unique and present exactly when the opcode produces one,
//! * every `Operand::Value` refers to a parameter or an instruction result,
//! * definitions dominate uses (φ incomings are checked against the matching
//!   predecessor edge instead),
//! * branch targets and φ predecessors are valid block ids,
//! * calls reference a function that exists in the module (or a `rt_`
//!   runtime intrinsic, which the interpreter and binary substrate provide),
//! * block ids equal their index.

use std::collections::HashMap;
use std::fmt;

use crate::cfg;
use crate::module::{BlockId, Function, InstKind, Module, ValueId};

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function where the failure occurred.
    pub function: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in @{}: {}", self.function, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in the module.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in &m.functions {
        if !f.is_declaration() {
            verify_function(m, f)?;
        }
    }
    Ok(())
}

fn err(f: &Function, msg: impl Into<String>) -> VerifyError {
    VerifyError {
        function: f.name.clone(),
        message: msg.into(),
    }
}

fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    let nblocks = f.blocks.len();
    if nblocks == 0 {
        return Err(err(f, "defined function with no blocks"));
    }
    for (i, b) in f.blocks.iter().enumerate() {
        if b.id.0 as usize != i {
            return Err(err(f, format!("block id bb{} at index {i}", b.id.0)));
        }
        if b.insts.is_empty() {
            return Err(err(f, format!("bb{} is empty", b.id.0)));
        }
        for (j, inst) in b.insts.iter().enumerate() {
            let is_last = j + 1 == b.insts.len();
            if inst.kind.is_terminator() != is_last {
                return Err(err(
                    f,
                    format!("bb{}: terminator discipline violated at inst {j}", b.id.0),
                ));
            }
            if inst.kind.has_result() != inst.result.is_some() {
                return Err(err(
                    f,
                    format!(
                        "bb{} inst {j}: result presence mismatch for {}",
                        b.id.0,
                        inst.kind.opcode()
                    ),
                ));
            }
        }
    }

    // definition sites
    let mut def_site: HashMap<ValueId, (BlockId, usize)> = HashMap::new();
    for i in 0..f.params.len() {
        def_site.insert(ValueId(i as u32), (BlockId(0), usize::MAX)); // params: before entry
    }
    for b in &f.blocks {
        for (j, inst) in b.insts.iter().enumerate() {
            if let Some(r) = inst.result {
                if def_site.insert(r, (b.id, j)).is_some() {
                    return Err(err(f, format!("%{} defined twice", r.0)));
                }
            }
        }
    }

    let check_block_ref = |target: BlockId| -> Result<(), VerifyError> {
        if (target.0 as usize) < nblocks {
            Ok(())
        } else {
            Err(err(f, format!("branch to unknown block bb{}", target.0)))
        }
    };

    // Validate all block references before building the CFG — the dominator
    // walk indexes blocks by id and would panic on a dangling branch.
    for b in &f.blocks {
        for inst in &b.insts {
            match &inst.kind {
                InstKind::Br { target } => check_block_ref(*target)?,
                InstKind::CondBr {
                    then_bb, else_bb, ..
                } => {
                    check_block_ref(*then_bb)?;
                    check_block_ref(*else_bb)?;
                }
                InstKind::Phi { incomings, .. } => {
                    for (_, in_bb) in incomings {
                        check_block_ref(*in_bb)?;
                    }
                }
                _ => {}
            }
        }
    }

    let idom = cfg::dominators(f);
    let reachable = cfg::reachable(f);
    let preds = cfg::predecessors(f);

    // params defined "at entry", which dominates everything reachable
    let dominates_use = |def: (BlockId, usize), use_bb: BlockId, use_idx: usize| -> bool {
        let (def_bb, def_idx) = def;
        if def_idx == usize::MAX {
            return true; // parameter
        }
        if def_bb == use_bb {
            return def_idx < use_idx;
        }
        cfg::dominates(&idom, def_bb, use_bb)
    };

    for b in &f.blocks {
        if !reachable[b.id.0 as usize] {
            continue; // dominance undefined for unreachable code
        }
        for (j, inst) in b.insts.iter().enumerate() {
            match &inst.kind {
                InstKind::Br { target } => check_block_ref(*target)?,
                InstKind::CondBr {
                    then_bb, else_bb, ..
                } => {
                    check_block_ref(*then_bb)?;
                    check_block_ref(*else_bb)?;
                }
                InstKind::Call { callee, .. } => {
                    let known = m.function(callee).is_some() || callee.starts_with("rt_");
                    if !known {
                        return Err(err(f, format!("call to unknown @{callee}")));
                    }
                }
                InstKind::Phi { incomings, .. } => {
                    let bpreds = &preds[b.id.0 as usize];
                    for (_, in_bb) in incomings {
                        check_block_ref(*in_bb)?;
                        if !bpreds.contains(in_bb) {
                            return Err(err(
                                f,
                                format!(
                                    "bb{}: phi incoming from non-predecessor bb{}",
                                    b.id.0, in_bb.0
                                ),
                            ));
                        }
                    }
                }
                _ => {}
            }

            // operand defined-ness & dominance
            if let InstKind::Phi { incomings, .. } = &inst.kind {
                // a phi use must dominate the *end* of the incoming edge
                for (op, in_bb) in incomings {
                    if let Some(v) = op.as_value() {
                        let Some(&def) = def_site.get(&v) else {
                            return Err(err(f, format!("%{} used but never defined", v.0)));
                        };
                        let in_len = f.blocks[in_bb.0 as usize].insts.len();
                        if reachable[in_bb.0 as usize] && !dominates_use(def, *in_bb, in_len) {
                            return Err(err(
                                f,
                                format!(
                                    "bb{}: phi operand %{} does not dominate edge",
                                    b.id.0, v.0
                                ),
                            ));
                        }
                    }
                }
            } else {
                for op in inst.kind.operands() {
                    if let Some(v) = op.as_value() {
                        let Some(&def) = def_site.get(&v) else {
                            return Err(err(f, format!("%{} used but never defined", v.0)));
                        };
                        if !dominates_use(def, b.id, j) {
                            return Err(err(
                                f,
                                format!(
                                    "bb{} inst {j}: use of %{} not dominated by its def",
                                    b.id.0, v.0
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{BinOp, Block, FunctionBuilder, Inst, Module, Operand};
    use crate::types::Ty;

    fn ok_module() -> Module {
        let mut m = Module::new("ok");
        let mut fb = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let bb0 = fb.entry_block();
        let p = fb.param_operand(0);
        let r = fb.binop(bb0, BinOp::Add, Ty::I64, p, Operand::const_i64(1));
        fb.ret(bb0, Some(r));
        m.push_function(fb.finish());
        m
    }

    #[test]
    fn accepts_valid_module() {
        assert!(verify_module(&ok_module()).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = ok_module();
        m.functions[0].blocks[0].insts.pop();
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_use_before_def() {
        let mut m = ok_module();
        // make the add reference a not-yet-defined value %9
        if let InstKind::Bin { lhs, .. } = &mut m.functions[0].blocks[0].insts[0].kind {
            *lhs = Operand::Value(ValueId(9));
        }
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("never defined"), "{e}");
    }

    #[test]
    fn rejects_unknown_callee() {
        let mut m = ok_module();
        let f = &mut m.functions[0];
        f.blocks[0].insts.insert(
            0,
            Inst {
                result: None,
                kind: InstKind::Call {
                    callee: "nope".into(),
                    ret_ty: Ty::Void,
                    args: vec![],
                },
            },
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("unknown @nope"), "{e}");
    }

    #[test]
    fn allows_rt_intrinsics() {
        let mut m = ok_module();
        let f = &mut m.functions[0];
        f.blocks[0].insts.insert(
            0,
            Inst {
                result: None,
                kind: InstKind::Call {
                    callee: "rt_print_i64".into(),
                    ret_ty: Ty::Void,
                    args: vec![Operand::const_i64(1)],
                },
            },
        );
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_branch_to_missing_block() {
        let mut m = ok_module();
        let f = &mut m.functions[0];
        let last = f.blocks[0].insts.len() - 1;
        f.blocks[0].insts[last] = Inst {
            result: None,
            kind: InstKind::Br { target: BlockId(7) },
        };
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("unknown block"), "{e}");
    }

    #[test]
    fn rejects_phi_from_non_predecessor() {
        let mut fb = FunctionBuilder::new("p", vec![Ty::I64], Ty::I64);
        let bb0 = fb.entry_block();
        let bb1 = fb.add_block();
        let bb2 = fb.add_block();
        fb.br(bb0, bb1);
        fb.br(bb1, bb2);
        // phi claims an incoming from bb0, but bb2's only pred is bb1
        let ph = fb.phi(bb2, Ty::I64, vec![(Operand::const_i64(1), bb0)]);
        fb.ret(bb2, Some(ph));
        let mut m = Module::new("p");
        m.push_function(fb.finish());
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("non-predecessor"), "{e}");
    }

    #[test]
    fn rejects_use_not_dominating() {
        // bb0 → {bb1, bb2}; value defined in bb1 used in bb2
        let mut fb = FunctionBuilder::new("d", vec![Ty::I1], Ty::I64);
        let bb0 = fb.entry_block();
        let bb1 = fb.add_block();
        let bb2 = fb.add_block();
        let c = fb.param_operand(0);
        fb.cond_br(bb0, c, bb1, bb2);
        let v = fb.binop(
            bb1,
            BinOp::Add,
            Ty::I64,
            Operand::const_i64(1),
            Operand::const_i64(2),
        );
        fb.ret(bb1, Some(v.clone()));
        fb.ret(bb2, Some(v)); // illegal: bb1 does not dominate bb2
        let mut m = Module::new("d");
        m.push_function(fb.finish());
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("not dominated"), "{e}");
    }

    #[test]
    fn rejects_misindexed_blocks() {
        let mut m = ok_module();
        m.functions[0].blocks.push(Block {
            id: BlockId(5),
            insts: vec![],
        });
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("block id"), "{e}");
    }
}
