//! Textual rendering of LIR in an LLVM-`.ll`-like format.
//!
//! The printed instruction line is exactly what ProGraML consumes as the
//! `full_text` node attribute, so the renderer is shared with `gbm-progml`
//! through [`print_inst`].

use std::fmt::Write;

use crate::module::{Function, Global, GlobalInit, Inst, InstKind, Module, Operand};
use crate::types::Ty;

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", m.name);
    for g in &m.globals {
        let _ = writeln!(out, "{}", print_global(g));
    }
    for f in &m.functions {
        if f.is_declaration() {
            let params: Vec<String> = f.params.iter().map(|t| t.to_string()).collect();
            let _ = writeln!(
                out,
                "declare {} @{}({})",
                f.ret_ty,
                f.name,
                params.join(", ")
            );
        }
    }
    for f in &m.functions {
        if !f.is_declaration() {
            out.push_str(&print_function(m, f));
        }
    }
    out
}

fn print_global(g: &Global) -> String {
    match &g.init {
        GlobalInit::Zero => format!("@{} = global {} zeroinitializer", g.name, g.ty),
        GlobalInit::I64s(words) => {
            let body: Vec<String> = words.iter().map(|w| format!("i64 {w}")).collect();
            format!("@{} = global {} [{}]", g.name, g.ty, body.join(", "))
        }
        GlobalInit::Bytes(bytes) => {
            let mut s = String::new();
            for &b in bytes {
                if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                    s.push(b as char);
                } else {
                    let _ = write!(s, "\\{b:02X}");
                }
            }
            format!("@{} = global {} c\"{}\"", g.name, g.ty, s)
        }
    }
}

/// Renders one function definition.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{t} %{i}"))
        .collect();
    let _ = writeln!(
        out,
        "define {} @{}({}) {{",
        f.ret_ty,
        f.name,
        params.join(", ")
    );
    let types = f.value_types();
    for block in &f.blocks {
        let _ = writeln!(out, "bb{}:", block.id.0);
        for inst in &block.insts {
            let _ = writeln!(out, "  {}", print_inst(m, f, &types, inst));
        }
    }
    out.push_str("}\n");
    out
}

/// The type of an operand under the function's value-type table.
pub fn operand_ty(m: &Module, types: &[Option<Ty>], op: &Operand) -> Ty {
    match op {
        Operand::Value(v) => types
            .get(v.0 as usize)
            .cloned()
            .flatten()
            .unwrap_or(Ty::I64),
        Operand::ConstInt { ty, .. } => ty.clone(),
        Operand::ConstF64(_) => Ty::F64,
        Operand::Global(name) => m
            .globals
            .iter()
            .find(|g| &g.name == name)
            .map(|g| g.ty.clone().ptr())
            .unwrap_or(Ty::I8.ptr()),
        Operand::Undef(ty) => ty.clone(),
    }
}

fn fmt_operand(op: &Operand) -> String {
    match op {
        Operand::Value(v) => format!("%{}", v.0),
        Operand::ConstInt { value, .. } => format!("{value}"),
        Operand::ConstF64(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
        Operand::Global(name) => format!("@{name}"),
        Operand::Undef(_) => "undef".to_string(),
    }
}

fn fmt_typed(m: &Module, types: &[Option<Ty>], op: &Operand) -> String {
    format!("{} {}", operand_ty(m, types, op), fmt_operand(op))
}

/// Renders one instruction — the ProGraML `full_text` attribute.
pub fn print_inst(m: &Module, _f: &Function, types: &[Option<Ty>], inst: &Inst) -> String {
    let lhs = inst
        .result
        .map(|r| format!("%{} = ", r.0))
        .unwrap_or_default();
    let body = match &inst.kind {
        InstKind::Alloca { ty } => format!("alloca {ty}"),
        InstKind::Load { ty, ptr } => {
            format!("load {ty}, {}", fmt_typed(m, types, ptr))
        }
        InstKind::Store { ty, val, ptr } => {
            format!(
                "store {ty} {}, {}",
                fmt_operand(val),
                fmt_typed(m, types, ptr)
            )
        }
        InstKind::Bin {
            op,
            ty,
            lhs: a,
            rhs: b,
        } => {
            let mn = if *ty == Ty::F64 {
                op.float_mnemonic().unwrap_or(op.mnemonic())
            } else {
                op.mnemonic()
            };
            format!("{mn} {ty} {}, {}", fmt_operand(a), fmt_operand(b))
        }
        InstKind::Icmp {
            pred,
            ty,
            lhs: a,
            rhs: b,
        } => {
            if *ty == Ty::F64 {
                let fp = match pred.mnemonic() {
                    "eq" => "oeq",
                    "ne" => "one",
                    "slt" => "olt",
                    "sle" => "ole",
                    "sgt" => "ogt",
                    _ => "oge",
                };
                format!("fcmp {fp} double {}, {}", fmt_operand(a), fmt_operand(b))
            } else {
                format!(
                    "icmp {} {ty} {}, {}",
                    pred.mnemonic(),
                    fmt_operand(a),
                    fmt_operand(b)
                )
            }
        }
        InstKind::Br { target } => format!("br label %bb{}", target.0),
        InstKind::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!(
            "br i1 {}, label %bb{}, label %bb{}",
            fmt_operand(cond),
            then_bb.0,
            else_bb.0
        ),
        InstKind::Ret { val: Some(v) } => format!("ret {}", fmt_typed(m, types, v)),
        InstKind::Ret { val: None } => "ret void".to_string(),
        InstKind::Call {
            callee,
            ret_ty,
            args,
        } => {
            let args: Vec<String> = args.iter().map(|a| fmt_typed(m, types, a)).collect();
            format!("call {ret_ty} @{callee}({})", args.join(", "))
        }
        InstKind::Phi { ty, incomings } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|(v, b)| format!("[ {}, %bb{} ]", fmt_operand(v), b.0))
                .collect();
            format!("phi {ty} {}", inc.join(", "))
        }
        InstKind::Gep {
            elem_ty,
            base,
            index,
        } => format!(
            "getelementptr {elem_ty}, {}, {}",
            fmt_typed(m, types, base),
            fmt_typed(m, types, index)
        ),
        InstKind::Select {
            ty,
            cond,
            then_v,
            else_v,
        } => format!(
            "select i1 {}, {ty} {}, {ty} {}",
            fmt_operand(cond),
            fmt_operand(then_v),
            fmt_operand(else_v)
        ),
        InstKind::Cast {
            kind,
            val,
            from,
            to,
        } => {
            format!("{} {from} {} to {to}", kind.mnemonic(), fmt_operand(val))
        }
        InstKind::Unreachable => "unreachable".to_string(),
    };
    format!("{lhs}{body}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{BinOp, FunctionBuilder, IcmpPred};

    fn sample_module() -> Module {
        let mut m = Module::new("t");
        let mut fb = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let bb0 = fb.entry_block();
        let bb1 = fb.add_block();
        let bb2 = fb.add_block();
        let p = fb.param_operand(0);
        let slot = fb.alloca(bb0, Ty::I64);
        fb.store(bb0, Ty::I64, p.clone(), slot.clone());
        let v = fb.load(bb0, Ty::I64, slot.clone());
        let c = fb.icmp(
            bb0,
            IcmpPred::Slt,
            Ty::I64,
            v.clone(),
            Operand::const_i64(10),
        );
        fb.cond_br(bb0, c, bb1, bb2);
        let dbl = fb.binop(bb1, BinOp::Mul, Ty::I64, v.clone(), Operand::const_i64(2));
        fb.ret(bb1, Some(dbl));
        fb.ret(bb2, Some(v));
        m.push_function(fb.finish());
        m
    }

    #[test]
    fn prints_llvm_like_text() {
        let m = sample_module();
        let text = m.to_text();
        assert!(text.contains("define i64 @f(i64 %0) {"), "{text}");
        assert!(text.contains("%1 = alloca i64"), "{text}");
        assert!(text.contains("store i64 %0, i64* %1"), "{text}");
        assert!(text.contains("%2 = load i64, i64* %1"), "{text}");
        assert!(text.contains("icmp slt i64 %2, 10"), "{text}");
        assert!(text.contains("br i1 %3, label %bb1, label %bb2"), "{text}");
        assert!(text.contains("mul i64 %2, 2"), "{text}");
    }

    #[test]
    fn prints_globals() {
        let mut m = Module::new("g");
        m.globals.push(Global {
            name: "msg".into(),
            ty: Ty::I8.array(3),
            init: GlobalInit::Bytes(b"hi\n".to_vec()),
        });
        let text = m.to_text();
        assert!(
            text.contains("@msg = global [3 x i8] c\"hi\\0A\""),
            "{text}"
        );
    }

    #[test]
    fn prints_declarations() {
        let mut m = Module::new("d");
        m.push_function(FunctionBuilder::declaration(
            "rt_alloc",
            vec![Ty::I64],
            Ty::I64.ptr(),
        ));
        assert!(m.to_text().contains("declare i64* @rt_alloc(i64)"));
    }

    #[test]
    fn float_ops_use_f_mnemonics() {
        let mut m = Module::new("f64");
        let mut fb = FunctionBuilder::new("g", vec![Ty::F64], Ty::F64);
        let bb = fb.entry_block();
        let p = fb.param_operand(0);
        let r = fb.binop(bb, BinOp::Add, Ty::F64, p, Operand::ConstF64(1.5));
        fb.ret(bb, Some(r));
        m.push_function(fb.finish());
        let text = m.to_text();
        assert!(text.contains("fadd double %0, 1.5"), "{text}");
    }
}
