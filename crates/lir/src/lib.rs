//! # gbm-lir
//!
//! **LIR** — a small, typed, SSA intermediate representation that stands in
//! for LLVM IR throughout the GraphBinMatch reproduction.
//!
//! The paper lowers C/C++ (via clang), Java (via JLang), and decompiled
//! binaries (via RetDec) to LLVM IR, then builds ProGraML graphs from it.
//! GraphBinMatch never inspects anything LLVM-specific beyond instruction
//! *structure* (control/data/call flow) and instruction *text*; LIR models
//! exactly that surface:
//!
//! * [`Module`] / [`Function`] / [`Block`] / [`Inst`] — the object model,
//!   with function-scoped SSA value numbering,
//! * [`Ty`] — integer/float/pointer/array types,
//! * a textual format close to `.ll` syntax with a printer / parser
//!   round-trip,
//! * a [`verify_module`] pass (operand defined-ness, type and terminator
//!   discipline),
//! * [`cfg`] utilities (successors, predecessors, reverse postorder,
//!   dominators) used by the optimizer and the graph builder,
//! * a fuel-limited [`interp`] interpreter used by the test suite to prove
//!   optimization and compile→decompile round-trips preserve semantics.
//!
//! ```
//! use gbm_lir::{FunctionBuilder, Module, Ty, Operand, BinOp};
//!
//! let mut module = Module::new("demo");
//! let mut fb = FunctionBuilder::new("add1", vec![Ty::I64], Ty::I64);
//! let entry = fb.entry_block();
//! let p0 = fb.param_operand(0);
//! let sum = fb.binop(entry, BinOp::Add, Ty::I64, p0, Operand::const_i64(1));
//! fb.ret(entry, Some(sum));
//! module.push_function(fb.finish());
//! assert!(gbm_lir::verify_module(&module).is_ok());
//! let text = module.to_text();
//! assert!(text.contains("add i64"));
//! ```

pub mod cfg;
pub mod interp;
mod module;
mod parser;
mod printer;
mod types;
mod verify;

pub use module::{
    BinOp, Block, BlockId, CastKind, Function, FunctionBuilder, Global, GlobalInit, IcmpPred, Inst,
    InstKind, Module, Operand, ValueId,
};
pub use parser::{parse_module, ParseError};
pub use printer::{operand_ty, print_function, print_inst};
pub use types::Ty;
pub use verify::{verify_module, VerifyError};
