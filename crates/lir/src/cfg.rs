//! Control-flow-graph utilities: successors/predecessors, reverse postorder,
//! reachability, and dominators (Cooper–Harvey–Kennedy).

use crate::module::{BlockId, Function, InstKind};

/// Successor block ids of `bb` (from its terminator).
pub fn successors(f: &Function, bb: BlockId) -> Vec<BlockId> {
    match f.blocks[bb.0 as usize].terminator().map(|t| &t.kind) {
        Some(InstKind::Br { target }) => vec![*target],
        Some(InstKind::CondBr {
            then_bb, else_bb, ..
        }) => {
            if then_bb == else_bb {
                vec![*then_bb]
            } else {
                vec![*then_bb, *else_bb]
            }
        }
        _ => vec![],
    }
}

/// Predecessor lists for every block, indexed by block id.
pub fn predecessors(f: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); f.blocks.len()];
    for b in &f.blocks {
        for s in successors(f, b.id) {
            preds[s.0 as usize].push(b.id);
        }
    }
    preds
}

/// Blocks reachable from the entry, as a bitset indexed by block id.
pub fn reachable(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    if f.blocks.is_empty() {
        return seen;
    }
    let mut stack = vec![BlockId(0)];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        for s in successors(f, b) {
            if !seen[s.0 as usize] {
                seen[s.0 as usize] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Reverse postorder over reachable blocks starting at the entry.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
    let mut post = Vec::with_capacity(n);
    if n == 0 {
        return post;
    }
    // iterative DFS with explicit successor cursor
    let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
    state[0] = 1;
    while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
        let succs = successors(f, b);
        if *cursor < succs.len() {
            let s = succs[*cursor];
            *cursor += 1;
            if state[s.0 as usize] == 0 {
                state[s.0 as usize] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b.0 as usize] = 2;
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate dominators, indexed by block id (`idom[entry] == entry`;
/// unreachable blocks map to `None`).
pub fn dominators(f: &Function) -> Vec<Option<BlockId>> {
    let n = f.blocks.len();
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    if n == 0 {
        return idom;
    }
    let rpo = reverse_postorder(f);
    let mut rpo_index = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        rpo_index[b.0 as usize] = i;
    }
    let preds = predecessors(f);
    idom[0] = Some(BlockId(0));

    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                a = idom[a.0 as usize].expect("processed");
            }
            while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                b = idom[b.0 as usize].expect("processed");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.0 as usize] {
                if idom[p.0 as usize].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b.0 as usize] != Some(ni) {
                    idom[b.0 as usize] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// True when block `a` dominates block `b`.
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.0 as usize] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{FunctionBuilder, IcmpPred, Operand};
    use crate::types::Ty;

    /// Diamond: bb0 → {bb1, bb2} → bb3.
    fn diamond() -> crate::module::Function {
        let mut fb = FunctionBuilder::new("d", vec![Ty::I64], Ty::I64);
        let bb0 = fb.entry_block();
        let bb1 = fb.add_block();
        let bb2 = fb.add_block();
        let bb3 = fb.add_block();
        let p = fb.param_operand(0);
        let c = fb.icmp(
            bb0,
            IcmpPred::Sgt,
            Ty::I64,
            p.clone(),
            Operand::const_i64(0),
        );
        fb.cond_br(bb0, c, bb1, bb2);
        fb.br(bb1, bb3);
        fb.br(bb2, bb3);
        fb.ret(bb3, Some(p));
        fb.finish()
    }

    #[test]
    fn successors_and_predecessors() {
        let f = diamond();
        assert_eq!(successors(&f, BlockId(0)), vec![BlockId(1), BlockId(2)]);
        assert_eq!(successors(&f, BlockId(3)), vec![]);
        let preds = predecessors(&f);
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        // bb3 must come after bb1 and bb2
        let pos = |b: u32| rpo.iter().position(|x| x.0 == b).unwrap();
        assert!(pos(3) > pos(1));
        assert!(pos(3) > pos(2));
    }

    #[test]
    fn dominators_of_diamond() {
        let f = diamond();
        let idom = dominators(&f);
        assert_eq!(idom[0], Some(BlockId(0)));
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(0)));
        // join point is dominated by the entry, not by either branch
        assert_eq!(idom[3], Some(BlockId(0)));
        assert!(dominates(&idom, BlockId(0), BlockId(3)));
        assert!(!dominates(&idom, BlockId(1), BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_detected() {
        let mut fb = FunctionBuilder::new("u", vec![], Ty::Void);
        let bb0 = fb.entry_block();
        let dead = fb.add_block();
        fb.ret(bb0, None);
        fb.ret(dead, None);
        let f = fb.finish();
        let r = reachable(&f);
        assert!(r[0]);
        assert!(!r[1]);
        assert_eq!(dominators(&f)[1], None);
    }

    #[test]
    fn loop_cfg_dominators() {
        // bb0 → bb1 (header) → bb2 (body) → bb1 ; bb1 → bb3 (exit)
        let mut fb = FunctionBuilder::new("l", vec![Ty::I64], Ty::Void);
        let bb0 = fb.entry_block();
        let bb1 = fb.add_block();
        let bb2 = fb.add_block();
        let bb3 = fb.add_block();
        fb.br(bb0, bb1);
        let p = fb.param_operand(0);
        let c = fb.icmp(bb1, IcmpPred::Slt, Ty::I64, p, Operand::const_i64(10));
        fb.cond_br(bb1, c, bb2, bb3);
        fb.br(bb2, bb1);
        fb.ret(bb3, None);
        let f = fb.finish();
        let idom = dominators(&f);
        assert_eq!(idom[1], Some(BlockId(0)));
        assert_eq!(idom[2], Some(BlockId(1)));
        assert_eq!(idom[3], Some(BlockId(1)));
        assert!(dominates(&idom, BlockId(1), BlockId(2)));
    }
}
