//! Latency histograms — promoted into `gbm-obs` so the serving stack's
//! metrics registry and the load probes share one implementation
//! ([`gbm_obs::hist`] holds the code and its edge-case tests). Re-exported
//! here unchanged, so existing `gbm_bench::LatencyHistogram` users keep
//! compiling.

pub use gbm_obs::LatencyHistogram;
