//! probe_quant: the quantized-serving numbers behind EXPERIMENTS.md.
//!
//! Everything is deterministic (seeded model, splitmix synthetic rows), so
//! runs diff cleanly across PRs. Two pools bracket the regimes:
//!
//! * **spread** — random unit-norm rows at serving scale (the
//!   `serve_query_scan_*` bench pool): quantization error is far below the
//!   score gaps, the margin zone is a handful of rows, and the int8 scan
//!   wins.
//! * **near-dup** — encoder embeddings of template-generated MiniC
//!   programs: cosines pack tighter than the int8 resolution, pure
//!   count-based candidate widening *cannot* reach recall 1, and the error
//!   margin (correctly) degrades toward re-scoring the pool.
//!
//! Reported per pool:
//!
//! * max observed `|approx − exact|` dot error vs the analytic bound
//!   (`gbm_quant::dot_error_bound`) — the bound must dominate;
//! * recall@K of the *pure count-based* top-`K·widen` pre-re-rank
//!   candidate set per widen factor — the motivation for the margin cut
//!   `gbm-serve` actually ships (which makes final rankings exact
//!   unconditionally);
//! * mean margin-zone candidate set size per query (rows the exact re-rank
//!   scores), under the legacy uniform per-shard margin *and* the shipped
//!   per-block margins — per-block must never be wider;
//! * scan footprint: `ShardedIndex::scan_bytes()` at f32 vs int8 (~4×) vs
//!   IVF (int8 + centroids/cell lists);
//! * an IVF sweep at serving scale: recall@K vs `nprobe` against the exact
//!   f32 ranking — the numbers behind the EXPERIMENTS recall table and the
//!   CI recall floor.
//!
//! ```text
//! cargo run --release -p gbm-bench --bin probe_quant [-- --json]
//! ```

use gbm_nn::{EmbeddingStore, GraphBinMatch, GraphBinMatchConfig};
use gbm_quant::{dot_error_bound, quantize_vector, QuantizedMatrix};
use gbm_serve::{IndexConfig, ScanPrecision, ShardedIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 10;
const WIDENS: [usize; 4] = [1, 2, 4, 8];

struct PoolReport {
    name: &'static str,
    rows_n: usize,
    hidden: usize,
    max_err: f32,
    max_bound: f32,
    /// `(widen, recall@K of the count-based top-K·widen candidate set)`.
    count_recall: Vec<(usize, f64)>,
    /// Mean margin-zone candidate rows the exact re-rank scores per query,
    /// under the legacy uniform per-shard margin.
    mean_margin_cands: f64,
    /// Same, under the shipped per-block margins (never wider).
    mean_blocked_cands: f64,
    f32_scan_bytes: usize,
    i8_scan_bytes: usize,
}

struct IvfReport {
    name: &'static str,
    rows_n: usize,
    hidden: usize,
    num_shards: usize,
    /// `(nprobe, mean recall@K vs the exact f32 ranking)`.
    recall_by_nprobe: Vec<(usize, f64)>,
    i8_scan_bytes: usize,
    ivf_scan_bytes: usize,
}

/// Fraction of the exact top-K ids the approximate answer recovered.
fn id_recall(approx: &[(u64, f32)], exact: &[(u64, f32)]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hits = exact
        .iter()
        .filter(|(id, _)| approx.iter().any(|(a, _)| a == id))
        .count();
    hits as f64 / exact.len() as f64
}

/// Recall@K vs `nprobe` at serving scale, plus the IVF footprint delta.
fn analyze_ivf(
    name: &'static str,
    rows: &[f32],
    hidden: usize,
    queries: &[Vec<f32>],
    nprobes: &[usize],
) -> IvfReport {
    let num_shards = 4;
    let mk = |precision| {
        ShardedIndex::from_rows(
            rows,
            hidden,
            IndexConfig {
                num_shards,
                encode_batch: 8,
                precision,
                ..Default::default()
            },
        )
    };
    let exact_index = mk(ScanPrecision::F32);
    let i8_index = mk(ScanPrecision::Int8 { widen: 1 });
    let exact: Vec<_> = queries.iter().map(|q| exact_index.query(q, K)).collect();
    let mut recall_by_nprobe = Vec::new();
    let mut ivf_scan_bytes = 0;
    for &nprobe in nprobes {
        let ivf_index = mk(ScanPrecision::Ivf { nprobe, widen: 4 });
        ivf_scan_bytes = ivf_index.scan_bytes();
        let mean: f64 = queries
            .iter()
            .zip(&exact)
            .map(|(q, e)| id_recall(&ivf_index.query(q, K), e))
            .sum::<f64>()
            / queries.len() as f64;
        recall_by_nprobe.push((nprobe, mean));
    }
    IvfReport {
        name,
        rows_n: rows.len() / hidden,
        hidden,
        num_shards,
        recall_by_nprobe,
        i8_scan_bytes: i8_index.scan_bytes(),
        ivf_scan_bytes,
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// The exact top-K rows of `rows` for `query` by f32 dot, ties by row.
fn exact_top_k(rows: &[f32], hidden: usize, query: &[f32], k: usize) -> Vec<usize> {
    let scores: Vec<f32> = rows.chunks_exact(hidden).map(|r| dot(query, r)).collect();
    gbm_tensor::top_k(&scores, k)
        .into_iter()
        .map(|(r, _)| r)
        .collect()
}

fn analyze(
    name: &'static str,
    rows: Vec<f32>,
    hidden: usize,
    queries: Vec<Vec<f32>>,
) -> PoolReport {
    let rows_n = rows.len() / hidden;
    let mat = QuantizedMatrix::from_rows(&rows, hidden);

    let mut max_err = 0.0f32;
    let mut max_bound = 0.0f32;
    let mut recall_hits = vec![0usize; WIDENS.len()];
    let mut recall_total = 0usize;
    for query in &queries {
        let q = quantize_vector(query);
        let truth = exact_top_k(&rows, hidden, query, K);
        recall_total += truth.len();
        // approximate ranking over the whole pool
        let approx: Vec<f32> = (0..rows_n).map(|r| mat.approx_dot(r, &q)).collect();
        for r in 0..rows_n {
            let exact = dot(query, &rows[r * hidden..(r + 1) * hidden]);
            max_err = max_err.max((exact - approx[r]).abs());
            max_bound = max_bound.max(dot_error_bound(
                query,
                &rows[r * hidden..(r + 1) * hidden],
                q.scale,
                mat.scale(r),
            ));
        }
        for (wi, &widen) in WIDENS.iter().enumerate() {
            let kprime = (K * widen).min(rows_n);
            let cand: Vec<usize> = gbm_tensor::top_k(&approx, kprime)
                .into_iter()
                .map(|(r, _)| r)
                .collect();
            recall_hits[wi] += truth.iter().filter(|t| cand.contains(t)).count();
        }
    }
    let count_recall: Vec<(usize, f64)> = WIDENS
        .iter()
        .zip(&recall_hits)
        .map(|(&w, &h)| (w, h as f64 / recall_total as f64))
        .collect();

    // the shipped path: margin-widened candidates, counted per query
    // through one single-shard QuantizedShard (the per-shard behaviour)
    let mut qshard = gbm_serve::QuantizedShard::new();
    for row in rows.chunks_exact(hidden) {
        qshard.push_row(row);
    }
    let mut margin_cands = 0usize;
    let mut blocked_cands = 0usize;
    for query in &queries {
        let q = quantize_vector(query);
        let l1_q: f32 = query.iter().map(|v| v.abs()).sum();
        let margin = 2.0 * qshard.max_dot_error(&q, l1_q);
        margin_cands += qshard.scan_candidates(&q, K, margin).len();
        blocked_cands += qshard.scan_candidates_blocked(&q, l1_q, K).len();
    }
    let mean_margin_cands = margin_cands as f64 / queries.len() as f64;
    let mean_blocked_cands = blocked_cands as f64 / queries.len() as f64;

    let mk = |precision| {
        ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: 4,
                encode_batch: 8,
                precision,
                ..Default::default()
            },
        )
    };
    PoolReport {
        name,
        rows_n,
        hidden,
        max_err,
        max_bound,
        count_recall,
        mean_margin_cands,
        mean_blocked_cands,
        f32_scan_bytes: mk(ScanPrecision::F32).scan_bytes(),
        i8_scan_bytes: mk(ScanPrecision::Int8 { widen: 1 }).scan_bytes(),
    }
}

fn main() {
    let json = gbm_bench::probe_args().json;
    let quick = matches!(std::env::var("GBM_SCALE").as_deref(), Ok("quick"));

    // spread pool: the scan bench's synthetic serving-scale rows
    let (sn, sh, nq) = if quick { (1024, 64, 8) } else { (4096, 64, 16) };
    let spread_rows = gbm_bench::synth_unit_rows(sn, sh, 42);
    let spread_queries: Vec<Vec<f32>> = (0..nq)
        .map(|i| gbm_bench::synth_unit_rows(1, sh, 1000 + i as u64))
        .collect();

    // near-duplicate pool: encoder embeddings of template MiniC programs
    let n_graphs = if quick { 48 } else { 96 };
    let (tok, pool) = gbm_bench::minic_pool(n_graphs + 8);
    let mut rng = StdRng::seed_from_u64(9);
    let model = GraphBinMatch::new(GraphBinMatchConfig::tiny(tok.vocab_size()), &mut rng);
    let store = EmbeddingStore::build(&model, &pool);
    let hidden = store.embedding(0).dims()[1];
    let mut emb_rows = Vec::with_capacity(n_graphs * hidden);
    for i in 0..n_graphs {
        emb_rows.extend_from_slice(store.embedding(i).data());
    }
    let emb_queries: Vec<Vec<f32>> = (n_graphs..n_graphs + 8)
        .map(|i| store.embedding(i).data().to_vec())
        .collect();

    let reports = [
        analyze("spread", spread_rows, sh, spread_queries),
        analyze("near-dup", emb_rows, hidden, emb_queries),
    ];

    // IVF sweeps at the serve_query bench-gate scale: the uniform spread
    // pool (IVF-hostile: top-K neighbors are structureless, so high recall
    // needs most cells probed) and the clustered pool the acceptance gate
    // runs on (the distribution real embedding pools have)
    let (ivf_n, ivf_h) = if quick { (4096, 64) } else { (16384, 128) };
    let nprobes = [1usize, 2, 4, 8, 16, 32];
    let ivf_rows = gbm_bench::synth_unit_rows(ivf_n, ivf_h, 42);
    let ivf_queries: Vec<Vec<f32>> = (0..16)
        .map(|i| gbm_bench::synth_unit_rows(1, ivf_h, 1000 + i as u64))
        .collect();
    let clus_all = gbm_bench::synth_clustered_rows(ivf_n + 16, ivf_h, 64, 42);
    let (clus_rows, clus_tail) = clus_all.split_at(ivf_n * ivf_h);
    let clus_queries: Vec<Vec<f32>> = clus_tail.chunks_exact(ivf_h).map(<[f32]>::to_vec).collect();
    let ivf_reports = [
        analyze_ivf("spread", &ivf_rows, ivf_h, &ivf_queries, &nprobes),
        analyze_ivf("clustered", clus_rows, ivf_h, &clus_queries, &nprobes),
    ];

    if json {
        println!("{{");
        println!("  \"k\": {K},");
        println!("  \"pools\": [");
        for (i, r) in reports.iter().enumerate() {
            let recalls: Vec<String> = r
                .count_recall
                .iter()
                .map(|(w, rec)| format!("{{\"widen\": {w}, \"recall\": {rec:.4}}}"))
                .collect();
            let comma = if i + 1 < reports.len() { "," } else { "" };
            println!(
                "    {{\"pool\": \"{}\", \"rows\": {}, \"hidden\": {}, \
                 \"max_abs_dot_error\": {:.6}, \"analytic_bound\": {:.6}, \
                 \"count_based_recall\": [{}], \"mean_margin_candidates\": {:.1}, \
                 \"mean_blocked_candidates\": {:.1}, \
                 \"f32_scan_bytes\": {}, \"i8_scan_bytes\": {}}}{comma}",
                r.name,
                r.rows_n,
                r.hidden,
                r.max_err,
                r.max_bound,
                recalls.join(", "),
                r.mean_margin_cands,
                r.mean_blocked_cands,
                r.f32_scan_bytes,
                r.i8_scan_bytes,
            );
        }
        println!("  ],");
        println!("  \"ivf\": [");
        for (i, ivf) in ivf_reports.iter().enumerate() {
            let sweep: Vec<String> = ivf
                .recall_by_nprobe
                .iter()
                .map(|(np, rec)| format!("{{\"nprobe\": {np}, \"recall\": {rec:.4}}}"))
                .collect();
            let comma = if i + 1 < ivf_reports.len() { "," } else { "" };
            println!(
                "    {{\"pool\": \"{}\", \"rows\": {}, \"hidden\": {}, \"num_shards\": {}, \
                 \"recall_by_nprobe\": [{}], \"i8_scan_bytes\": {}, \"ivf_scan_bytes\": {}}}{comma}",
                ivf.name,
                ivf.rows_n,
                ivf.hidden,
                ivf.num_shards,
                sweep.join(", "),
                ivf.i8_scan_bytes,
                ivf.ivf_scan_bytes,
            );
        }
        println!("  ]");
        println!("}}");
        return;
    }

    println!("=== int8 quantized scan: error, candidate recall, footprint (K = {K}) ===");
    for r in &reports {
        println!(
            "\npool `{}` ({} rows × {} hidden):",
            r.name, r.rows_n, r.hidden
        );
        println!(
            "  max |approx − exact| dot error  {:>10.6}   (analytic bound {:.6}; bound must dominate: {})",
            r.max_err,
            r.max_bound,
            if r.max_err <= r.max_bound { "yes" } else { "NO — bound violated!" }
        );
        println!("  recall@{K} of the count-based top-K·widen pre-re-rank candidate set:");
        for (w, rec) in &r.count_recall {
            println!("    widen = {w}: {rec:.3}");
        }
        println!(
            "  margin-cut candidates actually re-ranked: {:.1} rows/query of {} ({:.1}%) uniform \
             → {:.1} ({:.1}%) per-block",
            r.mean_margin_cands,
            r.rows_n,
            100.0 * r.mean_margin_cands / r.rows_n as f64,
            r.mean_blocked_cands,
            100.0 * r.mean_blocked_cands / r.rows_n as f64,
        );
        println!(
            "  scan footprint: {} B f32 → {} B int8 ({:.2}x smaller)",
            r.f32_scan_bytes,
            r.i8_scan_bytes,
            r.f32_scan_bytes as f64 / r.i8_scan_bytes as f64
        );
    }
    println!(
        "\n(count-based widening alone cannot reach recall 1 on the near-dup pool — \
         that is why\n gbm-serve's int8 scan admits the analytic error-margin zone \
         around the K' cut, making\n final rankings exact unconditionally; on spread \
         pools the zone is a handful of rows)"
    );

    for ivf in &ivf_reports {
        println!(
            "\n=== IVF approximate scan, `{}` pool: recall@{K} vs nprobe \
             ({} rows × {} hidden, {} shards, widen = 4) ===",
            ivf.name, ivf.rows_n, ivf.hidden, ivf.num_shards
        );
        for (np, rec) in &ivf.recall_by_nprobe {
            println!("  nprobe = {np:>3}: recall@{K} {rec:.3}");
        }
        println!(
            "  scan footprint: {} B int8 → {} B ivf (+{:.1}% for centroids + cell lists)",
            ivf.i8_scan_bytes,
            ivf.ivf_scan_bytes,
            100.0 * (ivf.ivf_scan_bytes as f64 / ivf.i8_scan_bytes as f64 - 1.0),
        );
    }
    println!(
        "\n(the spread pool is IVF's hostile regime — uniform random vectors have no cluster\n \
         structure, so high recall needs most cells probed and the sub-linear win vanishes;\n \
         the clustered pool carries the serve_query `scan_ivf` acceptance gate)"
    );
}
