//! Diagnostic: embedding spread and per-layer gradient norms on real data.

use gbm_binary::{Compiler, OptLevel};
use gbm_datasets::{poj104, DatasetConfig};
use gbm_nn::{encode_graph, GraphBinMatch, GraphBinMatchConfig};
use gbm_progml::{build_graph, NodeTextMode};
use gbm_tensor::{Graph, Tensor};
use gbm_tokenizer::{Tokenizer, TokenizerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    let ds = poj104(DatasetConfig {
        num_tasks: 3,
        solutions_per_task: 4,
        seed: 42,
    });
    let graphs: Vec<_> = ds
        .solutions
        .iter()
        .map(|s| build_graph(&s.module))
        .collect();
    let dec: Vec<_> = ds
        .solutions
        .iter()
        .map(|s| {
            build_graph(&gbm_datasets::decompiled_module(
                s,
                Compiler::Clang,
                OptLevel::O0,
            ))
        })
        .collect();
    let refs: Vec<&gbm_progml::ProgramGraph> = graphs.iter().chain(dec.iter()).collect();
    let tok = Tokenizer::train_on_graphs(&refs, NodeTextMode::FullText, TokenizerConfig::default());
    println!(
        "tokenizer: vocab {} seq_len {}",
        tok.vocab_size(),
        tok.seq_len()
    );
    let enc: Vec<_> = graphs
        .iter()
        .map(|g| encode_graph(g, &tok, NodeTextMode::FullText))
        .collect();
    let enc_dec: Vec<_> = dec
        .iter()
        .map(|g| encode_graph(g, &tok, NodeTextMode::FullText))
        .collect();

    let mut rng = StdRng::seed_from_u64(7);
    let mut cfg = GraphBinMatchConfig::small(tok.vocab_size());
    cfg.hidden_dim = 32;
    let model = GraphBinMatch::new(cfg, &mut rng);

    // pooled embeddings of source graphs
    let g = Graph::new();
    let mut embs = Vec::new();
    for e in enc.iter().take(6) {
        let v = model.embed_graph(&g, e, false, &mut rng);
        embs.push(g.value(v));
    }
    println!("\npooled embeddings (first 4 dims):");
    for (i, e) in embs.iter().enumerate() {
        println!(
            "  g{} task {} nodes {:>4}: [{:.3} {:.3} {:.3} {:.3}] norm {:.3}",
            i,
            ds.solutions[i].task,
            enc[i].n_nodes,
            e.data()[0],
            e.data()[1],
            e.data()[2],
            e.data()[3],
            e.norm()
        );
    }
    // pairwise distances
    println!("\npairwise L2 distances:");
    for i in 0..embs.len() {
        let row: Vec<String> = (0..embs.len())
            .map(|j| format!("{:.3}", embs[i].zip(&embs[j], |a, b| a - b).norm()))
            .collect();
        println!("  {}", row.join(" "));
    }

    // one batch forward/backward, grad norms by prefix
    let tape = Graph::new();
    let mut total = None;
    for k in 0..4 {
        let (a, b, label) = if k % 2 == 0 {
            (k, k, 1.0) // source vs own binary
        } else {
            (k, (k + 5) % enc_dec.len(), 0.0)
        };
        let logit = model.forward_pair(&tape, &enc[a], &enc_dec[b], true, &mut rng);
        let loss = tape.bce_with_logits(logit, &Tensor::from_vec(vec![label], &[1, 1]));
        total = Some(match total {
            None => loss,
            Some(acc) => tape.add(acc, loss),
        });
    }
    tape.backward(total.unwrap());
    let mut groups: HashMap<String, f64> = HashMap::new();
    for p in model.params() {
        let prefix = p.name().split('.').next().unwrap_or("?").to_string();
        *groups.entry(prefix).or_insert(0.0) += (p.grad().norm() as f64).powi(2);
    }
    println!("\ngrad norms by group:");
    let mut keys: Vec<_> = groups.keys().cloned().collect();
    keys.sort();
    for k in keys {
        println!("  {:<12} {:.6}", k, groups[&k].sqrt());
    }

    // pair-level signal: source-vs-decompiled distances by label (untrained)
    let g2 = Graph::new();
    let mut src_embs = Vec::new();
    let mut dec_embs = Vec::new();
    for e in &enc {
        src_embs.push(g2.value(model.embed_graph(&g2, e, false, &mut rng)));
    }
    for e in &enc_dec {
        dec_embs.push(g2.value(model.embed_graph(&g2, e, false, &mut rng)));
    }
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    #[allow(clippy::needless_range_loop)] // (i, j) also index ds.solutions
    for i in 0..enc.len() {
        for j in 0..enc_dec.len() {
            let d = src_embs[i].zip(&dec_embs[j], |a, b| a - b).norm();
            if ds.solutions[i].task == ds.solutions[j].task {
                pos.push(d);
            } else {
                neg.push(d);
            }
        }
    }
    let mean = |v: &Vec<f32>| v.iter().sum::<f32>() / v.len() as f32;
    println!(
        "\nsource-vs-decompiled distance: positives {:.3} ({} pairs) vs negatives {:.3} ({} pairs)",
        mean(&pos),
        pos.len(),
        mean(&neg),
        neg.len()
    );
    println!(
        "decompiled graph sizes: {:?}",
        enc_dec.iter().map(|e| e.n_nodes).collect::<Vec<_>>()
    );
    println!(
        "source graph sizes:     {:?}",
        enc.iter().map(|e| e.n_nodes).collect::<Vec<_>>()
    );
}
// (appended) — pair-level signal check lives in main2; call from main via env
