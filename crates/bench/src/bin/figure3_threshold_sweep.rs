//! Regenerates Figure 3: precision/recall/F1/accuracy vs decision threshold.

fn main() {
    let cfg = gbm_bench::scale_from_env();
    gbm_bench::banner("Figure 3 (threshold sweep)", &cfg);
    let (_, result) = gbm_eval::experiments::table3(&cfg);
    let points = gbm_eval::experiments::figure3(&result);
    println!(
        "\n{:>9} {:>9} {:>9} {:>9} {:>9}",
        "Threshold", "Precision", "Recall", "F1", "Accuracy"
    );
    println!("{}", "-".repeat(50));
    for p in &points {
        println!(
            "{:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            p.threshold, p.prf.precision, p.prf.recall, p.prf.f1, p.accuracy
        );
    }
    if let Some(best) = gbm_eval::experiments::best_f1_point(&points) {
        println!("\nbest F1 {:.2} at threshold {:.2} (paper: small thresholds edge out 0.5, which stays the default)", best.prf.f1, best.threshold);
    }
}
