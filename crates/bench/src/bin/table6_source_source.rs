//! Regenerates Table VI: cross-language source-source matching.

fn main() {
    let cfg = gbm_bench::scale_from_env();
    gbm_bench::banner("Table VI (cross-language source matching)", &cfg);
    for (label, rows) in gbm_eval::experiments::table6(&cfg) {
        gbm_bench::print_method_table(&label, &rows);
    }
}
