//! Regenerates Table VIII: `text` vs `full_text` node-attribute ablation.

fn main() {
    let cfg = gbm_bench::scale_from_env();
    gbm_bench::banner("Table VIII (text vs full_text embedding)", &cfg);
    let rows = gbm_eval::experiments::table8(&cfg);
    println!(
        "\n{:<10} {:<15} {:>9} {:>9} {:>9}",
        "Mode", "Task", "Precision", "Recall", "F1"
    );
    println!("{}", "-".repeat(56));
    for (mode, task, prf) in rows {
        println!(
            "{:<10} {:<15} {:>9.2} {:>9.2} {:>9.2}",
            mode, task, prf.precision, prf.recall, prf.f1
        );
    }
}
