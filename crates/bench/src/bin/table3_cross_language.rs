//! Regenerates Table III: cross-language binary↔source matching vs baselines
//! (threshold 0.5 for calibrated models; validation-tuned for baselines).

fn main() {
    let cfg = gbm_bench::scale_from_env();
    gbm_bench::banner("Table III (cross-language binary-source matching)", &cfg);
    let (directions, full) = gbm_eval::experiments::table3(&cfg);
    for (label, rows) in directions {
        gbm_bench::print_method_table(&label, &rows);
    }
    gbm_bench::print_retrieval(
        "Ranked retrieval on the same test split (C/C++ binaries → Java sources)",
        &full.retrieval,
    );
}
