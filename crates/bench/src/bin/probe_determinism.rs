//! Cross-process determinism probe: prints a checksum per pipeline stage so
//! two invocations can be diffed to localize any run-to-run divergence
//! (HashMap iteration order leaking into results, unseeded randomness, …).
//!
//! ```text
//! cargo run --release -p gbm-bench --bin probe_determinism > a.txt
//! cargo run --release -p gbm-bench --bin probe_determinism > b.txt
//! diff a.txt b.txt   # must be empty
//! ```

use gbm_binary::{Compiler, OptLevel};
use gbm_datasets::{clcdsa, decompile_all, DatasetConfig};
use gbm_nn::{
    encode_graph, predict, train, EmbeddingStore, GraphBinMatch, GraphBinMatchConfig, PairExample,
    PairSet, TrainConfig,
};
use gbm_progml::{build_graph, NodeTextMode};
use gbm_tokenizer::{Tokenizer, TokenizerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn checksum_bytes(bytes: impl IntoIterator<Item = u8>) -> u64 {
    // FNV-1a
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn checksum_f32s<'a>(xs: impl IntoIterator<Item = &'a f32>) -> u64 {
    checksum_bytes(xs.into_iter().flat_map(|x| x.to_le_bytes()))
}

fn main() {
    let ds = clcdsa(DatasetConfig {
        num_tasks: 4,
        solutions_per_task: 3,
        seed: 42,
    });
    let src_cat: String = ds.solutions.iter().map(|s| s.source.as_str()).collect();
    println!("sources          {:016x}", checksum_bytes(src_cat.bytes()));

    let ir_cat: String = ds.solutions.iter().map(|s| s.module.to_text()).collect();
    println!("source_ir        {:016x}", checksum_bytes(ir_cat.bytes()));

    // fine-grained bisect of the binary pipeline
    let m0 = ds.solutions[0].module.clone();
    for level in [
        OptLevel::O0,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::Oz,
    ] {
        let mut m = m0.clone();
        gbm_binary::optimize(&mut m, level);
        println!(
            "opt_{level:<12} {:016x}",
            checksum_bytes(m.to_text().bytes())
        );
        let obj = gbm_binary::compile_module(&m, Compiler::Clang).unwrap();
        println!("obj_{level:<12} {:016x}", checksum_bytes(obj.encode()));
        let lifted = gbm_binary::decompile::decompile(&obj);
        println!(
            "lift_{level:<11} {:016x}",
            checksum_bytes(lifted.to_text().bytes())
        );
    }

    let idxs: Vec<usize> = (0..ds.solutions.len()).collect();
    let bins = decompile_all(&ds, &idxs, Compiler::Clang, OptLevel::Oz);
    let bin_cat: String = idxs.iter().map(|i| bins[i].to_text()).collect();
    println!("decompiled_ir    {:016x}", checksum_bytes(bin_cat.bytes()));

    let graphs: Vec<_> = idxs
        .iter()
        .map(|i| build_graph(&ds.solutions[*i].module))
        .collect();
    let graph_cat: String = graphs
        .iter()
        .flat_map(|g| g.nodes.iter().map(|n| n.full_text.as_str()))
        .collect();
    println!(
        "graph_nodes      {:016x}",
        checksum_bytes(graph_cat.bytes())
    );

    let refs: Vec<&gbm_progml::ProgramGraph> = graphs.iter().collect();
    let tok = Tokenizer::train_on_graphs(&refs, NodeTextMode::FullText, TokenizerConfig::default());
    let enc: Vec<_> = graphs
        .iter()
        .map(|g| encode_graph(g, &tok, NodeTextMode::FullText))
        .collect();
    let tok_cat: Vec<u8> = enc
        .iter()
        .flat_map(|e| e.tokens.iter().flat_map(|t| t.to_le_bytes()))
        .collect();
    println!("token_ids        {:016x}", checksum_bytes(tok_cat));

    let mut rng = StdRng::seed_from_u64(7);
    let model = GraphBinMatch::new(GraphBinMatchConfig::tiny(tok.vocab_size()), &mut rng);
    println!(
        "init_weights     {:016x}",
        checksum_f32s(&model.store.snapshot())
    );

    let mut pairs = Vec::new();
    for a in 0..enc.len() {
        for b in 0..enc.len() {
            if a != b {
                pairs.push(PairExample {
                    a,
                    b,
                    label: (ds.solutions[a].task == ds.solutions[b].task) as u8 as f32,
                });
            }
        }
    }
    let data = PairSet { graphs: enc, pairs };

    let store = EmbeddingStore::build(&model, &data.graphs);
    let emb_cat: Vec<f32> = (0..data.graphs.len())
        .flat_map(|i| store.embedding(i).data().to_vec())
        .collect();
    println!("embeddings       {:016x}", checksum_f32s(&emb_cat));

    let pre = predict(&model, &data);
    println!("predict_untrained{:016x}", checksum_f32s(&pre));

    let cfg = TrainConfig {
        epochs: 2,
        ..Default::default()
    };
    train(&model, &data, &cfg, |_, _| {});
    println!(
        "trained_weights  {:016x}",
        checksum_f32s(&model.store.snapshot())
    );

    let post = predict(&model, &data);
    println!("predict_trained  {:016x}", checksum_f32s(&post));
}
