//! Regenerates Table V: optimization-level × compiler sweep.

fn main() {
    let cfg = gbm_bench::scale_from_env();
    gbm_bench::banner("Table V (optimization levels / compilers)", &cfg);
    let rows = gbm_eval::experiments::table5(&cfg);
    println!(
        "\n{:<9} {:<6} {:>9} {:>9} {:>9}",
        "Compiler", "Level", "Precision", "Recall", "F1"
    );
    println!("{}", "-".repeat(46));
    for (compiler, level, prf) in rows {
        println!(
            "{:<9} {:<6} {:>9.2} {:>9.2} {:>9.2}",
            compiler.name(),
            level.name(),
            prf.precision,
            prf.recall,
            prf.f1
        );
    }
}
