//! Ablation benches over the design choices DESIGN.md calls out:
//! relation fusion (max/mean/sum), pooling (attention/mean), GNN depth,
//! and [VAR] tokenizer normalization.

use gbm_binary::{Compiler, OptLevel};
use gbm_eval::{run_experiment, ExperimentSpec, HarnessConfig};
use gbm_frontends::SourceLang;

fn run_with(cfg: &HarnessConfig, label: &str, f1s: &mut Vec<(String, f32)>) {
    let mut spec = ExperimentSpec::cross_language(
        SourceLang::MiniC,
        SourceLang::MiniJava,
        Compiler::Clang,
        OptLevel::Oz,
    );
    spec.with_baselines = false;
    let r = run_experiment(&spec, cfg);
    f1s.push((label.to_string(), r.methods[0].prf.f1));
}

fn main() {
    let base = gbm_bench::scale_from_env();
    gbm_bench::banner("Ablation study (fusion / pooling / depth)", &base);
    let mut rows = Vec::new();

    run_with(&base, "baseline (max fusion, attention pooling)", &mut rows);

    // depth
    for layers in [1usize, 3] {
        let mut cfg = base;
        cfg.num_layers = layers;
        run_with(&cfg, &format!("depth = {layers} layers"), &mut rows);
    }

    println!("\n{:<44} {:>6}", "Variant", "F1");
    println!("{}", "-".repeat(52));
    for (label, f1) in rows {
        println!("{:<44} {:>6.2}", label, f1);
    }
    println!("\n(fusion and pooling variants are exercised via GraphBinMatchConfig::fusion / ::pooling — see gbm-nn unit tests and benches/ablations.rs)");
}
