//! Objective ablation: the cross-language experiment trained with BCE,
//! triplet, and InfoNCE, comparing pair classification (P/R/F1) and ranked
//! retrieval (MRR, recall@k) per objective.
//!
//! ```text
//! GBM_SCALE=quick cargo run --release -p gbm-bench --bin ablation_objectives
//! ```

use gbm_bench::{banner, scale_from_env};
use gbm_eval::experiments::objective_ablation;
use gbm_nn::TrainObjective;

fn main() {
    let cfg = scale_from_env();
    banner(
        "objective ablation (cross-language C binary vs Java source)",
        &cfg,
    );

    let objectives = [
        TrainObjective::PairwiseBce,
        TrainObjective::triplet(),
        TrainObjective::info_nce(),
    ];
    let results = objective_ablation(&cfg, &objectives);

    println!(
        "\n{:<16} {:>6} {:>6} {:>6} {:>8} {:>9} {:>9} {:>10}",
        "Objective", "P", "R", "F1", "MRR", "recall@1", "recall@5", "recall@10"
    );
    println!("{}", "-".repeat(76));
    for r in &results {
        let gbm = &r.methods[0];
        let recall = |k: usize| {
            r.retrieval
                .recall_at
                .iter()
                .find(|&&(kk, _)| kk == k)
                .map(|&(_, v)| v)
                .unwrap_or(f32::NAN)
        };
        println!(
            "{:<16} {:>6.2} {:>6.2} {:>6.2} {:>8.3} {:>9.3} {:>9.3} {:>10.3}",
            r.objective.to_string(),
            gbm.prf.precision,
            gbm.prf.recall,
            gbm.prf.f1,
            r.retrieval.mrr,
            recall(1),
            recall(5),
            recall(10),
        );
    }
    println!(
        "\n({} retrieval queries over {} candidates; BCE ranks by matching head, \
         triplet/infonce rank by embedding cosine)",
        results[0].retrieval.num_queries, results[0].retrieval.num_candidates
    );
}
