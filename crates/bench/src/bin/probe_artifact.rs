//! probe_artifact: the multi-process serving drill over real files and
//! real processes — the v2 artifact's two promises, measured and asserted.
//!
//! **1. Cold start is a map, not a decode.** A MiniC pool is encoded once
//! and published as a v2 artifact; the probe then times
//! `ReadOnlyIndex::open` (header + TOC checksum, structural validation,
//! zero payload decode) against re-encoding the same pool through the GNN
//! encoder — the only way to rebuild the index without persisted state —
//! and asserts the ≥10× speedup the format exists for (same gate shape as
//! `probe_recover`'s snapshot+WAL cold start).
//!
//! **2. Readers survive a writer kill mid-publish.** The probe re-execs
//! itself as one *writer* process (publishes generations of a growing
//! synthetic index in a tight loop: tmp → fsync → rename, then the
//! `CURRENT` pointer) and several *reader* processes (each maps `CURRENT`,
//! polls for newer generations, serves a fixed query). The parent
//! SIGKILLs the writer mid-loop — so with high probability mid-publish —
//! then stops the readers. Each reader prints the generation it landed on
//! and its ranking as exact f32 bits; the parent rebuilds the same
//! generation in-process and asserts the rankings are **bit-identical**,
//! proving no reader ever observed a torn or half-published artifact.
//!
//! EXPERIMENTS.md records a run of this probe.
//!
//! ```text
//! cargo run --release -p gbm-bench --bin probe_artifact [-- --json]
//! ```

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use gbm_nn::{GraphBinMatch, GraphBinMatchConfig};
use gbm_obs::names;
use gbm_serve::{
    publish_index_artifact, ArtifactConfig, ArtifactReader, IndexConfig, MetricsRegistry,
    ReadOnlyIndex, ScanPrecision, ShardedIndex,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const POOL: usize = 48;
const SHARDS: usize = 4;
const HIDDEN: usize = 8;
const READERS: usize = 3;
/// Generations the writer publishes before idling (the parent kills it
/// long before it gets there).
const MAX_GENS: u64 = 200;
/// The parent lets the writer reach at least this generation before the
/// kill, so readers have real swaps to survive.
const KILL_AFTER_GEN: u64 = 3;
const TOP_K: usize = 10;

fn drill_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/probe_artifact-state")
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn synth_matrix(n: usize, hidden: usize, mut state: u64) -> Vec<f32> {
    let mut rows = Vec::with_capacity(n * hidden);
    for _ in 0..n * hidden {
        state = splitmix64(state);
        rows.push((state % 2000) as f32 / 1000.0 - 1.0);
    }
    rows
}

/// Generation `g` of the drill index: a pure function of `g`, so the
/// writer process and the parent's verification rebuild the exact same
/// index without any channel between them. Each generation grows the pool
/// (new rows under fresh ids) — the realistic "writer keeps ingesting"
/// shape.
fn generation_index(g: u64) -> ShardedIndex {
    let n = 64 + (g as usize) * 16;
    let rows = synth_matrix(n, HIDDEN, 1000 + g);
    ShardedIndex::from_rows(
        &rows,
        HIDDEN,
        IndexConfig {
            num_shards: SHARDS,
            precision: ScanPrecision::Int8 { widen: 2 },
            ..Default::default()
        },
    )
}

/// The fixed query every process scores — deterministic, unrelated to any
/// generation's rows.
fn drill_query() -> Vec<f32> {
    synth_matrix(1, HIDDEN, 424_242)
}

/// `id:bits` pairs — exact f32 representation, no formatting loss.
fn ranking_line(ranked: &[(u64, f32)]) -> String {
    ranked
        .iter()
        .map(|&(id, s)| format!("{id}:{:08x}", s.to_bits()))
        .collect::<Vec<_>>()
        .join(",")
}

/// Writer role: publish generations as fast as the disk allows until
/// killed. Every publish is atomic (tmp → fsync → rename for the artifact,
/// then for `CURRENT`), which is exactly what the parent's kill tests.
fn run_writer(dir: &Path) {
    for g in 1..=MAX_GENS {
        let index = generation_index(g);
        publish_index_artifact(&index, dir, g).expect("publish");
    }
}

/// Reader role: map `CURRENT`, keep polling and serving until the stop
/// file appears, then report the final generation, ranking, and metrics.
fn run_reader(dir: &Path, stop: &Path) {
    let registry = MetricsRegistry::new();
    let cfg = ArtifactConfig::new(dir);
    // the writer may not have published generation 1 yet: retry like a
    // real reader waiting for its first artifact
    let reader = loop {
        match ArtifactReader::with_metrics(cfg.clone(), Some(&registry)) {
            Ok(r) => break r,
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    };
    let query = drill_query();
    let mut ranked = reader.current().query(&query, TOP_K);
    while !stop.exists() {
        // poll errors (e.g. CURRENT mid-swing) leave the reader serving
        // its mapped generation — that is the contract under test
        let _ = reader.poll();
        ranked = reader.current().query(&query, TOP_K);
        std::thread::sleep(Duration::from_millis(1));
    }
    let snap = registry.snapshot();
    println!(
        "gen={} maps={} remaps={} open_errors={} ranking={}",
        reader.generation(),
        snap.counter(names::ARTIFACT_MAPS).unwrap_or(0),
        snap.counter(names::ARTIFACT_REMAPS).unwrap_or(0),
        snap.counter(names::ARTIFACT_OPEN_ERRORS).unwrap_or(0),
        ranking_line(&ranked),
    );
}

/// One reader's parsed report.
struct ReaderReport {
    gen: u64,
    maps: u64,
    remaps: u64,
    ranking: String,
}

fn parse_report(line: &str) -> ReaderReport {
    let field = |name: &str| {
        line.split_whitespace()
            .find_map(|t| t.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("reader line missing {name}=: {line}"))
            .to_string()
    };
    ReaderReport {
        gen: field("gen").parse().expect("gen"),
        maps: field("maps").parse().expect("maps"),
        remaps: field("remaps").parse().expect("remaps"),
        ranking: field("ranking"),
    }
}

fn main() {
    let args = gbm_bench::probe_args();
    let dir = drill_dir();
    match args.flag_value("role") {
        Some("writer") => return run_writer(&dir),
        Some("reader") => return run_reader(&dir, &dir.join("STOP")),
        Some(other) => panic!("unknown --role {other}"),
        None => {}
    }

    // ---- part 1: cold start — map an artifact vs re-encode the pool ----
    let (tok, pool) = gbm_bench::minic_pool(POOL);
    let mut rng = StdRng::seed_from_u64(7);
    let model = GraphBinMatch::new(GraphBinMatchConfig::tiny(tok.vocab_size()), &mut rng);
    let _ = model.encoder().embed(&pool[0]); // warm scratch buffers

    let t0 = Instant::now();
    let index = ShardedIndex::build(
        &model,
        &pool,
        IndexConfig {
            num_shards: SHARDS,
            encode_batch: 8,
            precision: ScanPrecision::Int8 { widen: 2 },
            ..Default::default()
        },
    );
    let reencode = t0.elapsed();
    let hidden = index.hidden();

    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create drill dir");
    let path = publish_index_artifact(&index, &dir, 1).expect("publish minic artifact");
    let t0 = Instant::now();
    let ro = ReadOnlyIndex::open(&path, true).expect("cold open");
    let cold_open = t0.elapsed();
    let map_kind = format!("{:?}", ro.map_kind());

    // the mapped index must answer exactly like the one that published it
    let query = model.encoder().embed(&pool[0]);
    for k in [1usize, 5, POOL] {
        assert_eq!(
            ro.query(query.data(), k),
            index.query(query.data(), k),
            "mapped minic rankings must be bit-identical (k={k})"
        );
    }
    let speedup = reencode.as_secs_f64() / cold_open.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 10.0,
        "cold start from a mapped artifact must be ≥10× faster than re-encoding \
         (got {speedup:.1}×: open {cold_open:?} vs re-encode {reencode:?})"
    );
    drop(ro);

    // ---- part 2: writer-kill drill across real processes ----
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("reset drill dir");
    let exe = std::env::current_exe().expect("current exe");
    let mut readers: Vec<std::process::Child> = (0..READERS)
        .map(|_| {
            Command::new(&exe)
                .args(["--role", "reader"])
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn reader")
        })
        .collect();
    let mut writer = Command::new(&exe)
        .args(["--role", "writer"])
        .spawn()
        .expect("spawn writer");

    // let the writer publish a few generations, then SIGKILL it mid-loop
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(Some((seq, _))) = gbm_artifact::read_current(&dir) {
            if seq >= KILL_AFTER_GEN {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "writer never reached generation {KILL_AFTER_GEN}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    writer.kill().expect("kill writer");
    let _ = writer.wait();
    let killed_at = gbm_artifact::read_current(&dir)
        .expect("CURRENT readable after kill")
        .expect("at least one published generation")
        .0;

    // give the readers a beat to observe the final generation, then stop
    std::thread::sleep(Duration::from_millis(50));
    std::fs::write(dir.join("STOP"), b"stop").expect("write stop file");
    let reports: Vec<ReaderReport> = readers
        .iter_mut()
        .map(|child| {
            let out = child.stdout.take().expect("reader stdout");
            let line = BufReader::new(out)
                .lines()
                .next()
                .expect("reader printed a report")
                .expect("read reader line");
            let status = child.wait().expect("reader exit");
            assert!(status.success(), "reader exited cleanly: {status:?}");
            parse_report(&line)
        })
        .collect();

    // every reader landed on a complete published generation and its
    // ranking is bit-identical to the in-process index of that generation
    let q = drill_query();
    for (i, r) in reports.iter().enumerate() {
        assert!(
            r.gen >= 1 && r.gen <= killed_at,
            "reader {i} on generation {} outside 1..={killed_at}",
            r.gen
        );
        let expect = ranking_line(&generation_index(r.gen).query(&q, TOP_K));
        assert_eq!(
            r.ranking, expect,
            "reader {i} (generation {}): ranking must be bit-identical",
            r.gen
        );
        assert!(r.maps >= 1, "reader {i} mapped at least once");
        assert_eq!(
            r.maps,
            r.remaps + 1,
            "reader {i}: every map after the first is a generation swap"
        );
    }
    let final_gens = reports.iter().filter(|r| r.gen == killed_at).count();
    let total_remaps: u64 = reports.iter().map(|r| r.remaps).sum();

    if args.json {
        println!("{{");
        println!(
            "  \"meta\": {{\"pool\": {POOL}, \"shards\": {SHARDS}, \"hidden\": {hidden}, \
             \"readers\": {READERS}, \"map_kind\": \"{map_kind}\"}},"
        );
        println!(
            "  \"cold_start\": {{\"open_us\": {}, \"reencode_us\": {}, \"speedup\": {:.1}}},",
            cold_open.as_micros(),
            reencode.as_micros(),
            speedup
        );
        println!(
            "  \"drill\": {{\"killed_at_gen\": {killed_at}, \"readers_on_final_gen\": \
             {final_gens}, \"total_remaps\": {total_remaps}}}"
        );
        println!("}}");
        return;
    }
    println!("=== v2 artifact serving drill (real files, real processes) ===");
    println!(
        "pool={POOL} graphs, hidden={hidden}, shards={SHARDS}, int8 index; \
         state under target/probe_artifact-state/"
    );
    println!(
        "cold start  : map+validate {:.2?} vs re-encode {:.2?}  ({speedup:.0}x faster, {map_kind})",
        cold_open, reencode
    );
    println!("rankings    : mapped index bit-identical to the publishing index");
    println!(
        "writer kill : SIGKILL mid-publish at generation {killed_at}; every reader \
         still on a complete generation"
    );
    for (i, r) in reports.iter().enumerate() {
        println!(
            "reader {i}    : generation {} ({} maps, {} swaps), ranking verified bit-exact",
            r.gen, r.maps, r.remaps
        );
    }
    println!(
        "readers     : {final_gens}/{READERS} caught the final generation before the stop; \
         {total_remaps} live swaps served without a dropped query"
    );
}
