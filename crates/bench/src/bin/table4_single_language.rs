//! Regenerates Table IV: single-language binary-source matching (POJ-syn).

fn main() {
    let cfg = gbm_bench::scale_from_env();
    gbm_bench::banner("Table IV (single-language binary matching)", &cfg);
    let rows = gbm_eval::experiments::table4(&cfg);
    gbm_bench::print_method_table("POJ-104-syn, clang O0", &rows);
}
