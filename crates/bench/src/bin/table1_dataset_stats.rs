//! Regenerates Table I: dataset statistics per language.

fn main() {
    let cfg = gbm_bench::scale_from_env();
    gbm_bench::banner("Table I (dataset statistics)", &cfg);
    for (name, stats) in gbm_eval::experiments::table1(&cfg) {
        println!("\n## {name}");
        println!(
            "{:<10} {:>9} {:>10} {:>13} {:>19}",
            "Language", "# Sources", "# LLVM-IR", "# Binary Files", "# Decompiled LLVM-IR"
        );
        for s in stats {
            println!(
                "{:<10} {:>9} {:>10} {:>13} {:>19}",
                s.lang.name(),
                s.sources,
                s.ir,
                s.binaries,
                s.decompiled
            );
        }
    }
}
