//! Ranked binary→source retrieval — the paper's headline use case, run as a
//! first-class workload: every b-side test graph queries the a-side test
//! candidates through cached embeddings, reporting MRR and recall@{1,5,10}
//! next to the pairwise P/R/F1 the other tables print.
//!
//! ```text
//! cargo run --release -p gbm-bench --bin table_retrieval
//! ```

use gbm_binary::{Compiler, OptLevel};
use gbm_eval::{run_experiment, ExperimentSpec};
use gbm_frontends::SourceLang;

fn main() {
    let cfg = gbm_bench::scale_from_env();
    gbm_bench::banner("Retrieval (ranked binary→source search)", &cfg);

    let directions = [
        (
            "C/C++ binaries → Java sources",
            ExperimentSpec::cross_language(
                SourceLang::MiniC,
                SourceLang::MiniJava,
                Compiler::Clang,
                OptLevel::Oz,
            ),
        ),
        (
            "Java binaries → C/C++ sources",
            ExperimentSpec::cross_language(
                SourceLang::MiniJava,
                SourceLang::MiniC,
                Compiler::Clang,
                OptLevel::Oz,
            ),
        ),
    ];
    for (label, mut spec) in directions {
        spec.with_baselines = false; // retrieval is GraphBinMatch-only
        let result = run_experiment(&spec, &cfg);
        gbm_bench::print_retrieval(label, &result.retrieval);
        let gbm = &result.methods[0];
        println!(
            "(pairwise reference: P={:.2} R={:.2} F1={:.2})",
            gbm.prf.precision, gbm.prf.recall, gbm.prf.f1
        );
    }

    // single-language retrieval: POJ-syn binaries → sources
    let mut spec = ExperimentSpec::single_language(Compiler::Clang, OptLevel::O0);
    spec.with_baselines = false;
    let result = run_experiment(&spec, &cfg);
    gbm_bench::print_retrieval(
        "C/C++ binaries → C/C++ sources (POJ-syn)",
        &result.retrieval,
    );
}
