//! Regenerates Table VII: node-count statistics per confusion cell of the
//! cross-language test run.

fn main() {
    let cfg = gbm_bench::scale_from_env();
    gbm_bench::banner("Table VII (node statistics by confusion cell)", &cfg);
    let (_, result) = gbm_eval::experiments::table3(&cfg);
    let rows = gbm_eval::experiments::table7(&result, 0.5);
    println!(
        "\n{:<16} {:>8} {:>8} {:>10} {:>7}",
        "Type", "Mean", "Median", "Mean |a-b|", "Count"
    );
    println!("{}", "-".repeat(54));
    for r in rows {
        println!(
            "{:<16} {:>8.0} {:>8.0} {:>10.0} {:>7}",
            r.cell, r.mean_nodes, r.median_nodes, r.mean_gap, r.count
        );
    }
}
