//! probe_serve: coalescer behaviour under load, on the virtual clock.
//!
//! Simulates request arrivals at a range of rates (requests per tick,
//! deterministic fractional accumulator — no RNG, so every run is
//! identical), drives an [`EncodeCoalescer`] with `max_batch = 8` /
//! `max_wait = 4`, and reports per rate:
//!
//! * mean batch fill (graphs per batched forward) and the full/timer flush
//!   split — how well coalescing converts arrival pressure into batch
//!   efficiency;
//! * heap allocations per encoded graph over successive simulation
//!   windows, counted by a wrapping global allocator — flat across windows
//!   means the steady state recycles buffers (the `gbm-tensor` scratch
//!   pool) instead of growing.
//!
//! EXPERIMENTS.md records a run of this probe.
//!
//! ```text
//! cargo run --release -p gbm-bench --bin probe_serve [-- --json]
//! ```
//!
//! `--json` emits the same per-rate records as a JSON document (one
//! `rates` array, fields named like the table columns), so
//! allocation-per-graph and batch-fill trends can be diffed across PRs the
//! way the `BENCH_*.json` baselines are.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gbm_nn::{GraphBinMatch, GraphBinMatchConfig};
use gbm_serve::{CoalescerConfig, EncodeCoalescer, VirtualClock};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counts every heap allocation on top of the system allocator — the
/// direct observable for "steady-state allocation is flat".
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const MAX_BATCH: usize = 8;
const MAX_WAIT: u64 = 4;
const TICKS: u64 = 400;
const WINDOWS: usize = 4;

/// One arrival rate's observables — a row of the table, a record of the
/// `--json` document.
struct RateRecord {
    rate: f64,
    requests: usize,
    flushes: usize,
    full_flushes: usize,
    timer_flushes: usize,
    mean_fill: f64,
    allocs_per_graph: Vec<f64>,
}

fn main() {
    let json = gbm_bench::probe_args().json;
    let (tok, requests) = gbm_bench::minic_pool(32);
    let vocab = tok.vocab_size();
    let mut rng = StdRng::seed_from_u64(1);
    let model = GraphBinMatch::new(GraphBinMatchConfig::tiny(vocab), &mut rng);
    // warm the scratch pool / embeddings once so window 1 isn't all cold-start
    let _ = model.encoder().embed(&requests[0]);

    let mut records: Vec<RateRecord> = Vec::new();
    if !json {
        println!("=== coalescer under load (virtual clock) ===");
        println!(
            "max_batch={MAX_BATCH} max_wait={MAX_WAIT} ticks={TICKS}; \
             allocs/graph over {WINDOWS} equal windows (flat = steady state)"
        );
        println!(
            "{:>9} {:>9} {:>8} {:>6} {:>6} {:>10}  allocs/graph per window",
            "rate", "requests", "flushes", "full", "timer", "mean fill"
        );
        println!("{}", "-".repeat(88));
    }

    for &rate in &[0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let clock = VirtualClock::new();
        let mut co = EncodeCoalescer::new(CoalescerConfig {
            max_batch: MAX_BATCH,
            max_wait: MAX_WAIT,
        });
        let mut acc = 0.0f64;
        let mut submitted = 0usize;
        let mut window_allocs: Vec<f64> = Vec::new();
        let mut window_start_allocs = ALLOCS.load(Ordering::Relaxed);
        let mut window_start_encoded = 0usize;
        let mut tickets = Vec::new();
        for tick in 0..TICKS {
            // deterministic arrivals: `rate` requests per tick on average
            acc += rate;
            while acc >= 1.0 {
                acc -= 1.0;
                let g = requests[submitted % requests.len()].clone();
                tickets.push(co.submit(&model, g, &clock));
                submitted += 1;
            }
            co.pump(&model, &clock);
            clock.advance(1);
            // tickets drain as they complete (a caller would poll its own)
            tickets.retain(|&t| co.poll(t).is_none());
            if (tick + 1) % (TICKS / WINDOWS as u64) == 0 {
                let allocs_now = ALLOCS.load(Ordering::Relaxed);
                let encoded_now = co.stats().encoded;
                let graphs = (encoded_now - window_start_encoded).max(1);
                window_allocs.push((allocs_now - window_start_allocs) as f64 / graphs as f64);
                window_start_allocs = allocs_now;
                window_start_encoded = encoded_now;
            }
        }
        co.flush(&model);
        let s = co.stats().clone();
        records.push(RateRecord {
            rate,
            requests: submitted,
            flushes: s.flushes,
            full_flushes: s.full_flushes,
            timer_flushes: s.timer_flushes,
            mean_fill: s.mean_batch_fill(),
            allocs_per_graph: window_allocs,
        });
    }

    if json {
        print_json(&records);
        return;
    }
    for r in &records {
        let windows: Vec<String> = r
            .allocs_per_graph
            .iter()
            .map(|a| format!("{a:>7.0}"))
            .collect();
        println!(
            "{:>9.2} {:>9} {:>8} {:>6} {:>6} {:>10.2}  {}",
            r.rate,
            r.requests,
            r.flushes,
            r.full_flushes,
            r.timer_flushes,
            r.mean_fill,
            windows.join(" ")
        );
    }
    println!(
        "\n(arrivals are a fractional accumulator — rate 0.5 = one request every \
         2 ticks; the\n virtual clock makes every row bit-reproducible)"
    );
}

/// Hand-rolled JSON (no serde in the workspace): stable key order, one
/// record per rate, floats with enough digits to diff meaningfully.
fn print_json(records: &[RateRecord]) {
    println!("{{");
    println!(
        "  \"meta\": {{\"max_batch\": {MAX_BATCH}, \"max_wait\": {MAX_WAIT}, \
         \"ticks\": {TICKS}, \"windows\": {WINDOWS}}},"
    );
    println!("  \"rates\": [");
    for (i, r) in records.iter().enumerate() {
        let windows: Vec<String> = r
            .allocs_per_graph
            .iter()
            .map(|a| format!("{a:.1}"))
            .collect();
        let comma = if i + 1 < records.len() { "," } else { "" };
        println!(
            "    {{\"rate\": {:.2}, \"requests\": {}, \"flushes\": {}, \"full_flushes\": {}, \
             \"timer_flushes\": {}, \"mean_fill\": {:.3}, \"allocs_per_graph\": [{}]}}{comma}",
            r.rate,
            r.requests,
            r.flushes,
            r.full_flushes,
            r.timer_flushes,
            r.mean_fill,
            windows.join(", ")
        );
    }
    println!("  ]");
    println!("}}");
}
