//! Regenerates Figure 4: a matching cross-language pair whose IR graphs
//! differ wildly in size (paper: Java 330 nodes / 660 edges vs C++ 65 / 115).

fn main() {
    let cfg = gbm_bench::scale_from_env();
    gbm_bench::banner("Figure 4 (false-negative case study)", &cfg);
    let cs = gbm_eval::experiments::figure4(cfg.seed);
    println!("\ntask: {}", cs.task);
    println!("\n--- MiniC solution ---\n{}", cs.c_source);
    println!("--- MiniJava solution ---\n{}", cs.java_source);
    println!(
        "MiniC graph:    {:>5} nodes {:>5} edges (control {} / data {} / call {})",
        cs.c_stats.nodes, cs.c_stats.edges, cs.c_stats.control, cs.c_stats.data, cs.c_stats.call
    );
    println!(
        "MiniJava graph: {:>5} nodes {:>5} edges (control {} / data {} / call {})",
        cs.java_stats.nodes,
        cs.java_stats.edges,
        cs.java_stats.control,
        cs.java_stats.data,
        cs.java_stats.call
    );
    println!(
        "size ratio: {:.1}x nodes, {:.1}x edges",
        cs.java_stats.nodes as f64 / cs.c_stats.nodes as f64,
        cs.java_stats.edges as f64 / cs.c_stats.edges as f64
    );
}
