//! probe_recover: crash-kill recovery drill over real files, with the
//! cold-start comparison the persistence layer exists for.
//!
//! The drill (all state under `target/probe_recover-state/`, wiped first):
//!
//! 1. **Session 1** — boot a durable server on an empty directory, insert
//!    the first half of a MiniC embedding pool (every op WAL-logged), shut
//!    down cleanly, then checkpoint offline (snapshot + WAL compaction).
//! 2. **Session 2** — boot from that snapshot, insert the second half and
//!    remove every 5th id, then **crash**: the server is dropped without
//!    shutdown and torn junk is appended to the WAL, as a kill mid-append
//!    would leave it.
//! 3. **Recovery** — timed `recover()`: newest snapshot + WAL tail replay
//!    (the torn tail dropped and counted). The recovered index is asserted
//!    rank-identical — ids, scores, tie order — to a never-crashed serial
//!    replay of every acked op.
//! 4. **Cold-start comparison** — recovery time vs re-encoding the same
//!    pool through the GNN encoder (the only alternative way to rebuild
//!    the index). The probe asserts the ≥10× speedup the persistence
//!    layer promises.
//!
//! EXPERIMENTS.md records a run of this probe.
//!
//! ```text
//! cargo run --release -p gbm-bench --bin probe_recover [-- --json]
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use gbm_nn::{GraphBinMatch, GraphBinMatchConfig};
use gbm_serve::persist::{checkpoint, recover, DurabilityConfig};
use gbm_serve::{
    GraphId, IndexConfig, ScanPrecision, Server, ServerConfig, ShardedIndex, VirtualClock,
};
use gbm_store::{FileStorage, Storage, WAL_FILE};
use rand::rngs::StdRng;
use rand::SeedableRng;

const POOL: usize = 48;
const SHARDS: usize = 4;

fn state_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/probe_recover-state")
}

fn main() {
    let json = gbm_bench::probe_args().json;
    let (tok, pool) = gbm_bench::minic_pool(POOL);
    let mut rng = StdRng::seed_from_u64(7);
    let model = GraphBinMatch::new(GraphBinMatchConfig::tiny(tok.vocab_size()), &mut rng);
    let _ = model.encoder().embed(&pool[0]); // warm scratch buffers

    // the cold-start alternative: re-encode the whole pool through the GNN
    let t0 = Instant::now();
    let rows: Vec<Vec<f32>> = pool
        .iter()
        .map(|g| model.encoder().embed(g).data().to_vec())
        .collect();
    let reencode = t0.elapsed();
    let hidden = rows[0].len();

    let dir = state_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let storage: Arc<dyn Storage> = Arc::new(FileStorage::new());
    let dcfg = DurabilityConfig::new(&dir);
    let icfg = IndexConfig {
        num_shards: SHARDS,
        encode_batch: 8,
        precision: ScanPrecision::Int8 { widen: 2 },
        ..Default::default()
    };
    let scfg = ServerConfig {
        scan_workers: 2,
        index: icfg,
        ..Default::default()
    };

    // session 1: first half of the pool, clean shutdown, offline checkpoint
    let rec = recover(Arc::clone(&storage), &dcfg, icfg).expect("fresh boot");
    let server = Server::durable(
        None,
        rec.index,
        scfg,
        Arc::new(VirtualClock::new()),
        rec.wal,
    );
    for (i, row) in rows.iter().take(POOL / 2).enumerate() {
        server.insert_row(i as GraphId, row.clone()).wait();
    }
    let report = server.shutdown();
    assert!(report.is_drained() && report.is_durable(), "{report:?}");
    let mut rec = recover(Arc::clone(&storage), &dcfg, icfg).expect("reload for checkpoint");
    checkpoint(
        Arc::clone(&storage),
        &dcfg,
        &rec.index,
        None,
        None,
        &mut rec.wal,
    )
    .expect("checkpoint");

    // session 2: second half + removals, then crash-kill mid-append
    let server = Server::durable(
        None,
        rec.index,
        scfg,
        Arc::new(VirtualClock::new()),
        rec.wal,
    );
    for (i, row) in rows.iter().enumerate().skip(POOL / 2) {
        server.insert_row(i as GraphId, row.clone()).wait();
    }
    for id in (0..POOL as GraphId).step_by(5) {
        server.remove(id).wait();
    }
    drop(server); // kill: no shutdown, no final sync
    storage
        .append(&dir.join(WAL_FILE), &[0xDE, 0xAD, 0xBE])
        .expect("simulate a torn mid-append kill");

    // timed recovery
    let t0 = Instant::now();
    let rec = recover(Arc::clone(&storage), &dcfg, icfg).expect("crash recovery");
    let recovery = t0.elapsed();

    // never-crashed reference: serial replay of every acked op
    let mut reference = ShardedIndex::new(icfg);
    for (i, row) in rows.iter().enumerate() {
        reference.insert_row(i as GraphId, row);
    }
    for id in (0..POOL as GraphId).step_by(5) {
        reference.remove(id);
    }
    assert_eq!(rec.index.ids(), reference.ids(), "recovered id set");
    for q in rows.iter().step_by(7) {
        for k in [1usize, 5, POOL] {
            assert_eq!(
                rec.index.query(q, k),
                reference.query(q, k),
                "recovered rankings must be exact"
            );
        }
    }

    let ops_replayed = rec.replayed_ops;
    let speedup = reencode.as_secs_f64() / recovery.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 10.0,
        "cold start from snapshot+WAL must be ≥10× faster than re-encoding \
         (got {speedup:.1}×: recover {recovery:?} vs re-encode {reencode:?})"
    );

    // resume serving on the recovered state: the registry snapshot below
    // carries the recovery seeding (`recover.*`), the post-recovery scan
    // work, and the WAL activity of the resumed session in one exposition
    let rstats = rec.stats();
    let snapshot_seq = rec.snapshot_seq;
    let torn_bytes = rec.torn_bytes;
    let server = Server::durable(
        None,
        rec.index,
        scfg,
        Arc::new(VirtualClock::new()),
        rec.wal,
    );
    server.record_recovery(rstats);
    for q in rows.iter().step_by(11) {
        let _ = server.query(q, 5);
    }
    server.insert_row(1_000_000, rows[0].clone()).wait();
    let metrics = server.metrics();
    let report = server.shutdown();
    assert!(report.is_drained() && report.is_durable(), "{report:?}");

    if json {
        println!("{{");
        println!("  \"meta\": {{\"pool\": {POOL}, \"shards\": {SHARDS}, \"hidden\": {hidden}}},");
        println!(
            "  \"crash\": {{\"snapshot_seq\": {}, \"replayed_ops\": {}, \"torn_bytes\": {}}},",
            snapshot_seq, ops_replayed, torn_bytes
        );
        println!(
            "  \"cold_start\": {{\"recover_us\": {}, \"reencode_us\": {}, \"speedup\": {:.1}}},",
            recovery.as_micros(),
            reencode.as_micros(),
            speedup
        );
        println!("  \"metrics\": {}", metrics.to_json());
        println!("}}");
        return;
    }
    println!("=== crash-kill recovery drill (MiniC pool, real files) ===");
    println!(
        "pool={POOL} graphs, hidden={hidden}, shards={SHARDS}, int8 index; \
         state under target/probe_recover-state/"
    );
    println!(
        "crash state : snapshot at seq {snapshot_seq}, {ops_replayed} WAL ops replayed, \
         {torn_bytes} torn bytes dropped"
    );
    println!("rankings    : recovered index rank-identical to never-crashed replay");
    println!(
        "cold start  : recover {:.2?} vs re-encode {:.2?}  ({speedup:.0}x faster)",
        recovery, reencode
    );
    println!(
        "resumed     : {} queries + {} WAL appends on the recovered server \
         (recover.replayed_ops={})",
        metrics.counter("serve.queries").unwrap_or(0),
        metrics.counter("wal.appends").unwrap_or(0),
        metrics.counter("recover.replayed_ops").unwrap_or(0),
    );
}
