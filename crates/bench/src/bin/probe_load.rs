//! probe_load: sustained mixed insert/query load on the concurrent server.
//!
//! Spins up a [`gbm_serve::Server`] over a synthetic unit-norm row pool
//! (no model — inserts publish precomputed rows, so the probe measures the
//! *serving* pipeline: channel fan-out, shard-pinned scan workers, the
//! single-writer publish path) and hammers it from `CLIENTS` threads. Each
//! client interleaves top-K queries with periodic row inserts and removes
//! (mixed read/write load, the regime where a scan serialization bug —
//! e.g. holding the write lock across an encode — would show up as a p99
//! cliff). Per-operation latency goes into a thread-local
//! [`LatencyHistogram`]; the histograms merge after the run, so the timed
//! path shares no state between clients.
//!
//! One row per scan-worker count (1, 2, 4) reports sustained QPS and
//! p50/p90/p99/max query latency. EXPERIMENTS.md records a run. Note the
//! worker threads are real OS threads: on a single-core host the
//! multi-worker rows measure pipelining overhead, not parallel speedup —
//! the `meta.host_cores` field records what the numbers mean.
//!
//! ```text
//! cargo run --release -p gbm-bench --bin probe_load [-- --json]
//! ```
//!
//! Before any timing, the probe asserts the concurrent fan-out answer is
//! exactly the single-threaded [`ShardedIndex::query`] answer on this
//! pool — a wrong-but-fast server must fail loudly, not get benchmarked.

use std::sync::Arc;
use std::time::Instant;

use gbm_bench::{synth_unit_rows, LatencyHistogram};
use gbm_serve::{
    CoalescerConfig, IndexConfig, MetricsSnapshot, Server, ServerConfig, ShardedIndex, VirtualClock,
};

const ROWS: usize = 8192;
const HIDDEN: usize = 64;
const SHARDS: usize = 8;
const K: usize = 10;
const CLIENTS: usize = 2;
const OPS_PER_CLIENT: usize = 1500;
/// Every N-th client op is an insert; the op after an insert removes an
/// earlier inserted id, keeping the pool size bounded.
const INSERT_EVERY: usize = 16;
const SEED: u64 = 77;

struct ThreadRecord {
    scan_workers: usize,
    queries: u64,
    inserts: u64,
    removes: u64,
    secs: f64,
    hist: LatencyHistogram,
    /// The server's own metrics registry at end of run — embedded verbatim
    /// in the `--json` output, so scan-work and WAL accounting come from
    /// the instrumented pipeline, not probe-side re-derivation.
    metrics: MetricsSnapshot,
}

fn main() {
    let json = gbm_bench::probe_args().json;
    let rows = synth_unit_rows(ROWS, HIDDEN, SEED);
    let icfg = IndexConfig {
        num_shards: SHARDS,
        ..Default::default()
    };

    // correctness first: the fanned-out concurrent answer must be exactly
    // the single-threaded one before its speed means anything
    let reference = ShardedIndex::from_rows(&rows, HIDDEN, icfg);
    {
        let server = mk_server(&rows, icfg, 4);
        for q in 0..8 {
            let query = &rows[q * 131 * HIDDEN..(q * 131 + 1) * HIDDEN];
            assert_eq!(
                server.query(query, K),
                reference.query(query, K),
                "concurrent fan-out diverged from the single-threaded scan"
            );
        }
    }

    let mut records = Vec::new();
    for workers in [1usize, 2, 4] {
        records.push(run_load(&rows, icfg, workers));
    }

    if json {
        print_json(&records);
        return;
    }
    println!("=== concurrent server under mixed load ===");
    println!(
        "pool {ROWS}×{HIDDEN} f32, {SHARDS} shards, k={K}; {CLIENTS} clients × \
         {OPS_PER_CLIENT} ops, 1 insert+remove per {INSERT_EVERY} ops; \
         host cores: {}",
        host_cores()
    );
    println!(
        "{:>8} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "workers", "queries", "qps", "p50 µs", "p90 µs", "p99 µs", "max µs"
    );
    println!("{}", "-".repeat(72));
    for r in &records {
        println!(
            "{:>8} {:>9} {:>9.0} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            r.scan_workers,
            r.queries,
            r.queries as f64 / r.secs,
            r.hist.p50() as f64 / 1e3,
            r.hist.p90() as f64 / 1e3,
            r.hist.p99() as f64 / 1e3,
            r.hist.max() as f64 / 1e3,
        );
    }
    println!(
        "\n(latencies are per-query wall time inside a client thread; on a \
         1-core host extra\n workers measure pipelining overhead, not speedup)"
    );
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn mk_server(rows: &[f32], icfg: IndexConfig, workers: usize) -> Server {
    Server::from_rows(
        rows,
        HIDDEN,
        ServerConfig {
            scan_workers: workers,
            coalescer: CoalescerConfig::default(),
            index: icfg,
            ..Default::default()
        },
        Arc::new(VirtualClock::new()),
    )
}

fn run_load(rows: &[f32], icfg: IndexConfig, workers: usize) -> ThreadRecord {
    let server = Arc::new(mk_server(rows, icfg, workers));
    // brief warm-up so page faults / lazy init stay out of the histogram
    for q in 0..16 {
        let query = &rows[q * 17 * HIDDEN..(q * 17 + 1) * HIDDEN];
        let _ = server.query(query, K);
    }
    let started = Instant::now();
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let server = Arc::clone(&server);
        let rows = rows.to_vec();
        clients.push(std::thread::spawn(move || {
            let mut hist = LatencyHistogram::new();
            let mut queries = 0u64;
            let mut inserts = 0u64;
            let mut removes = 0u64;
            // private id space per client, far above the pool's 0..ROWS
            let id_base = 1_000_000 * (c as u64 + 1);
            for op in 0..OPS_PER_CLIENT {
                if op % INSERT_EVERY == INSERT_EVERY - 1 {
                    let id = id_base + inserts;
                    let src = ((op * 613 + c * 37) % ROWS) * HIDDEN;
                    server
                        .insert_row(id, rows[src..src + HIDDEN].to_vec())
                        .wait();
                    inserts += 1;
                    // bound the live extra rows: remove the one before last
                    if inserts >= 2 {
                        server.remove(id_base + inserts - 2).wait();
                        removes += 1;
                    }
                    continue;
                }
                let src = ((op * 257 + c * 8191) % ROWS) * HIDDEN;
                let query = &rows[src..src + HIDDEN];
                let t0 = Instant::now();
                let top = server.query(query, K);
                hist.record(t0.elapsed().as_nanos() as u64);
                queries += 1;
                assert!(top.len() == K, "full pool always fills k");
            }
            (hist, queries, inserts, removes)
        }));
    }
    let mut hist = LatencyHistogram::new();
    let (mut queries, mut inserts, mut removes) = (0u64, 0u64, 0u64);
    for cl in clients {
        let (h, q, i, r) = cl.join().expect("client thread panicked");
        hist.merge(&h);
        queries += q;
        inserts += i;
        removes += r;
    }
    let secs = started.elapsed().as_secs_f64();
    let server = Arc::into_inner(server).expect("clients joined");
    let metrics = server.metrics();
    let report = server.shutdown();
    assert!(
        report.is_drained(),
        "load run leaked server state: {report:?}"
    );
    ThreadRecord {
        scan_workers: workers,
        queries,
        inserts,
        removes,
        secs,
        hist,
        metrics,
    }
}

/// Hand-rolled JSON (no serde in the workspace): stable key order, one
/// record per scan-worker count, latencies in microseconds. The per-run
/// `metrics` object is the server's own registry snapshot
/// ([`MetricsSnapshot::to_json`]) embedded verbatim — scan work, encode
/// activity, and failover counts come from the instrumented pipeline
/// itself rather than hand-rolled probe-side fields.
fn print_json(records: &[ThreadRecord]) {
    println!("{{");
    println!(
        "  \"meta\": {{\"rows\": {ROWS}, \"hidden\": {HIDDEN}, \"shards\": {SHARDS}, \
         \"k\": {K}, \"clients\": {CLIENTS}, \"ops_per_client\": {OPS_PER_CLIENT}, \
         \"insert_every\": {INSERT_EVERY}, \"host_cores\": {}}},",
        host_cores()
    );
    println!("  \"threads\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        println!(
            "    {{\"scan_workers\": {}, \"queries\": {}, \"inserts\": {}, \"removes\": {}, \
             \"qps\": {:.0}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \
             \"max_us\": {:.1}, \"mean_us\": {:.1}, \"metrics\": {}}}{comma}",
            r.scan_workers,
            r.queries,
            r.inserts,
            r.removes,
            r.queries as f64 / r.secs,
            r.hist.p50() as f64 / 1e3,
            r.hist.p90() as f64 / 1e3,
            r.hist.p99() as f64 / 1e3,
            r.hist.max() as f64 / 1e3,
            r.hist.mean() / 1e3,
            r.metrics.to_json(),
        );
    }
    println!("  ]");
    println!("}}");
}
