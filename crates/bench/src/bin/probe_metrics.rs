//! probe_metrics: mixed load against an instrumented server, ending in the
//! metrics-registry exposition — the smoke test for `gbm-obs` wired through
//! the full serving + durability stack.
//!
//! The drill (state under `target/probe_metrics-state/`, wiped first):
//!
//! 1. **Seed session** — a durable model-backed server encodes and inserts
//!    half a MiniC pool (every op WAL-logged), then shuts down cleanly.
//! 2. **Recovery** — `recover()` replays the seed session's WAL; its stats
//!    seed the `recover.*` counters of the next server via
//!    [`Server::record_recovery`].
//! 3. **Observed session** — a second durable server (trace sampling on)
//!    inserts the remaining half through the coalesced encode path, answers
//!    a query sweep, then loses a poisoned scan worker and keeps answering
//!    through the inline-failover path.
//! 4. **Exposition** — the run ends by printing
//!    [`Server::metrics`](gbm_serve::Server::metrics) as the text
//!    exposition (`--json` embeds the JSON snapshot instead) plus the first
//!    sampled [`TraceSpan`] renders. Every metric family the registry
//!    promises — encode, scan, merge, WAL, recovery, failover — is asserted
//!    non-zero before printing, so a silently dead counter fails the probe
//!    rather than shipping an all-zero dashboard.
//! 5. **Traced scan comparison** (text mode only) — the same query traced
//!    on the clustered 16384×128 scan pool behind exact int8 and behind
//!    IVF, the stage-by-stage walk EXPERIMENTS.md §Observability records.
//!
//! `GBM_METRICS` / `GBM_TRACE_SAMPLE` are honoured via
//! [`ServerConfig::with_env`] (metrics off turns the assertions off too —
//! the probe then demonstrates the instrumented-out exposition is empty).
//!
//! ```text
//! cargo run --release -p gbm-bench --bin probe_metrics [-- --json]
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use gbm_nn::{GraphBinMatch, GraphBinMatchConfig};
use gbm_serve::persist::{recover, DurabilityConfig};
use gbm_serve::{
    CoalescerConfig, GraphId, IndexConfig, ScanPrecision, Server, ServerConfig, VirtualClock,
    WallClock,
};
use gbm_store::{FileStorage, Storage};
use rand::rngs::StdRng;
use rand::SeedableRng;

const POOL: usize = 24;
const SHARDS: usize = 4;
const K: usize = 5;

fn state_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/probe_metrics-state")
}

fn main() {
    let json = gbm_bench::probe_args().json;
    let (tok, pool) = gbm_bench::minic_pool(POOL);
    let mut rng = StdRng::seed_from_u64(11);
    let model = GraphBinMatch::new(GraphBinMatchConfig::tiny(tok.vocab_size()), &mut rng);
    let queries: Vec<Vec<f32>> = pool
        .iter()
        .step_by(3)
        .map(|g| model.encoder().embed(g).data().to_vec())
        .collect();

    let dir = state_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let storage: Arc<dyn Storage> = Arc::new(FileStorage::new());
    let dcfg = DurabilityConfig::new(&dir);
    let icfg = IndexConfig {
        num_shards: SHARDS,
        encode_batch: 4,
        ..Default::default()
    };
    let mut scfg = ServerConfig {
        scan_workers: 2,
        coalescer: CoalescerConfig {
            max_batch: 4,
            ..Default::default()
        },
        index: icfg,
        ..Default::default()
    };
    scfg.obs.trace_sample = 3; // every 3rd query leaves a TraceSpan
    let scfg = scfg.with_env();

    // seed session: WAL half the pool through the encode path, clean stop
    let rec = recover(Arc::clone(&storage), &dcfg, icfg).expect("fresh boot");
    let server = Server::durable(
        Some(&model),
        rec.index,
        scfg,
        Arc::new(VirtualClock::new()),
        rec.wal,
    );
    // submit the whole half up front: the coalescer flushes on full
    // batches (waiting per-insert under a VirtualClock would never fill
    // one), and every handle resolving proves every op was WAL-acked
    let handles: Vec<_> = pool
        .iter()
        .take(POOL / 2)
        .enumerate()
        .map(|(i, g)| server.insert(i as GraphId, g.clone()))
        .collect();
    for h in handles {
        h.result().expect("seed insert WAL-acked");
    }
    let report = server.shutdown();
    assert!(report.is_drained() && report.is_durable(), "{report:?}");

    // recovery replays the seed session's WAL; its stats seed `recover.*`
    let rec = recover(Arc::clone(&storage), &dcfg, icfg).expect("replay seed WAL");
    let rstats = rec.stats();
    assert_eq!(rstats.replayed_ops, POOL / 2, "seed ops all WAL-logged");

    // observed session: encodes, queries, then failover under fire
    let server = Server::durable(
        Some(&model),
        rec.index,
        scfg,
        Arc::new(VirtualClock::new()),
        rec.wal,
    );
    server.record_recovery(rstats);
    let handles: Vec<_> = pool
        .iter()
        .enumerate()
        .skip(POOL / 2)
        .map(|(i, g)| server.insert(i as GraphId, g.clone()))
        .collect();
    for h in handles {
        h.result().expect("observed insert WAL-acked");
    }
    for q in &queries {
        let top = server.query(q, K);
        assert_eq!(top.len(), K, "full pool always fills k");
    }
    server.poison_scan_worker(1);
    for q in queries.iter().take(3) {
        let top = server.query(q, K);
        assert_eq!(top.len(), K, "failover path still fills k");
    }

    let metrics = server.metrics();
    let traces = server.take_traces();
    let report = server.shutdown();
    assert!(report.is_drained() && report.is_durable(), "{report:?}");

    if metrics.counter("serve.queries").is_some() {
        // every family the exposition promises must be live under this load
        for name in [
            "serve.queries",
            "serve.scan.rows",
            "serve.encode.flushes",
            "serve.encode.graphs",
            "serve.failover.inline_scans",
            "serve.workers.panics",
            "wal.appends",
            "recover.replayed_ops",
            "recover.replay_us",
        ] {
            assert!(
                metrics.counter(name).unwrap_or(0) > 0,
                "counter {name} stayed zero under mixed load"
            );
        }
        for name in [
            "serve.query_us",
            "serve.merge_us",
            "serve.encode.forward_us",
            "wal.append_us",
        ] {
            assert!(
                metrics.histogram(name).is_some_and(|h| h.count() > 0),
                "histogram {name} stayed empty under mixed load"
            );
        }
        assert!(!traces.is_empty(), "trace sampling on but no spans kept");
    }

    if json {
        println!("{{");
        println!(
            "  \"meta\": {{\"pool\": {POOL}, \"shards\": {SHARDS}, \"k\": {K}, \
             \"queries\": {}, \"traces\": {}}},",
            queries.len() + 3,
            traces.len()
        );
        println!("  \"metrics\": {}", metrics.to_json());
        println!("}}");
        return;
    }
    println!("=== metrics exposition under mixed load (MiniC pool) ===");
    println!(
        "pool={POOL} graphs, {SHARDS} shards, 2 scan workers (1 poisoned mid-run); \
         {} queries + {POOL} coalesced encode inserts, WAL on",
        queries.len() + 3
    );
    println!("\n--- registry exposition ---");
    print!("{}", metrics.to_text());
    println!(
        "\n--- sampled traces ({} kept, first 2 shown) ---",
        traces.len()
    );
    for span in traces.iter().take(2) {
        print!("{}", span.render());
    }
    traced_scan_comparison();
}

/// The EXPERIMENTS.md §Observability walk-through: the same query traced
/// on the clustered 16384×128 scan pool behind the exact int8 tier and
/// behind IVF. The trace fields show *where* IVF saves the work (cells
/// probed instead of whole shards, rows scanned, scan bytes); the
/// `serve.query_us` histogram shows what that buys in wall time. Text
/// mode only — `--json` (the CI drill) skips the pool build.
fn traced_scan_comparison() {
    const ROWS: usize = 16384;
    const HIDDEN: usize = 128;
    const SCAN_K: usize = 10;
    let all = gbm_bench::synth_clustered_rows(ROWS + 1, HIDDEN, 64, 42);
    let (rows, query) = all.split_at(ROWS * HIDDEN);

    println!(
        "\n--- traced scan: clustered {ROWS}×{HIDDEN} pool, k={SCAN_K}, \
         exact int8 vs IVF ---"
    );
    for (name, precision) in [
        ("int8_exact", ScanPrecision::Int8 { widen: 4 }),
        (
            "ivf_nprobe4",
            ScanPrecision::Ivf {
                nprobe: 4,
                widen: 4,
            },
        ),
    ] {
        let mut cfg = ServerConfig {
            scan_workers: 2,
            index: IndexConfig {
                num_shards: 4,
                encode_batch: 8,
                precision,
                ..Default::default()
            },
            ..Default::default()
        };
        cfg.obs.trace_sample = 1; // trace every query (ticks = WallClock ms)
        let server = Server::from_rows(rows, HIDDEN, cfg, Arc::new(WallClock::new()));
        for _ in 0..8 {
            let top = server.query(query, SCAN_K);
            assert_eq!(top.len(), SCAN_K);
        }
        let metrics = server.metrics();
        let traces = server.take_traces();
        server.shutdown();
        let h = metrics
            .histogram("serve.query_us")
            .expect("query histogram live");
        println!(
            "\n[{name}] p50 {} µs  (8 queries; total rows scanned {}, \
             cells probed {}, survivors re-ranked {}, scan bytes {})",
            h.p50(),
            metrics.counter("serve.scan.rows").unwrap_or(0),
            metrics.counter("serve.scan.cells_probed").unwrap_or(0),
            metrics.counter("serve.scan.survivors").unwrap_or(0),
            metrics.counter("serve.scan.bytes").unwrap_or(0),
        );
        print!("{}", traces[0].render());
    }
}
