//! Diagnostic: training trajectory at configurable scale (not part of the
//! experiment suite; used to tune the harness hyper-parameters).

use gbm_binary::{Compiler, OptLevel};
use gbm_eval::{run_experiment, ExperimentSpec, HarnessConfig};

fn main() {
    let mut cfg = HarnessConfig::standard();
    let args: Vec<String> = std::env::args().collect();
    cfg.epochs = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(25);
    cfg.lr = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6e-3);
    cfg.hidden_dim = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(32);
    cfg.num_layers = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(2);
    cfg.num_tasks = args
        .get(5)
        .and_then(|s| s.parse().ok())
        .unwrap_or(cfg.num_tasks);
    cfg.solutions_per_task = args
        .get(6)
        .and_then(|s| s.parse().ok())
        .unwrap_or(cfg.solutions_per_task);
    let mut spec = ExperimentSpec::single_language(Compiler::Clang, OptLevel::O0);
    spec.with_baselines = false;
    let r = run_experiment(&spec, &cfg);
    for (i, s) in r.train_stats.iter().enumerate() {
        println!(
            "epoch {:>2}: loss {:.4} acc {:.2}",
            i + 1,
            s.loss,
            s.accuracy
        );
    }
    println!("test: {}", r.methods[0].prf);
    let pos: Vec<f32> = r
        .gbm_scores
        .iter()
        .zip(&r.labels)
        .filter(|(_, &l)| l == 1.0)
        .map(|(s, _)| *s)
        .collect();
    let neg: Vec<f32> = r
        .gbm_scores
        .iter()
        .zip(&r.labels)
        .filter(|(_, &l)| l == 0.0)
        .map(|(s, _)| *s)
        .collect();
    let mean = |v: &Vec<f32>| v.iter().sum::<f32>() / v.len().max(1) as f32;
    let spread = |v: &Vec<f32>| {
        let m = mean(v);
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / v.len().max(1) as f32).sqrt()
    };
    println!(
        "test scores: pos mean {:.3} sd {:.3} ({}), neg mean {:.3} sd {:.3} ({})",
        mean(&pos),
        spread(&pos),
        pos.len(),
        mean(&neg),
        spread(&neg),
        neg.len()
    );
}
