//! # gbm-bench
//!
//! Regeneration harness for every table and figure in the paper, plus
//! criterion benchmarks over the pipeline stages.
//!
//! Each `table_*` / `figure_*` binary prints the corresponding rows:
//!
//! ```text
//! cargo run --release -p gbm-bench --bin table3_cross_language
//! ```
//!
//! Scale is selected with the `GBM_SCALE` environment variable:
//! `quick` (seconds, smoke test) or `standard` (the EXPERIMENTS.md setting,
//! minutes on a laptop). Default: `standard`.

use gbm_eval::{HarnessConfig, MethodScore};

/// Reads `GBM_SCALE` (and optional `GBM_EPOCHS` / `GBM_SEED` /
/// `GBM_ENCODE_BATCH` overrides) and returns the corresponding harness
/// configuration.
pub fn scale_from_env() -> HarnessConfig {
    let mut cfg = match std::env::var("GBM_SCALE").as_deref() {
        Ok("quick") => HarnessConfig::quick(),
        _ => HarnessConfig::standard(),
    };
    if let Ok(e) = std::env::var("GBM_EPOCHS") {
        if let Ok(n) = e.parse() {
            cfg.epochs = n;
        }
    }
    if let Ok(s) = std::env::var("GBM_SEED") {
        if let Ok(n) = s.parse() {
            cfg.seed = n;
        }
    }
    if let Ok(b) = std::env::var("GBM_ENCODE_BATCH") {
        if let Ok(n) = b.parse() {
            cfg.encode_batch_size = n;
        }
    }
    cfg
}

/// Prints a `P / R / F1` method table with an optional title.
pub fn print_method_table(title: &str, rows: &[MethodScore]) {
    println!("\n## {title}");
    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>10}",
        "Method", "Precision", "Recall", "F1", "Threshold"
    );
    println!("{}", "-".repeat(66));
    for m in rows {
        println!(
            "{:<24} {:>9.2} {:>9.2} {:>9.2} {:>10.2}",
            m.method, m.prf.precision, m.prf.recall, m.prf.f1, m.threshold
        );
    }
}

/// Prints a retrieval-metrics block (MRR / recall@k) for one query set.
pub fn print_retrieval(title: &str, r: &gbm_eval::RetrievalMetrics) {
    println!("\n## {title}");
    println!(
        "{} queries ranked over {} candidates",
        r.num_queries, r.num_candidates
    );
    println!("{:<12} {:>8}", "Metric", "Value");
    println!("{}", "-".repeat(21));
    println!("{:<12} {:>8.3}", "MRR", r.mrr);
    for &(k, v) in &r.recall_at {
        println!("{:<12} {:>8.3}", format!("recall@{k}"), v);
    }
}

/// Standard banner for every harness binary.
pub fn banner(what: &str, cfg: &HarnessConfig) {
    println!("=== GraphBinMatch reproduction — {what} ===");
    println!(
        "scale: tasks={} solutions/task/lang={} dims={}/{} layers={} epochs={}",
        cfg.num_tasks,
        cfg.solutions_per_task,
        cfg.embed_dim,
        cfg.hidden_dim,
        cfg.num_layers,
        cfg.epochs
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_standard() {
        let cfg = scale_from_env();
        assert!(cfg.num_tasks >= HarnessConfig::quick().num_tasks);
    }

    #[test]
    fn printing_does_not_panic() {
        print_method_table(
            "t",
            &[MethodScore {
                method: "X".into(),
                prf: gbm_eval::Prf {
                    precision: 0.5,
                    recall: 0.5,
                    f1: 0.5,
                },
                threshold: 0.5,
            }],
        );
        banner("test", &HarnessConfig::quick());
    }
}
