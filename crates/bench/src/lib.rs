//! # gbm-bench
//!
//! Regeneration harness for every table and figure in the paper, plus
//! criterion benchmarks over the pipeline stages.
//!
//! Each `table_*` / `figure_*` binary prints the corresponding rows:
//!
//! ```text
//! cargo run --release -p gbm-bench --bin table3_cross_language
//! ```
//!
//! Scale is selected with the `GBM_SCALE` environment variable:
//! `quick` (seconds, smoke test) or `standard` (the EXPERIMENTS.md setting,
//! minutes on a laptop). Default: `standard`.

pub mod latency;

pub use latency::LatencyHistogram;

use gbm_eval::{HarnessConfig, MethodScore};
use gbm_frontends::{compile, SourceLang};
use gbm_nn::{encode_graph, EncodedGraph, TrainObjective};
use gbm_progml::{build_graph, NodeTextMode};
use gbm_tokenizer::{Tokenizer, TokenizerConfig};

/// Reads and parses an environment knob. Invalid values warn loudly on
/// stderr and fall back to the built-in default instead of being silently
/// ignored — a typo'd `GBM_EPOCHS=1O` must not masquerade as a real run.
fn env_knob<T: std::str::FromStr>(name: &str, what: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!(
                "warning: ignoring invalid {name}={raw:?} (expected {what}); using the default"
            );
            None
        }
    }
}

/// The shared CLI contract of the `probe_*` binaries, parsed once by
/// [`probe_args`]: every probe accepts `-- --json` for the
/// machine-readable document, and the multi-process drills re-exec
/// themselves with `--flag value` pairs ([`ProbeArgs::flag_value`]).
pub struct ProbeArgs {
    /// `--json` was passed: print the JSON document instead of the table.
    pub json: bool,
    args: Vec<String>,
}

impl ProbeArgs {
    /// The value following `--<name>`, for probes that re-exec themselves
    /// with role flags (e.g. `--role writer --dir /tmp/x`).
    pub fn flag_value(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.args
            .iter()
            .position(|a| *a == flag)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }
}

/// Parses the probe CLI contract from `std::env::args()` — the one place
/// every probe binary's `--json` (and role-flag) handling lives.
pub fn probe_args() -> ProbeArgs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ProbeArgs {
        json: args.iter().any(|a| a == "--json"),
        args,
    }
}

/// Reads `GBM_SCALE` (and optional `GBM_EPOCHS` / `GBM_SEED` /
/// `GBM_ENCODE_BATCH` / `GBM_OBJECTIVE` overrides) and returns the
/// corresponding harness configuration. Invalid values warn and fall back.
pub fn scale_from_env() -> HarnessConfig {
    let mut cfg = match std::env::var("GBM_SCALE").ok().as_deref() {
        Some("quick") => HarnessConfig::quick(),
        Some("standard") | None => HarnessConfig::standard(),
        Some(other) => {
            eprintln!(
                "warning: ignoring invalid GBM_SCALE={other:?} (expected quick | standard); \
                 using standard"
            );
            HarnessConfig::standard()
        }
    };
    if let Some(n) = env_knob("GBM_EPOCHS", "a non-negative integer") {
        cfg.epochs = n;
    }
    if let Some(n) = env_knob("GBM_SEED", "an unsigned integer") {
        cfg.seed = n;
    }
    if let Some(n) = env_knob("GBM_ENCODE_BATCH", "a positive integer") {
        cfg.encode_batch_size = n;
    }
    if let Some(o) = env_knob::<TrainObjective>(
        "GBM_OBJECTIVE",
        "bce | triplet[:margin] | infonce[:temperature]",
    ) {
        cfg.objective = o;
    }
    cfg
}

/// A shared bench workload: `n` MiniC programs with deliberately uneven
/// graph shapes (straight line, loop, nested loops — the mix a real
/// candidate pool has), encoded against a tokenizer trained on themselves.
/// Used by the `serve_query` bench and the `probe_serve` load probe, so
/// their pools cannot drift apart.
pub fn minic_pool(n: usize) -> (Tokenizer, Vec<EncodedGraph>) {
    let sources: Vec<String> = (0..n)
        .map(|k| match k % 3 {
            0 => format!(
                "int main() {{ int s = {k} + 2; int t = s * 3; print(s + t); return 0; }}"
            ),
            1 => format!(
                "int f(int n) {{ int s = {k}; for (int i = 0; i < n; i++) {{ s += i * {}; }} return s; }}
                 int main() {{ print(f({})); return 0; }}",
                k % 17 + 1,
                k % 23 + 10
            ),
            _ => format!(
                "int main() {{ int s = 0; for (int i = 0; i < {}; i++) {{ for (int j = 0; j < i; j++) {{ s += i * j + {k}; }} }} print(s); return s; }}",
                k % 11 + 3
            ),
        })
        .collect();
    let graphs: Vec<gbm_progml::ProgramGraph> = sources
        .iter()
        .map(|s| build_graph(&compile(SourceLang::MiniC, "t", s).unwrap()))
        .collect();
    let refs: Vec<&gbm_progml::ProgramGraph> = graphs.iter().collect();
    let tok = Tokenizer::train_on_graphs(&refs, NodeTextMode::FullText, TokenizerConfig::default());
    let pool = graphs
        .iter()
        .map(|g| encode_graph(g, &tok, NodeTextMode::FullText))
        .collect();
    (tok, pool)
}

/// Deterministic unit-norm synthetic rows (splitmix64 driven): the spread
/// embedding pool for quantized-scan benchmarking. Shared by the
/// `serve_query` bench's `scan_*` group and the `probe_quant` probe, so
/// the pool the probe characterizes is *by construction* the pool the
/// gated bench times.
pub fn synth_unit_rows(n: usize, hidden: usize, seed: u64) -> Vec<f32> {
    let mut state = seed;
    let mut next = || {
        // splitmix64, mapped to [-1, 1)
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 2_000_000) as f32 / 1_000_000.0 - 1.0
    };
    let mut rows = vec![0.0f32; n * hidden];
    for row in rows.chunks_exact_mut(hidden) {
        let mut norm = 0.0f32;
        for v in row.iter_mut() {
            *v = next();
            norm += *v * *v;
        }
        let inv = 1.0 / norm.sqrt().max(1e-12);
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    rows
}

/// Deterministic *clustered* unit-norm synthetic rows: `clusters` random
/// unit centers, each row a center plus scaled noise, renormalized. This is
/// the distribution real embedding pools have (encoder outputs concentrate
/// around program families — `probe_quant`'s near-dup pool is the extreme
/// case), and the regime IVF's sub-linear scan is built for. The IVF
/// acceptance gate runs here; the uniform [`synth_unit_rows`] pool, where
/// top-K neighbors are structureless and IVF provably cannot win, stays as
/// the exact-scan gate pool and documents the hostile regime in
/// EXPERIMENTS.md. Rows cycle through clusters (`row i → cluster i %
/// clusters`), so any contiguous slice stays balanced.
pub fn synth_clustered_rows(n: usize, hidden: usize, clusters: usize, seed: u64) -> Vec<f32> {
    let centers = synth_unit_rows(clusters, hidden, seed);
    let noise = synth_unit_rows(n, hidden, seed ^ 0xC1A5_7E2D);
    let mut rows = vec![0.0f32; n * hidden];
    for (i, row) in rows.chunks_exact_mut(hidden).enumerate() {
        let c = &centers[(i % clusters) * hidden..(i % clusters + 1) * hidden];
        let e = &noise[i * hidden..(i + 1) * hidden];
        let mut norm = 0.0f32;
        for d in 0..hidden {
            row[d] = c[d] + 0.25 * e[d];
            norm += row[d] * row[d];
        }
        let inv = 1.0 / norm.sqrt().max(1e-12);
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    rows
}

/// Prints a `P / R / F1` method table with an optional title.
pub fn print_method_table(title: &str, rows: &[MethodScore]) {
    println!("\n## {title}");
    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>10}",
        "Method", "Precision", "Recall", "F1", "Threshold"
    );
    println!("{}", "-".repeat(66));
    for m in rows {
        println!(
            "{:<24} {:>9.2} {:>9.2} {:>9.2} {:>10.2}",
            m.method, m.prf.precision, m.prf.recall, m.prf.f1, m.threshold
        );
    }
}

/// Prints a retrieval-metrics block (MRR / recall@k) for one query set.
pub fn print_retrieval(title: &str, r: &gbm_eval::RetrievalMetrics) {
    println!("\n## {title}");
    println!(
        "{} queries ranked over {} candidates",
        r.num_queries, r.num_candidates
    );
    println!("{:<12} {:>8}", "Metric", "Value");
    println!("{}", "-".repeat(21));
    println!("{:<12} {:>8.3}", "MRR", r.mrr);
    for &(k, v) in &r.recall_at {
        println!("{:<12} {:>8.3}", format!("recall@{k}"), v);
    }
}

/// Standard banner for every harness binary.
pub fn banner(what: &str, cfg: &HarnessConfig) {
    println!("=== GraphBinMatch reproduction — {what} ===");
    println!(
        "scale: tasks={} solutions/task/lang={} dims={}/{} layers={} epochs={}",
        cfg.num_tasks,
        cfg.solutions_per_task,
        cfg.embed_dim,
        cfg.hidden_dim,
        cfg.num_layers,
        cfg.epochs
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers every env knob: setting/reading process-wide
    /// environment from parallel tests would race.
    #[test]
    fn default_scale_is_standard_and_env_knobs_fall_back_loudly() {
        let cfg = scale_from_env();
        assert!(cfg.num_tasks >= HarnessConfig::quick().num_tasks);
        assert_eq!(cfg.objective, TrainObjective::PairwiseBce);

        // valid overrides apply
        std::env::set_var("GBM_SCALE", "quick");
        std::env::set_var("GBM_EPOCHS", "3");
        std::env::set_var("GBM_OBJECTIVE", "triplet:0.4");
        let cfg = scale_from_env();
        assert_eq!(cfg.num_tasks, HarnessConfig::quick().num_tasks);
        assert_eq!(cfg.epochs, 3);
        assert_eq!(cfg.objective, TrainObjective::Triplet { margin: 0.4 });

        // invalid values warn (stderr) and fall back to the scale default
        std::env::set_var("GBM_EPOCHS", "1O");
        std::env::set_var("GBM_ENCODE_BATCH", "many");
        std::env::set_var("GBM_OBJECTIVE", "hinge");
        std::env::set_var("GBM_SCALE", "enormous");
        let cfg = scale_from_env();
        assert_eq!(cfg.epochs, HarnessConfig::standard().epochs);
        assert_eq!(
            cfg.encode_batch_size,
            HarnessConfig::standard().encode_batch_size
        );
        assert_eq!(cfg.objective, TrainObjective::PairwiseBce);
        assert_eq!(cfg.num_tasks, HarnessConfig::standard().num_tasks);

        for var in [
            "GBM_SCALE",
            "GBM_EPOCHS",
            "GBM_ENCODE_BATCH",
            "GBM_OBJECTIVE",
        ] {
            std::env::remove_var(var);
        }
    }

    #[test]
    fn printing_does_not_panic() {
        print_method_table(
            "t",
            &[MethodScore {
                method: "X".into(),
                prf: gbm_eval::Prf {
                    precision: 0.5,
                    recall: 0.5,
                    f1: 0.5,
                },
                threshold: 0.5,
            }],
        );
        banner("test", &HarnessConfig::quick());
    }
}
