//! Training-step cost per objective (BCE vs triplet vs InfoNCE).
//!
//! All three objectives share the step pipeline — sample → gather unique
//! graphs → one disjoint-union forward → loss over the shared `[U, hidden]`
//! embedding matrix — so the bench isolates what the *objective* adds on
//! top: per-pair head forwards for BCE versus one similarity matrix (plus
//! mining/masking) for the contrastive losses. ROADMAP's point that in-batch
//! negatives are "nearly free" once the embedding matrix exists is exactly
//! the claim `scripts/check_bench_regression.py --bench train_step` gates:
//! the contrastive/BCE cost ratio must not regress against
//! `BENCH_train_step.json`.
//!
//! Each iteration restores the model from a weight snapshot and trains one
//! epoch, so measured work is identical run to run (no weight drift).
//!
//! Scale: `GBM_BENCH_SCALE=quick` runs the CI smoke subset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gbm_datasets::{group_pairs_by_anchor, PairSpec};
use gbm_frontends::{compile, SourceLang};
use gbm_nn::{
    encode_graph, train, EncodedGraph, GraphBinMatch, GraphBinMatchConfig, PairExample, PairSet,
    TrainConfig, TrainObjective,
};
use gbm_progml::{build_graph, NodeTextMode};
use gbm_tokenizer::{Tokenizer, TokenizerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_mode() -> bool {
    matches!(std::env::var("GBM_BENCH_SCALE").as_deref(), Ok("quick"))
}

/// A pool with `n_tasks` program families, `per_task` variants each —
/// same-family pairs are positives, cross-family pairs negatives.
fn build_pairset(n_tasks: usize, per_task: usize, batch_size: usize) -> (PairSet, usize) {
    let sources: Vec<String> = (0..n_tasks)
        .flat_map(|t| {
            (0..per_task).map(move |k| match t % 3 {
                0 => format!(
                    "int main() {{ int s = {k} + 2; int t = s * {}; print(s + t); return 0; }}",
                    t + 3
                ),
                1 => format!(
                    "int f(int n) {{ int s = {k}; for (int i = 0; i < n; i++) {{ s += i * {}; }} return s; }}
                     int main() {{ print(f({})); return 0; }}",
                    t + 1,
                    k + 10
                ),
                _ => format!(
                    "int main() {{ int s = 0; for (int i = 0; i < {}; i++) {{ for (int j = 0; j < i; j++) {{ s += i * j + {k}; }} }} print(s); return s; }}",
                    t + k + 3
                ),
            })
        })
        .collect();
    let graphs: Vec<gbm_progml::ProgramGraph> = sources
        .iter()
        .map(|s| build_graph(&compile(SourceLang::MiniC, "t", s).unwrap()))
        .collect();
    let refs: Vec<&gbm_progml::ProgramGraph> = graphs.iter().collect();
    let tok = Tokenizer::train_on_graphs(&refs, NodeTextMode::FullText, TokenizerConfig::default());
    let pool: Vec<EncodedGraph> = graphs
        .iter()
        .map(|g| encode_graph(g, &tok, NodeTextMode::FullText))
        .collect();

    let task_of = |i: usize| i / per_task;
    let mut specs = Vec::new();
    for a in 0..pool.len() {
        for b in 0..pool.len() {
            if a != b && task_of(a) == task_of(b) {
                specs.push(PairSpec { a, b, label: 1.0 });
            } else if a != b && (a + b) % 3 == 0 {
                specs.push(PairSpec { a, b, label: 0.0 });
            }
        }
    }
    // anchor-grouped layout works for every objective (BCE reshuffles pairs
    // anyway), so all three train on the identical pair sequence
    let specs = group_pairs_by_anchor(&specs, batch_size, 7);
    let pairs: Vec<PairExample> = specs
        .iter()
        .map(|p| PairExample {
            a: p.a,
            b: p.b,
            label: p.label,
        })
        .collect();
    (
        PairSet {
            graphs: pool,
            pairs,
        },
        tok.vocab_size(),
    )
}

fn bench_batch_size(c: &mut Criterion, n_tasks: usize, per_task: usize, batch_size: usize) {
    let (data, vocab) = build_pairset(n_tasks, per_task, batch_size);
    let mut rng = StdRng::seed_from_u64(1);
    let model = GraphBinMatch::new(GraphBinMatchConfig::tiny(vocab), &mut rng);
    let snapshot = model.store.snapshot();

    let mut g = c.benchmark_group(format!("train_step_b{batch_size}"));
    g.sample_size(10);
    for objective in [
        TrainObjective::PairwiseBce,
        TrainObjective::triplet(),
        TrainObjective::info_nce(),
    ] {
        let cfg = TrainConfig {
            lr: 5e-3,
            epochs: 1,
            batch_size,
            grad_clip: 5.0,
            seed: 3,
            objective,
        };
        g.bench_function(objective.name(), |b| {
            b.iter(|| {
                model.store.restore(&snapshot);
                black_box(train(&model, &data, &cfg, |_, _| {}))
            })
        });
    }
    g.finish();
}

fn bench_train_step(c: &mut Criterion) {
    if quick_mode() {
        bench_batch_size(c, 4, 3, 8);
    } else {
        bench_batch_size(c, 6, 4, 8);
        bench_batch_size(c, 6, 4, 16);
    }
}

criterion_group!(benches, bench_train_step);
criterion_main!(benches);
