//! Encode-per-pair vs encode-once-then-head: the speedup the encoder/head
//! split buys. `naive_score_per_pair` runs the full GNN encoder twice per
//! pair (the pre-split inference path); `store_build_plus_head` amortizes
//! one encoder forward per unique graph and scores pairs through the cheap
//! comparison head; `head_only_on_cached` shows the marginal cost per pair
//! once embeddings exist (the serving steady state).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gbm_frontends::{compile, SourceLang};
use gbm_nn::{
    encode_graph, EmbeddingStore, EncodedGraph, GraphBinMatch, GraphBinMatchConfig, PairExample,
};
use gbm_progml::{build_graph, NodeTextMode};
use gbm_tokenizer::{Tokenizer, TokenizerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// 8 graphs, all-vs-all pairs (56): typical eval-split shape in miniature.
fn setup() -> (GraphBinMatch, Vec<EncodedGraph>, Vec<PairExample>) {
    let sources: Vec<String> = (0..8)
        .map(|k| {
            format!(
                "int f(int n) {{ int s = {k}; for (int i = 0; i < n; i++) {{ s += i * {}; }} return s; }}
                 int main() {{ print(f({})); return 0; }}",
                k + 1,
                k + 10
            )
        })
        .collect();
    let graphs: Vec<gbm_progml::ProgramGraph> = sources
        .iter()
        .map(|s| build_graph(&compile(SourceLang::MiniC, "t", s).unwrap()))
        .collect();
    let refs: Vec<&gbm_progml::ProgramGraph> = graphs.iter().collect();
    let tok = Tokenizer::train_on_graphs(&refs, NodeTextMode::FullText, TokenizerConfig::default());
    let pool: Vec<EncodedGraph> = graphs
        .iter()
        .map(|g| encode_graph(g, &tok, NodeTextMode::FullText))
        .collect();
    let mut pairs = Vec::new();
    for a in 0..pool.len() {
        for b in 0..pool.len() {
            if a != b {
                pairs.push(PairExample {
                    a,
                    b,
                    label: (a % 2 == b % 2) as u8 as f32,
                });
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(1);
    let model = GraphBinMatch::new(GraphBinMatchConfig::small(tok.vocab_size()), &mut rng);
    (model, pool, pairs)
}

fn bench_encode_cache(c: &mut Criterion) {
    let (model, pool, pairs) = setup();
    let mut g = c.benchmark_group("encode_cache");
    g.sample_size(10);

    g.bench_function("naive_score_per_pair", |b| {
        b.iter(|| {
            let scores: Vec<f32> = pairs
                .iter()
                .map(|p| model.score(&pool[p.a], &pool[p.b]))
                .collect();
            black_box(scores)
        })
    });

    g.bench_function("store_build_plus_head", |b| {
        b.iter(|| {
            let store = EmbeddingStore::build(&model, &pool);
            black_box(store.score_pairs(&model, &pairs))
        })
    });

    let store = EmbeddingStore::build(&model, &pool);
    g.bench_function("head_only_on_cached", |b| {
        b.iter(|| black_box(store.score_pairs(&model, &pairs)))
    });

    g.finish();
}

criterion_group!(benches, bench_encode_cache);
criterion_main!(benches);
