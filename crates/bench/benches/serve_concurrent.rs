//! Concurrent serving front-end: the scan-worker fan-out vs thread count,
//! with tail-latency (p50/p99) rows for the regression gate.
//!
//! Every variant answers the same Q top-K queries against the same
//! synthetic unit-norm pool through a [`gbm_serve::Server`] — the real
//! pipeline: channel fan-out to shard-pinned scan workers, per-worker
//! blocked top-K partials, caller-side k-way merge:
//!
//! * `scan_tT` — Q queries through a server with T scan workers
//!   (T ∈ {1, 2, 4}). On a multi-core host `scan_t2`/`scan_t4` shows the
//!   parallel fan-out win; on a 1-core host (the CI container) it measures
//!   that the fan-out machinery does not *cost* throughput. The gate is on
//!   the `scan_t1 / scan_tT` ratio against the recorded baseline either
//!   way, so a serialization bug (e.g. a write lock held across scans)
//!   fails the gate on any host.
//! * `p50_tT` / `p99_tT` — per-query latency quantiles over `SAMPLES`
//!   single queries against the T-worker server, measured with
//!   [`LatencyHistogram`] and printed in criterion row format so
//!   `check_bench_regression.py` can parse them. Gated two ways: the
//!   `tail_tT = p50/p99` ratio against baseline (a p99 blowing up relative
//!   to p50 is the tail-latency regression signature even on a noisy
//!   host), and an absolute p99 ceiling recorded in the baseline's meta.
//!
//! **Correctness before speed**: the bench asserts the concurrent fan-out
//! answer is exactly — ids, scores, tie order — the single-threaded
//! [`ShardedIndex::query`] answer, for every worker count and both
//! [`ScanPrecision`] modes, before any timing begins.
//!
//! Scale: `GBM_BENCH_SCALE=quick` uses a 4096×64 pool (CI smoke), default
//! 16384×128. Baselines live in `BENCH_serve_concurrent.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use gbm_bench::LatencyHistogram;
use gbm_serve::{IndexConfig, ScanPrecision, Server, ServerConfig, ShardedIndex, VirtualClock};

const K: usize = 10;
const SHARDS: usize = 8;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn quick_mode() -> bool {
    matches!(std::env::var("GBM_BENCH_SCALE").as_deref(), Ok("quick"))
}

fn mk_server(rows: &[f32], hidden: usize, precision: ScanPrecision, workers: usize) -> Server {
    Server::from_rows(
        rows,
        hidden,
        ServerConfig {
            scan_workers: workers,
            index: IndexConfig {
                num_shards: SHARDS,
                encode_batch: 8,
                precision,
                ..Default::default()
            },
            ..Default::default()
        },
        Arc::new(VirtualClock::new()),
    )
}

fn bench_concurrent(
    c: &mut Criterion,
    label: &str,
    rows_n: usize,
    hidden: usize,
    num_queries: usize,
    samples: usize,
) {
    let rows = gbm_bench::synth_unit_rows(rows_n, hidden, 42);
    let queries: Vec<Vec<f32>> = (0..num_queries)
        .map(|i| gbm_bench::synth_unit_rows(1, hidden, 900 + i as u64))
        .collect();

    // correctness gate before timing: for every worker count and both scan
    // precisions, the fanned-out concurrent answer must be exactly the
    // single-threaded ShardedIndex::query answer — ids, scores, tie order
    for precision in [ScanPrecision::F32, ScanPrecision::Int8 { widen: 4 }] {
        let reference = ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: SHARDS,
                encode_batch: 8,
                precision,
                ..Default::default()
            },
        );
        for &workers in &WORKER_COUNTS {
            let server = mk_server(&rows, hidden, precision, workers);
            for q in &queries {
                assert_eq!(
                    server.query(q, K),
                    reference.query(q, K),
                    "workers={workers} precision={precision:?}: concurrent \
                     fan-out must reproduce the single-threaded ranking"
                );
            }
        }
    }

    let group_name = format!("serve_concurrent_{label}");
    let servers: Vec<(usize, Server)> = WORKER_COUNTS
        .iter()
        .map(|&w| (w, mk_server(&rows, hidden, ScanPrecision::F32, w)))
        .collect();

    let mut g = c.benchmark_group(&group_name);
    g.sample_size(10);
    for (w, server) in &servers {
        g.bench_function(format!("scan_t{w}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(server.query(q, K));
                }
            })
        });
    }
    g.finish();

    // tail-latency rows: per-query latency over `samples` single queries,
    // printed in criterion row format so the regression checker's one
    // parser reads both kinds of rows
    for (w, server) in &servers {
        // warm the fan-out path so the first samples don't carry cold-start
        // stalls (thread wakeup, faulted-out pages) into the p99
        for q in queries.iter().take(8) {
            black_box(server.query(q, K));
        }
        // best-of-3 sampling passes, keyed on p99: a single scheduler blip
        // on a shared host inflates one pass's tail, not all three — the
        // kept pass reflects the server, the rejected ones the host
        let hist = (0..3)
            .map(|_| {
                let mut h = LatencyHistogram::new();
                for s in 0..samples {
                    let q = &queries[s % queries.len()];
                    let t0 = Instant::now();
                    black_box(server.query(q, K));
                    h.record(t0.elapsed().as_nanos() as u64);
                }
                h
            })
            .min_by_key(LatencyHistogram::p99)
            .expect("three passes ran");
        for (stat, v) in [("p50", hist.p50()), ("p99", hist.p99())] {
            println!(
                "{:<48} time: {:.3} ms/iter ({} iters)",
                format!("{group_name}/{stat}_t{w}"),
                v as f64 / 1e6,
                samples
            );
        }
    }
}

fn bench_serve_concurrent(c: &mut Criterion) {
    if quick_mode() {
        bench_concurrent(c, "4k_h64", 4096, 64, 8, 100);
    } else {
        bench_concurrent(c, "16k_h128", 16384, 128, 16, 200);
    }
}

criterion_group!(benches, bench_serve_concurrent);
criterion_main!(benches);
