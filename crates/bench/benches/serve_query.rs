//! Serving-path query latency: coalesced batch encode + sharded top-K scan
//! vs the unbatched per-query encode + scan baselines.
//!
//! Every variant answers the same Q "unknown binary" queries against the
//! same pre-encoded candidate pool, end to end (query-graph encode
//! included — candidates are pre-encoded in both paths, as any serving
//! system would have them):
//!
//! * `per_query_head_scan` — the repo's pre-serve *default* retrieval path
//!   (`rank_candidates` under `RankBy::Head`, the shape
//!   `examples/binary_search.rs` ships): one model replica + one encoder
//!   forward per query, then a match-head score for **every** candidate
//!   (each ~hidden² flops on its own tape) and a full sort. This is the
//!   path the serving layer retires — the head leaves the hot loop.
//! * `per_query_cosine_scan` — the strongest unbatched baseline
//!   (contrastively-trained models, `RankBy::Cosine`): per-query replica +
//!   encode, then materialize every candidate's cosine and fully sort.
//! * `serve_bB_sS` — the `gbm-serve` path: queries coalesce through an
//!   `EncodeCoalescer` (batch B, one disjoint-union forward per flush) and
//!   each embedding answers through a `ShardedIndex` over S shards
//!   (blocked per-shard top-K partial select + k-way merge). Identical
//!   rankings to `per_query_cosine_scan`'s top-K (asserted before timing).
//! * `serve_rerank_b8_sS` — the same, plus a match-head re-rank of the
//!   merged top-K (the retrieve-then-rerank shape for BCE-trained models):
//!   K head evaluations per query instead of pool-size many.
//! * `serve_q8_b8_s4` — the serve path with `ScanPrecision::Int8`: int8
//!   coarse scan + exact f32 re-rank of the error-margin-widened
//!   candidates. On this pool of near-duplicate MiniC programs (cosines
//!   packed tighter than the int8 resolution) the margin admits most rows,
//!   so this entry documents the *degenerate* regime — correctness kept,
//!   speed ≈ f32. Informational, not gated.
//! * `scan_f32` / `scan_i8_w4` (own `serve_query_scan*` group) — the scan
//!   kernels isolated, over a synthetic spread pool at serving scale
//!   (`ShardedIndex::from_rows`, unit-norm rows, 16384×128 full /
//!   4096×64 quick) where the f32 scan is memory-bound and the margin
//!   zone is a handful of rows. *This* pair carries the quantization
//!   acceptance gate: `f32_vs_i8_scan` ≥ 1.5×, checked against
//!   `BENCH_serve_query.json` like the other ratios. Rankings are
//!   asserted identical before timing.
//! * `scan_ivf` (`serve_query_scan_clus*` groups) — a *clustered*
//!   synthetic pool (64 centers; the distribution real embedding pools
//!   have — uniform random vectors are IVF's provably hostile regime,
//!   documented by probe_quant's spread-pool sweep) behind
//!   `ScanPrecision::Ivf { nprobe: 4, widen: 4 }` (auto ≈√rows cells per
//!   shard): probe the 4 nearest cells over the int8 mirror, exact-f32
//!   re-rank the widened survivors. Approximate by contract, so instead
//!   of rank identity the bench asserts recall@10 ≥ 0.95 against the f32
//!   ranking before timing and prints the measured recall
//!   (`<group>/recall_ivf: …`) for `check_bench_regression.py`, which
//!   gates `i8_vs_ivf_scan` (the sub-linear win over the full int8 scan
//!   on the same pool) and both floors.
//!
//! * `server_metrics_on` / `server_metrics_off` (`serve_query_obs_*`
//!   groups) — the concurrent [`Server`] query fan-out over the spread
//!   pool with the `gbm-obs` registry enabled (tracing off — the shipped
//!   default) vs instrumented out (`ObsConfig { metrics: false }`, every
//!   record site a dead `if let` branch). `check_bench_regression.py`
//!   gates `on/off ≤ meta.metrics_overhead.max_ratio` (3%) — the
//!   "metrics are free enough to leave on" contract.
//!
//! Scale: `GBM_BENCH_SCALE=quick` runs the CI smoke subset (128-graph
//! pool); the default covers the 1024-graph pool of the acceptance
//! criterion. Baselines live in `BENCH_serve_query.json`;
//! `scripts/check_bench_regression.py --bench serve_query` gates the
//! speedup ratios (head baseline vs reranked serve, cosine baseline vs
//! cosine serve, f32 scan vs int8 scan) plus the metrics-overhead
//! ceiling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use gbm_nn::{EmbeddingStore, EncodedGraph, GraphBinMatch, GraphBinMatchConfig};
use gbm_serve::{
    CoalescerConfig, EncodeCoalescer, IndexConfig, ObsConfig, ScanPrecision, Server, ServerConfig,
    ShardedIndex, VirtualClock,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_mode() -> bool {
    matches!(std::env::var("GBM_BENCH_SCALE").as_deref(), Ok("quick"))
}

/// The cosine baseline's scan: every candidate scored, full sort, truncate.
fn full_cosine_top_k(store: &EmbeddingStore, query: &[f32], k: usize) -> Vec<(usize, f32)> {
    let mut scores: Vec<(usize, f32)> = (0..store.len())
        .map(|c| {
            let e = store.embedding(c).data();
            (c, e.iter().zip(query.iter()).map(|(x, y)| x * y).sum())
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scores.truncate(k);
    scores
}

/// The head baseline's scan: the `rank_candidates` `RankBy::Head` shape —
/// one match-head forward per candidate, full sort, truncate.
fn full_head_top_k(
    model: &GraphBinMatch,
    store: &EmbeddingStore,
    query: &gbm_tensor::Tensor,
    k: usize,
) -> Vec<(usize, f32)> {
    let mut scores: Vec<(usize, f32)> = (0..store.len())
        .map(|c| (c, model.head().score_embeddings(query, store.embedding(c))))
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scores.truncate(k);
    scores
}

/// Runs all Q queries through the serve path once; `rerank` re-scores the
/// merged top-K through the match head (retrieve-then-rerank).
fn serve_queries(
    model: &GraphBinMatch,
    index: &ShardedIndex,
    queries: &[EncodedGraph],
    batch: usize,
    k: usize,
    rerank: bool,
) -> Vec<Vec<(u64, f32)>> {
    let clock = VirtualClock::new();
    let mut coalescer = EncodeCoalescer::new(CoalescerConfig {
        max_batch: batch,
        max_wait: 1,
    });
    let tickets: Vec<_> = queries
        .iter()
        .map(|g| coalescer.submit(model, g.clone(), &clock))
        .collect();
    coalescer.flush(model); // drain the sub-batch remainder
    tickets
        .into_iter()
        .map(|t| {
            let emb = coalescer.poll(t).expect("flushed");
            let mut top = index.query(emb.data(), k);
            if rerank {
                for (id, score) in top.iter_mut() {
                    let ce = index.embedding(*id).expect("ranked id is indexed");
                    *score = model.head().score_embeddings(&emb, &ce);
                }
                top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            }
            top
        })
        .collect()
}

fn bench_pool(c: &mut Criterion, label: &str, pool_size: usize, num_queries: usize) {
    const K: usize = 10;
    let (tok, all) = gbm_bench::minic_pool(pool_size + num_queries);
    let (candidates, queries) = all.split_at(pool_size);
    let queries = queries.to_vec();
    let mut rng = StdRng::seed_from_u64(7);
    let model = GraphBinMatch::new(GraphBinMatchConfig::tiny(tok.vocab_size()), &mut rng);
    let store = EmbeddingStore::build(&model, candidates);

    let shard_counts: &[usize] = if quick_mode() { &[4] } else { &[1, 4, 8] };
    let extra_batches: &[usize] = if quick_mode() { &[] } else { &[16, 32] };
    let indexes: Vec<(usize, ShardedIndex)> = shard_counts
        .iter()
        .map(|&s| {
            (
                s,
                ShardedIndex::build(
                    &model,
                    candidates,
                    IndexConfig {
                        num_shards: s,
                        encode_batch: 8,
                        ..Default::default()
                    },
                ),
            )
        })
        .collect();

    // correctness gate before timing: the serve path must rank exactly like
    // the monolithic cosine scan
    for (s, index) in &indexes {
        let served = serve_queries(&model, index, &queries[..1], 8, K, false);
        let emb = model.replica().encoder().embed(&queries[0]);
        let scanned = full_cosine_top_k(&store, emb.data(), K);
        let served: Vec<(usize, f32)> = served[0].iter().map(|&(id, x)| (id as usize, x)).collect();
        assert_eq!(
            served, scanned,
            "shards={s}: serve path must rank identically"
        );
    }

    let mut g = c.benchmark_group(format!("serve_query_{label}"));
    g.sample_size(10);

    g.bench_function("per_query_head_scan", |b| {
        b.iter(|| {
            let rankings: Vec<Vec<(usize, f32)>> = queries
                .iter()
                .map(|qg| {
                    let replica = model.replica();
                    let emb = replica.encoder().embed(qg);
                    full_head_top_k(&replica, &store, &emb, K)
                })
                .collect();
            black_box(rankings)
        })
    });

    g.bench_function("per_query_cosine_scan", |b| {
        b.iter(|| {
            let rankings: Vec<Vec<(usize, f32)>> = queries
                .iter()
                .map(|qg| {
                    let replica = model.replica();
                    let emb = replica.encoder().embed(qg);
                    full_cosine_top_k(&store, emb.data(), K)
                })
                .collect();
            black_box(rankings)
        })
    });

    for &(s, ref index) in &indexes {
        g.bench_function(format!("serve_b8_s{s}"), |b| {
            b.iter(|| black_box(serve_queries(&model, index, &queries, 8, K, false)))
        });
        g.bench_function(format!("serve_rerank_b8_s{s}"), |b| {
            b.iter(|| black_box(serve_queries(&model, index, &queries, 8, K, true)))
        });
    }
    if let Some((_, index4)) = indexes.iter().find(|(s, _)| *s == 4).or(indexes.first()) {
        for &bsz in extra_batches {
            g.bench_function(format!("serve_b{bsz}_s4"), |b| {
                b.iter(|| black_box(serve_queries(&model, index4, &queries, bsz, K, false)))
            });
        }
    }

    // the quantized serve path on this pool: near-duplicate programs are
    // the margin's degenerate regime (most rows stay candidates), so this
    // entry documents correctness-preserving degradation, not a win — the
    // gated quantization speedup lives in the `scan` group below
    let q8_index = ShardedIndex::build(
        &model,
        candidates,
        IndexConfig {
            num_shards: 4,
            encode_batch: 8,
            precision: ScanPrecision::Int8 { widen: 4 },
            ..Default::default()
        },
    );
    {
        let served = serve_queries(&model, &q8_index, &queries[..1], 8, K, false);
        let emb = model.replica().encoder().embed(&queries[0]);
        let scanned = full_cosine_top_k(&store, emb.data(), K);
        let served: Vec<(usize, f32)> = served[0].iter().map(|&(id, x)| (id as usize, x)).collect();
        assert_eq!(served, scanned, "int8 serve path must rank identically");
    }
    g.bench_function("serve_q8_b8_s4", |b| {
        b.iter(|| black_box(serve_queries(&model, &q8_index, &queries, 8, K, false)))
    });

    g.finish();
}

/// The isolated scan comparison: identical `ShardedIndex::query` calls over
/// the same rows, one index scanning f32, one scanning int8 codes with the
/// exact re-rank — plus, when `gate_ivf` is set, the IVF approximate scan
/// with its recall-floor contract. The spread pool (random unit vectors)
/// carries the exact-scan gates: the margin zone is small and the int8
/// path's 4×-smaller scan footprint pays off, but uniform vectors have no
/// cluster structure for IVF to exploit (see probe_quant's sweep), so the
/// IVF gate runs on the clustered pool instead.
fn bench_scan(
    c: &mut Criterion,
    label: &str,
    rows: Vec<f32>,
    queries: Vec<Vec<f32>>,
    hidden: usize,
    gate_ivf: bool,
) {
    const K: usize = 10;
    let mk = |precision| {
        ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: 4,
                encode_batch: 8,
                precision,
                ..Default::default()
            },
        )
    };
    let f32_index = mk(ScanPrecision::F32);
    let i8_indexes: Vec<(usize, ShardedIndex)> = [1usize, 4]
        .iter()
        .map(|&w| (w, mk(ScanPrecision::Int8 { widen: w })))
        .collect();

    // correctness gate before timing: int8 must rank exactly like f32,
    // at every widen factor (the margin, not the floor, carries exactness)
    for q in &queries {
        let expect = f32_index.query(q, K);
        for (w, idx) in &i8_indexes {
            assert_eq!(
                idx.query(q, K),
                expect,
                "widen={w}: int8 scan must reproduce the f32 ranking exactly"
            );
        }
    }

    // the shipped approximate config: probe the 4 nearest of the ~√rows
    // auto cells per shard, exact-re-rank the widened survivors. Its
    // contract is a recall floor, not rank identity: asserted here so a
    // recall regression fails the bench outright, and printed in a form
    // check_bench_regression.py re-checks against the baseline floor
    let group = format!("serve_query_scan_{label}");
    let ivf_index = gate_ivf.then(|| {
        mk(ScanPrecision::Ivf {
            nprobe: 4,
            widen: 4,
        })
    });
    if let Some(ivf_index) = &ivf_index {
        let mut recall_sum = 0.0f64;
        for q in &queries {
            let exact = f32_index.query(q, K);
            let approx = ivf_index.query(q, K);
            let hits = exact
                .iter()
                .filter(|(id, _)| approx.iter().any(|(a, _)| a == id))
                .count();
            recall_sum += hits as f64 / exact.len() as f64;
        }
        let recall = recall_sum / queries.len() as f64;
        assert!(
            recall >= 0.95,
            "IVF recall@{K} {recall:.3} fell below the 0.95 floor"
        );
        println!("{group}/recall_ivf: {recall:.4}");
    }

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("scan_f32", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(f32_index.query(q, K));
            }
        })
    });
    for (w, idx) in &i8_indexes {
        g.bench_function(format!("scan_i8_w{w}"), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(idx.query(q, K));
                }
            })
        });
    }
    if let Some(ivf_index) = &ivf_index {
        g.bench_function("scan_ivf", |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(ivf_index.query(q, K));
                }
            })
        });
    }
    g.finish();
}

/// The metrics-overhead pair: the same concurrent [`Server`] query sweep
/// with the `gbm-obs` registry enabled (tracing off — the shipped default
/// `ObsConfig`) vs instrumented out (`metrics: false`, which leaves every
/// record site a dead `if let` branch). Identical rankings are asserted
/// before timing; `check_bench_regression.py` gates the on/off time ratio
/// against `meta.metrics_overhead.max_ratio` in `BENCH_serve_query.json`.
///
/// Measured outside criterion as *interleaved adjacent sweeps* (on, off,
/// on, off, …) with per-side medians, printed in the harness's row format.
/// Two separate measurement windows seconds apart would let host load
/// drift land asymmetrically on one side and swamp a 3% ceiling on a
/// shared CI box; interleaving puts any slowdown on both sides of each
/// round, so it cancels in the ratio the gate checks, and the median
/// discards transient spikes entirely.
fn bench_metrics_overhead(label: &str, rows: &[f32], queries: &[Vec<f32>], hidden: usize) {
    const K: usize = 10;
    let mk = |metrics: bool| {
        Server::from_rows(
            rows,
            hidden,
            ServerConfig {
                scan_workers: 2,
                index: IndexConfig {
                    num_shards: 4,
                    encode_batch: 8,
                    ..Default::default()
                },
                obs: ObsConfig {
                    metrics,
                    trace_sample: 0,
                },
                ..Default::default()
            },
            Arc::new(VirtualClock::new()),
        )
    };
    let on = mk(true);
    let off = mk(false);
    for q in queries {
        assert_eq!(
            on.query(q, K),
            off.query(q, K),
            "instrumentation must not change rankings"
        );
    }

    const ROUNDS: usize = 30;
    let sweep = |server: &Server| {
        let t = std::time::Instant::now();
        for q in queries {
            black_box(server.query(q, K));
        }
        t.elapsed().as_nanos() as u64
    };
    for _ in 0..3 {
        sweep(&on);
        sweep(&off);
    }
    let mut on_ns = Vec::with_capacity(ROUNDS);
    let mut off_ns = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        on_ns.push(sweep(&on));
        off_ns.push(sweep(&off));
    }
    on_ns.sort_unstable();
    off_ns.sort_unstable();
    let median_ms = |ns: &[u64]| ns[ns.len() / 2] as f64 / 1e6;
    let group = format!("serve_query_obs_{label}");
    println!("== {group} ==");
    println!(
        "{group}/server_metrics_on          time: {:>10.3} ms/iter  ({ROUNDS} iters, interleaved median)",
        median_ms(&on_ns)
    );
    println!(
        "{group}/server_metrics_off         time: {:>10.3} ms/iter  ({ROUNDS} iters, interleaved median)",
        median_ms(&off_ns)
    );
    on.shutdown();
    off.shutdown();
}

/// The spread scan pool: `n` random unit rows plus out-of-pool queries.
fn spread_pool(n: usize, hidden: usize, num_queries: usize) -> (Vec<f32>, Vec<Vec<f32>>) {
    let rows = gbm_bench::synth_unit_rows(n, hidden, 42);
    let queries = (0..num_queries)
        .map(|i| gbm_bench::synth_unit_rows(1, hidden, 1000 + i as u64))
        .collect();
    (rows, queries)
}

/// The clustered scan pool: 64 cluster centers, in-distribution queries
/// split off the tail (same generator, not pool members).
fn clustered_pool(n: usize, hidden: usize, num_queries: usize) -> (Vec<f32>, Vec<Vec<f32>>) {
    let all = gbm_bench::synth_clustered_rows(n + num_queries, hidden, 64, 42);
    let (rows, tail) = all.split_at(n * hidden);
    let queries = tail.chunks_exact(hidden).map(<[f32]>::to_vec).collect();
    (rows.to_vec(), queries)
}

fn bench_serve_query(c: &mut Criterion) {
    if quick_mode() {
        bench_pool(c, "tiny_128", 128, 16);
        let (rows, queries) = spread_pool(4096, 64, 8);
        bench_metrics_overhead("4k_h64", &rows, &queries, 64);
        bench_scan(c, "4k_h64", rows, queries, 64, false);
        let (rows, queries) = clustered_pool(4096, 64, 8);
        bench_scan(c, "clus4k_h64", rows, queries, 64, true);
    } else {
        bench_pool(c, "tiny_1k", 1024, 32);
        let (rows, queries) = spread_pool(16384, 128, 16);
        bench_metrics_overhead("16k_h128", &rows, &queries, 128);
        bench_scan(c, "16k_h128", rows, queries, 128, false);
        let (rows, queries) = clustered_pool(16384, 128, 16);
        bench_scan(c, "clus16k_h128", rows, queries, 128, true);
    }
}

criterion_group!(benches, bench_serve_query);
criterion_main!(benches);
