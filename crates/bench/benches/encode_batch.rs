//! Per-graph vs disjoint-union batched pool encoding.
//!
//! Three baselines, worst to best:
//!
//! * `per_graph_replica` — the PR 1 `EmbeddingStore` path: snapshot/restore
//!   a whole model replica per worker unit, then one full encoder forward
//!   per graph. This is the reference the acceptance ratio compares
//!   against.
//! * `per_graph` — one shared model, one encoder forward per graph,
//!   sequential: the strongest possible unbatched baseline (no replica
//!   cost), isolating the pure batching win.
//! * `batched_bN` — N graphs per [`GraphBatch`], one forward per chunk,
//!   also sequential, so the ratio excludes thread-level parallelism.
//!
//! `store_build` is the production [`EmbeddingStore::build`] (rayon across
//! batches — identical to `batched_b8` plus one replica per chunk on a
//! single-core runner).
//!
//! Scale: `GBM_BENCH_SCALE=quick` runs the CI smoke subset (tiny/small
//! configs, fewer batch sizes); the default also covers the paper-scale
//! 128/256×5 configuration. Baseline numbers live in
//! `BENCH_encode_batch.json` at the repo root; `scripts/check_bench_regression.py`
//! compares a fresh run's batched/per-graph speedups against them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gbm_frontends::{compile, SourceLang};
use gbm_nn::{encode_graph, EmbeddingStore, EncodedGraph, GraphBinMatch, GraphBinMatchConfig};
use gbm_progml::{build_graph, NodeTextMode};
use gbm_tokenizer::{Tokenizer, TokenizerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_mode() -> bool {
    matches!(std::env::var("GBM_BENCH_SCALE").as_deref(), Ok("quick"))
}

/// A pool of MiniC programs with deliberately uneven graph sizes (straight
/// line, loops, nested loops) — the shape mix a real eval split has.
fn build_pool(n: usize) -> (Tokenizer, Vec<EncodedGraph>) {
    let sources: Vec<String> = (0..n)
        .map(|k| match k % 3 {
            0 => format!(
                "int main() {{ int s = {k} + 2; int t = s * 3; print(s + t); return 0; }}"
            ),
            1 => format!(
                "int f(int n) {{ int s = {k}; for (int i = 0; i < n; i++) {{ s += i * {}; }} return s; }}
                 int main() {{ print(f({})); return 0; }}",
                k + 1,
                k + 10
            ),
            _ => format!(
                "int main() {{ int s = 0; for (int i = 0; i < {}; i++) {{ for (int j = 0; j < i; j++) {{ s += i * j + {k}; }} }} print(s); return s; }}",
                k + 3
            ),
        })
        .collect();
    let graphs: Vec<gbm_progml::ProgramGraph> = sources
        .iter()
        .map(|s| build_graph(&compile(SourceLang::MiniC, "t", s).unwrap()))
        .collect();
    let refs: Vec<&gbm_progml::ProgramGraph> = graphs.iter().collect();
    let tok = Tokenizer::train_on_graphs(&refs, NodeTextMode::FullText, TokenizerConfig::default());
    let pool: Vec<EncodedGraph> = graphs
        .iter()
        .map(|g| encode_graph(g, &tok, NodeTextMode::FullText))
        .collect();
    (tok, pool)
}

fn model_for(name: &str, vocab: usize) -> GraphBinMatch {
    let cfg = match name {
        "tiny" => GraphBinMatchConfig::tiny(vocab),
        "small" => GraphBinMatchConfig::small(vocab),
        "paper" => GraphBinMatchConfig::paper(vocab),
        other => panic!("unknown config {other}"),
    };
    let mut rng = StdRng::seed_from_u64(1);
    GraphBinMatch::new(cfg, &mut rng)
}

fn bench_config(c: &mut Criterion, config: &str, pool_size: usize, batch_sizes: &[usize]) {
    let (tok, pool) = build_pool(pool_size);
    let model = model_for(config, tok.vocab_size());
    let mut g = c.benchmark_group(format!("encode_batch_{config}"));
    g.sample_size(10);

    // PR 1 store path: model replica snapshot/restore per worker unit, then
    // per-graph encoder forwards
    g.bench_function("per_graph_replica", |b| {
        b.iter(|| {
            let embs: Vec<_> = pool
                .iter()
                .map(|eg| {
                    let replica = model.replica();
                    replica.encoder().embed(eg)
                })
                .collect();
            black_box(embs)
        })
    });

    // strongest unbatched baseline: shared model, sequential forwards
    g.bench_function("per_graph", |b| {
        b.iter(|| {
            let embs: Vec<_> = pool.iter().map(|eg| model.encoder().embed(eg)).collect();
            black_box(embs)
        })
    });

    // batched path at several batch sizes, sequential over chunks
    for &bs in batch_sizes {
        g.bench_function(format!("batched_b{bs}"), |b| {
            b.iter(|| {
                let mut embs = Vec::with_capacity(pool.len());
                for chunk in pool.chunks(bs) {
                    let refs: Vec<&EncodedGraph> = chunk.iter().collect();
                    embs.extend(model.encoder().embed_batch(&refs));
                }
                black_box(embs)
            })
        });
    }

    // the production store build (rayon across batches)
    g.bench_function("store_build", |b| {
        b.iter(|| black_box(EmbeddingStore::build(&model, &pool)))
    });

    g.finish();
}

fn bench_encode_batch(c: &mut Criterion) {
    if quick_mode() {
        bench_config(c, "tiny", 8, &[4, 8]);
        bench_config(c, "small", 8, &[4, 8]);
    } else {
        bench_config(c, "tiny", 16, &[2, 4, 8, 16]);
        bench_config(c, "small", 16, &[2, 4, 8, 16]);
        bench_config(c, "paper", 8, &[4, 8]);
    }
}

criterion_group!(benches, bench_encode_batch);
criterion_main!(benches);
