//! Ablation benchmarks: runtime cost of the design choices DESIGN.md calls
//! out — hetero fusion mode, pooling kind, GNN depth, and [VAR] tokenizer
//! normalization. (Quality ablations print from the `ablation_study` binary;
//! these measure compute cost.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gbm_frontends::{compile, SourceLang};
use gbm_nn::{encode_graph, Fusion, GraphBinMatch, GraphBinMatchConfig, PoolKind};
use gbm_progml::{build_graph, NodeTextMode};
use gbm_tokenizer::{Tokenizer, TokenizerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SRC: &str = "
    class Main {
        static int f(int n) {
            int[] a = new int[n];
            for (int i = 0; i < n; i++) { a[i] = i * i % 17; }
            int s = 0;
            for (int i = 0; i < a.length; i++) { s += a[i]; }
            return s;
        }
        public static void main(String[] args) { System.out.println(f(20)); }
    }";

fn setup() -> (gbm_nn::EncodedGraph, Tokenizer) {
    let m = compile(SourceLang::MiniJava, "t", SRC).unwrap();
    let g = build_graph(&m);
    let tok = Tokenizer::train_on_graphs(&[&g], NodeTextMode::FullText, TokenizerConfig::default());
    (encode_graph(&g, &tok, NodeTextMode::FullText), tok)
}

fn bench_fusion(c: &mut Criterion) {
    let (eg, tok) = setup();
    let mut group = c.benchmark_group("ablation_fusion");
    group.sample_size(20);
    for (name, fusion) in [
        ("max", Fusion::Max),
        ("mean", Fusion::Mean),
        ("sum", Fusion::Sum),
    ] {
        let mut cfg = GraphBinMatchConfig::tiny(tok.vocab_size());
        cfg.fusion = fusion;
        let mut rng = StdRng::seed_from_u64(1);
        let model = GraphBinMatch::new(cfg, &mut rng);
        group.bench_function(name, |b| b.iter(|| black_box(model.score(&eg, &eg))));
    }
    group.finish();
}

fn bench_pooling(c: &mut Criterion) {
    let (eg, tok) = setup();
    let mut group = c.benchmark_group("ablation_pooling");
    group.sample_size(20);
    for (name, pooling) in [("attention", PoolKind::Attention), ("mean", PoolKind::Mean)] {
        let mut cfg = GraphBinMatchConfig::tiny(tok.vocab_size());
        cfg.pooling = pooling;
        let mut rng = StdRng::seed_from_u64(1);
        let model = GraphBinMatch::new(cfg, &mut rng);
        group.bench_function(name, |b| b.iter(|| black_box(model.score(&eg, &eg))));
    }
    group.finish();
}

fn bench_depth(c: &mut Criterion) {
    let (eg, tok) = setup();
    let mut group = c.benchmark_group("ablation_depth");
    group.sample_size(20);
    for layers in [1usize, 2, 3, 5] {
        let mut cfg = GraphBinMatchConfig::tiny(tok.vocab_size());
        cfg.num_layers = layers;
        let mut rng = StdRng::seed_from_u64(1);
        let model = GraphBinMatch::new(cfg, &mut rng);
        group.bench_function(format!("layers_{layers}"), |b| {
            b.iter(|| black_box(model.score(&eg, &eg)))
        });
    }
    group.finish();
}

fn bench_var_token(c: &mut Criterion) {
    let m = compile(SourceLang::MiniJava, "t", SRC).unwrap();
    let g = build_graph(&m);
    let mut group = c.benchmark_group("ablation_var_token");
    for (name, normalize) in [("var_normalized", true), ("raw_registers", false)] {
        let cfg = TokenizerConfig {
            normalize_vars: normalize,
            ..Default::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let tok = Tokenizer::train_on_graphs(black_box(&[&g]), NodeTextMode::FullText, cfg);
                encode_graph(&g, &tok, NodeTextMode::FullText).tokens.len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fusion,
    bench_pooling,
    bench_depth,
    bench_var_token
);
criterion_main!(benches);
