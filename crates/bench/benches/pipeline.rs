//! Criterion benchmarks over every pipeline stage: front-end lowering,
//! optimization, codegen + decompilation, graph construction, tokenization,
//! and GNN forward/backward. These measure the *substrate throughput* behind
//! the tables; the `table_*` binaries regenerate the tables themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gbm_binary::{compile_module, decompile::decompile, optimize, Compiler, OptLevel};
use gbm_frontends::{compile, SourceLang};
use gbm_nn::{encode_graph, GraphBinMatch, GraphBinMatchConfig};
use gbm_progml::{build_graph, NodeTextMode};
use gbm_tensor::Graph;
use gbm_tokenizer::{Tokenizer, TokenizerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const C_SRC: &str = "
    int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }
    int main() {
        int best = 0;
        for (int i = 1; i < 40; i++) {
            int g = gcd(i * 7 + 3, i * 5 + 2);
            if (g > best) { best = g; }
        }
        print(best);
        return best;
    }";

const JAVA_SRC: &str = "
    class Main {
        static int work(int n) {
            int[] a = new int[n];
            for (int i = 0; i < n; i++) { a[i] = (i * 13 + 5) % 23; }
            int s = 0;
            for (int i = 0; i < a.length; i++) { s += a[i]; }
            return s;
        }
        public static void main(String[] args) {
            System.out.println(work(25));
        }
    }";

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    g.bench_function("minic_compile", |b| {
        b.iter(|| compile(SourceLang::MiniC, "t", black_box(C_SRC)).unwrap())
    });
    g.bench_function("minijava_compile", |b| {
        b.iter(|| compile(SourceLang::MiniJava, "t", black_box(JAVA_SRC)).unwrap())
    });
    g.finish();
}

fn bench_opt(c: &mut Criterion) {
    let m = compile(SourceLang::MiniC, "t", C_SRC).unwrap();
    let mut g = c.benchmark_group("optimizer");
    for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Oz] {
        g.bench_function(level.name(), |b| {
            b.iter(|| {
                let mut mm = m.clone();
                optimize(&mut mm, level);
                black_box(mm.num_insts())
            })
        });
    }
    g.finish();
}

fn bench_binary(c: &mut Criterion) {
    let m = compile(SourceLang::MiniC, "t", C_SRC).unwrap();
    let mut g = c.benchmark_group("binary");
    for style in [Compiler::Clang, Compiler::Gcc] {
        g.bench_function(format!("codegen_{style}"), |b| {
            b.iter(|| compile_module(black_box(&m), style).unwrap())
        });
    }
    let obj = compile_module(&m, Compiler::Clang).unwrap();
    g.bench_function("object_roundtrip", |b| {
        b.iter(|| gbm_binary::ObjectFile::decode(&black_box(&obj).encode()).unwrap())
    });
    g.bench_function("decompile", |b| b.iter(|| decompile(black_box(&obj))));
    g.finish();
}

fn bench_graphs(c: &mut Criterion) {
    let cm = compile(SourceLang::MiniC, "t", C_SRC).unwrap();
    let jm = compile(SourceLang::MiniJava, "t", JAVA_SRC).unwrap();
    let mut g = c.benchmark_group("progml");
    g.bench_function("build_graph_c", |b| b.iter(|| build_graph(black_box(&cm))));
    g.bench_function("build_graph_java", |b| {
        b.iter(|| build_graph(black_box(&jm)))
    });
    g.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let jm = compile(SourceLang::MiniJava, "t", JAVA_SRC).unwrap();
    let graph = build_graph(&jm);
    let refs = [&graph];
    let mut g = c.benchmark_group("tokenizer");
    g.bench_function("train", |b| {
        b.iter(|| {
            Tokenizer::train_on_graphs(
                black_box(&refs),
                NodeTextMode::FullText,
                TokenizerConfig::default(),
            )
        })
    });
    let tok = Tokenizer::train_on_graphs(&refs, NodeTextMode::FullText, TokenizerConfig::default());
    g.bench_function("encode_graph", |b| {
        b.iter(|| encode_graph(black_box(&graph), &tok, NodeTextMode::FullText))
    });
    g.finish();
}

fn bench_model(c: &mut Criterion) {
    let cm = compile(SourceLang::MiniC, "t", C_SRC).unwrap();
    let jm = compile(SourceLang::MiniJava, "t", JAVA_SRC).unwrap();
    let cg = build_graph(&cm);
    let jg = build_graph(&jm);
    let tok = Tokenizer::train_on_graphs(
        &[&cg, &jg],
        NodeTextMode::FullText,
        TokenizerConfig::default(),
    );
    let ea = encode_graph(&cg, &tok, NodeTextMode::FullText);
    let eb = encode_graph(&jg, &tok, NodeTextMode::FullText);
    let mut rng = StdRng::seed_from_u64(1);
    let model = GraphBinMatch::new(GraphBinMatchConfig::small(tok.vocab_size()), &mut rng);

    let mut g = c.benchmark_group("gnn");
    g.sample_size(20);
    g.bench_function("forward_pair", |b| {
        b.iter(|| black_box(model.score(&ea, &eb)))
    });
    g.bench_function("forward_backward_pair", |b| {
        b.iter(|| {
            let tape = Graph::new();
            let logit = model.forward_pair(&tape, &ea, &eb, true, &mut rng);
            let loss =
                tape.bce_with_logits(logit, &gbm_tensor::Tensor::from_vec(vec![1.0], &[1, 1]));
            tape.backward(loss);
            model.store.zero_grad();
            black_box(tape.value(loss).item())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_frontend,
    bench_opt,
    bench_binary,
    bench_graphs,
    bench_tokenizer,
    bench_model
);
criterion_main!(benches);
