//! Property tests for the snapshot round trip: an arbitrary index imaged
//! through the *full byte-level pipeline* — `snapshot_index` →
//! `encode_snapshot` → `decode_snapshot` → `restore_index` — comes back
//! bit-identical (ids, rows, row order, int8 codes and scales) and
//! rank-identical (ids, scores, tie order) for every query, across shard
//! counts and scan precisions, including empty shards, an entirely empty
//! index, and `k` far beyond the pool size.

use proptest::prelude::*;

use gbm_serve::persist::{restore_index, snapshot_index};
use gbm_serve::{GraphId, IndexConfig, ScanPrecision, ShardedIndex};
use gbm_store::{decode_snapshot, encode_snapshot};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full byte round trip is the identity on the index, bit for bit
    /// and rank for rank.
    #[test]
    fn snapshot_byte_roundtrip_is_identity(
        num_shards in prop_oneof![Just(1usize), Just(2usize), Just(7usize)],
        widen in 0usize..5, // 0 → F32, 1..=3 → Int8 { widen }, 4 → Ivf
        hidden in 1usize..6,
        // ids drawn from a small space so collisions (replacements) and
        // removals actually hit, scrambling swap-fill row order
        ids in proptest::collection::vec(0u64..24, 0..40),
        seeds in proptest::collection::vec(-2.0f32..2.0, 40),
        removals in proptest::collection::vec(0u64..24, 0..8),
    ) {
        let precision = match widen {
            0 => ScanPrecision::F32,
            // these pools stay below the IVF training threshold, so the
            // Ivf scan falls back to the exact int8 path and stays
            // rank-identical through the round trip
            4 => ScanPrecision::Ivf { nprobe: 2, widen: 2 },
            w => ScanPrecision::Int8 { widen: w },
        };
        let cfg = IndexConfig {
            num_shards,
            encode_batch: 4,
            precision,
            ..Default::default()
        };
        let mut index = ShardedIndex::new(cfg);
        let mut query = vec![0.0f32; hidden];
        for (i, &id) in ids.iter().enumerate() {
            let row: Vec<f32> = (0..hidden)
                .map(|d| seeds[i] + d as f32 * 0.25 - i as f32 * 0.125)
                .collect();
            if i == 0 {
                query.copy_from_slice(&row);
            }
            index.insert_row(id as GraphId, &row);
        }
        for &id in &removals {
            index.remove(id as GraphId);
        }

        let data = snapshot_index(&index, 42, None, None);
        let bytes = encode_snapshot(&data);
        let decoded = decode_snapshot(&bytes).expect("own bytes decode");
        prop_assert_eq!(decoded.last_seq, 42);
        let restored = restore_index(&decoded).expect("own snapshot restores");

        // bit-identical storage, including row order (the ranking
        // tie-break) and the quantized mirror where one exists
        prop_assert_eq!(restored.hidden(), index.hidden());
        for s in 0..num_shards {
            prop_assert_eq!(restored.shard_ids(s), index.shard_ids(s));
            prop_assert_eq!(restored.shard_rows(s), index.shard_rows(s));
            // a live shard emptied by removals keeps a 0-row mirror; its
            // image (and rebuild) is "no mirror" — normalize both sides
            let (a, b) = (
                index.shard_quant(s).and_then(|q| q.matrix()).filter(|m| m.rows() > 0),
                restored.shard_quant(s).and_then(|q| q.matrix()).filter(|m| m.rows() > 0),
            );
            match (a, b) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.codes(), b.codes());
                    prop_assert_eq!(a.scales(), b.scales());
                }
                (None, None) => {}
                _ => prop_assert!(false, "quant mirror presence diverged"),
            }
        }

        // rank-identical queries, k below, at, and far beyond the pool
        // (a never-written index has width 0 and takes the empty query)
        let q = &query[..index.hidden()];
        let pool = index.num_encoded();
        for k in [1usize, pool.max(1), pool + 9] {
            prop_assert_eq!(restored.query(q, k), index.query(q, k));
        }
    }
}
