//! The v2 artifact acceptance suite: a [`ReadOnlyIndex`] serving straight
//! out of a mapped artifact answers **bit-identically** to the
//! [`ShardedIndex`] that published it — ids, scores, tie order, and scan
//! accounting — at F32 and Int8 across shard counts, and identically at
//! Ivf too (the artifact serializes the trained cell tables instead of
//! retraining). Plus: the publish/poll generation protocol, metrics, and
//! the degenerate-index round-trips through both the v1 snapshot and the
//! v2 artifact.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use gbm_serve::persist::{restore_index, snapshot_index};
use gbm_serve::{
    encode_index_artifact, publish_index_artifact, ArtifactConfig, ArtifactReader, IndexConfig,
    MapKind, MetricsRegistry, ReadOnlyIndex, ScanPrecision, ShardedIndex,
};

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random rows in `[-1, 1)`.
fn synth_matrix(n: usize, hidden: usize, mut state: u64) -> Vec<f32> {
    let mut rows = Vec::with_capacity(n * hidden);
    for _ in 0..n * hidden {
        state = splitmix64(state);
        rows.push((state % 2000) as f32 / 1000.0 - 1.0);
    }
    rows
}

/// `k` tight, well-separated clusters — the regime IVF trains well on.
fn clustered_matrix(n: usize, hidden: usize, k: usize, mut state: u64) -> Vec<f32> {
    let mut rows = Vec::with_capacity(n * hidden);
    for i in 0..n {
        let c = i % k;
        for d in 0..hidden {
            state = splitmix64(state);
            let jitter = (state % 1000) as f32 / 10_000.0 - 0.05;
            rows.push(if d % k == c { 3.0 + jitter } else { jitter });
        }
    }
    rows
}

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gbm-serve-artifact-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes `index`'s artifact to a scratch file and opens it both ways
/// (mmap-preferred and heap), returning the readers.
fn round_trip(index: &ShardedIndex, tag: &str) -> Vec<ReadOnlyIndex> {
    let dir = temp_dir(tag);
    let path = publish_index_artifact(index, &dir, 1).expect("publish");
    let mapped = ReadOnlyIndex::open(&path, true).expect("open mapped");
    let heap = ReadOnlyIndex::open(&path, false).expect("open heap");
    assert_eq!(heap.map_kind(), MapKind::Heap);
    assert!(!heap.fell_back(), "heap was asked for, not fallen back to");
    #[cfg(unix)]
    assert_eq!(mapped.map_kind(), MapKind::Mmap, "unix serves from a map");
    vec![mapped, heap]
}

/// Full-surface equality: `query`, `query_stats` (answers *and*
/// accounting), and every contiguous 2-way `query_shards` split.
fn assert_rank_identical(ro: &ReadOnlyIndex, index: &ShardedIndex, query: &[f32], ctx: &str) {
    assert_eq!(ro.num_encoded(), index.num_encoded(), "{ctx}");
    assert_eq!(ro.hidden(), index.hidden(), "{ctx}");
    assert_eq!(ro.scan_bytes(), index.scan_bytes(), "{ctx}");
    let shards = index.num_shards();
    for k in [1usize, 3, 10, index.num_encoded() + 5] {
        let (want, want_stats) = index.query_stats(query, k);
        let (got, got_stats) = ro.query_stats(query, k);
        assert_eq!(got, want, "{ctx} k={k}: mapped ranking must be identical");
        assert_eq!(got_stats, want_stats, "{ctx} k={k}: scan accounting too");
        for mid in 0..=shards {
            let partials = vec![
                ro.query_shards(0..mid, query, k),
                ro.query_shards(mid..shards, query, k),
            ];
            assert_eq!(
                gbm_tensor::merge_ranked(&partials, k),
                want,
                "{ctx} k={k} split={mid}: mapped partials merge to the answer"
            );
            // each half's partial — answer AND accounting — equals the
            // live index's partial for the same range (including the
            // all-empty-range early-out, which skips accounting)
            for range in [0..mid, mid..shards] {
                assert_eq!(
                    ro.query_shards_stats(range.clone(), query, k),
                    index.query_shards_stats(range.clone(), query, k),
                    "{ctx} k={k} range={range:?}: partial vs live partial"
                );
            }
        }
    }
}

/// The tentpole acceptance criterion: F32 and Int8, 1/2/7 shards, both map
/// kinds — every ranking, tie, score bit, and stats counter equal.
#[test]
fn mapped_rankings_bit_identical_at_exact_tiers() {
    let hidden = 8;
    let n = 120;
    let rows = synth_matrix(n, hidden, 42);
    let queries = [
        rows[..hidden].to_vec(),
        rows[57 * hidden..58 * hidden].to_vec(),
        synth_matrix(1, hidden, 999),
    ];
    for shards in [1usize, 2, 7] {
        for precision in [ScanPrecision::F32, ScanPrecision::Int8 { widen: 3 }] {
            let index = ShardedIndex::from_rows(
                &rows,
                hidden,
                IndexConfig {
                    num_shards: shards,
                    precision,
                    ..Default::default()
                },
            );
            for ro in round_trip(&index, "exact") {
                let cfg = ro.config();
                assert_eq!(cfg.num_shards, shards, "config round-trips");
                assert_eq!(cfg.precision, index.config().precision);
                assert_eq!(ro.last_seq(), 1);
                ro.verify().expect("payload checksums hold");
                for query in &queries {
                    assert_rank_identical(
                        &ro,
                        &index,
                        query,
                        &format!("shards={shards} precision={precision:?}"),
                    );
                }
            }
        }
    }
}

/// Ivf identity: the artifact serializes the *trained* cell tables, so the
/// approximate tier's candidate sets — and therefore its exact-re-ranked
/// answers — match the live index bit-for-bit, not just within recall.
#[test]
fn mapped_ivf_rankings_identical_because_cells_are_serialized() {
    let hidden = 16;
    let n = 3 * gbm_quant::IVF_MIN_TRAIN_ROWS;
    let rows = clustered_matrix(n, hidden, 8, 11);
    let index = ShardedIndex::from_rows(
        &rows,
        hidden,
        IndexConfig {
            num_shards: 2,
            precision: ScanPrecision::Ivf {
                nprobe: 2,
                widen: 4,
            },
            ..Default::default()
        },
    );
    for s in 0..2 {
        assert!(index.shard_ivf(s).unwrap().is_trained(), "pool trains");
    }
    for ro in round_trip(&index, "ivf") {
        for qi in [0usize, 3, 101] {
            let query = &rows[qi * hidden..(qi + 1) * hidden];
            assert_rank_identical(&ro, &index, query, &format!("ivf q={qi}"));
        }
    }
}

/// The generation protocol: readers open `CURRENT`, poll to newer
/// generations, and an in-flight `Arc` keeps answering from the old
/// mapping across a swap.
#[test]
fn reader_polls_generations_without_dropping_in_flight_queries() {
    let hidden = 6;
    let dir = temp_dir("poll");
    let rows1 = synth_matrix(40, hidden, 7);
    let rows2 = synth_matrix(80, hidden, 8);
    let cfg = IndexConfig {
        num_shards: 3,
        precision: ScanPrecision::Int8 { widen: 2 },
        ..Default::default()
    };
    let gen1 = ShardedIndex::from_rows(&rows1, hidden, cfg);
    let gen2 = ShardedIndex::from_rows(&rows2, hidden, cfg);
    let query = synth_matrix(1, hidden, 101);

    // nothing published yet: open refuses, the caller retries later
    assert!(ArtifactReader::open(ArtifactConfig::new(&dir)).is_err());

    publish_index_artifact(&gen1, &dir, 1).unwrap();
    let registry = MetricsRegistry::new();
    let reader = ArtifactReader::with_metrics(ArtifactConfig::new(&dir), Some(&registry)).unwrap();
    assert_eq!(reader.generation(), 1);
    let in_flight = reader.current();
    assert_eq!(in_flight.query(&query, 5), gen1.query(&query, 5));

    // no newer generation: poll is a cheap no-op
    assert!(!reader.poll().unwrap());
    assert_eq!(reader.generation(), 1);

    publish_index_artifact(&gen2, &dir, 2).unwrap();
    assert!(reader.poll().unwrap(), "newer CURRENT observed");
    assert_eq!(reader.generation(), 2);
    assert_eq!(reader.current().query(&query, 5), gen2.query(&query, 5));
    // the Arc held across the swap still serves generation 1
    assert_eq!(in_flight.last_seq(), 1);
    assert_eq!(in_flight.query(&query, 5), gen1.query(&query, 5));

    // a stale (same-or-lower-seq) CURRENT never swaps backwards
    publish_index_artifact(&gen1, &dir, 2).ok();
    assert!(!reader.poll().unwrap());

    let snap = registry.snapshot();
    assert_eq!(snap.counter(gbm_obs::names::ARTIFACT_MAPS), Some(2));
    assert_eq!(snap.counter(gbm_obs::names::ARTIFACT_REMAPS), Some(1));
    assert_eq!(snap.counter(gbm_obs::names::ARTIFACT_OPEN_ERRORS), Some(0));
    assert_eq!(
        snap.histogram(gbm_obs::names::ARTIFACT_COLD_LOAD_US)
            .map(|h| h.count()),
        Some(2),
        "both maps timed their cold load"
    );
}

/// A corrupted payload byte: parse (header+TOC) may pass, `verify` must
/// fail, and a fresh `ReadOnlyIndex::open` refuses it when the corruption
/// breaks structure — never a silent wrong ranking.
#[test]
fn corrupted_payload_is_caught_by_verify() {
    let hidden = 4;
    let rows = synth_matrix(30, hidden, 5);
    let index = ShardedIndex::from_rows(&rows, hidden, IndexConfig::default());
    let mut bytes = encode_index_artifact(&index, 9);
    let ro = ReadOnlyIndex::from_map(Box::new(gbm_artifact::HeapMap::from_bytes(&bytes)))
        .expect("clean bytes open");
    ro.verify().expect("clean bytes verify");
    assert_eq!(ro.last_seq(), 9);
    // flip one byte inside the first section's payload (a byte past the
    // end of the last section would sit in alignment padding no checksum
    // covers)
    let (_, sections) = gbm_artifact::ArtifactView::parse(&bytes)
        .expect("parse for section table")
        .into_parts();
    let target = sections[0].offset + 1;
    bytes[target] ^= 0x40;
    let ro = ReadOnlyIndex::from_map(Box::new(gbm_artifact::HeapMap::from_bytes(&bytes)));
    if let Ok(ro) = ro {
        ro.verify().expect_err("payload corruption must not verify");
    }
}

/// Degenerate indexes round-trip through BOTH persistence formats — the v1
/// snapshot and the v2 artifact — and keep answering exactly:
/// zero-row shards (more shards than rows), an all-shards-empty index, and
/// a shard sitting exactly at the IVF training threshold.
#[test]
fn degenerate_indexes_round_trip_both_formats() {
    let hidden = 8;

    // (a) 3 rows over 7 shards: most shards have zero rows
    let rows = synth_matrix(3, hidden, 31);
    for precision in [ScanPrecision::F32, ScanPrecision::Int8 { widen: 2 }] {
        let index = ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: 7,
                precision,
                ..Default::default()
            },
        );
        assert!(index.shard_sizes().contains(&0));
        let query = rows[..hidden].to_vec();
        let restored = restore_index(&snapshot_index(&index, 0, None, None)).expect("v1");
        assert_eq!(restored.query(&query, 10), index.query(&query, 10));
        for ro in round_trip(&index, "sparse") {
            assert_rank_identical(&ro, &index, &query, "zero-row shards");
        }
    }

    // (b) an all-shards-empty index (width pinned, no rows at all)
    let empty = ShardedIndex::from_rows(
        &[],
        hidden,
        IndexConfig {
            num_shards: 4,
            precision: ScanPrecision::Ivf {
                nprobe: 2,
                widen: 2,
            },
            ..Default::default()
        },
    );
    assert_eq!(empty.num_encoded(), 0);
    let restored = restore_index(&snapshot_index(&empty, 0, None, None)).expect("v1 empty");
    assert_eq!(restored.num_encoded(), 0);
    assert_eq!(restored.hidden(), hidden, "width survives emptiness");
    for ro in round_trip(&empty, "empty") {
        assert_eq!(ro.num_encoded(), 0);
        assert_eq!(ro.hidden(), hidden);
        assert_eq!(ro.query(&vec![0.5; hidden], 5), vec![]);
        assert_eq!(ro.scan_bytes(), 0);
    }

    // (c) exactly IVF_MIN_TRAIN_ROWS in one shard: the training boundary.
    // v1 retrains deterministically; v2 serves the serialized tables —
    // both must answer exactly like the original.
    let n = gbm_quant::IVF_MIN_TRAIN_ROWS;
    let rows = synth_matrix(n, hidden, 67);
    let index = ShardedIndex::from_rows(
        &rows,
        hidden,
        IndexConfig {
            num_shards: 1,
            precision: ScanPrecision::Ivf {
                nprobe: 3,
                widen: 4,
            },
            ..Default::default()
        },
    );
    assert!(
        index.shard_ivf(0).unwrap().is_trained(),
        "exactly at the threshold trains"
    );
    let query = rows[hidden..2 * hidden].to_vec();
    let restored = restore_index(&snapshot_index(&index, 0, None, None)).expect("v1 boundary");
    assert!(restored.shard_ivf(0).unwrap().is_trained());
    for k in [1usize, 10, n] {
        assert_eq!(restored.query(&query, k), index.query(&query, k));
    }
    for ro in round_trip(&index, "boundary") {
        assert_rank_identical(&ro, &index, &query, "IVF_MIN_TRAIN_ROWS boundary");
    }

    // (c′) one row *below* the threshold: untrained owned IVF serializes
    // no cell sections, and the mapped scan falls back to exact int8 —
    // still bit-identical
    let rows = synth_matrix(n - 1, hidden, 68);
    let index = ShardedIndex::from_rows(
        &rows,
        hidden,
        IndexConfig {
            num_shards: 1,
            precision: ScanPrecision::Ivf {
                nprobe: 3,
                widen: 4,
            },
            ..Default::default()
        },
    );
    assert!(!index.shard_ivf(0).unwrap().is_trained());
    for ro in round_trip(&index, "untrained") {
        assert_rank_identical(&ro, &index, &query, "below the training threshold");
    }
}
