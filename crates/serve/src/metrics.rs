//! Serving-layer observability state: the cached metric handles and the
//! shared [`ServerObs`] bundle threaded through the server's workers.
//!
//! [`ServeMetrics`] is the full handle set the hot path records through —
//! registered once at server start, then every event is a relaxed atomic
//! on a cached `Arc` (no name lookup, no lock). When metrics are disabled
//! ([`ObsConfig::metrics`] = false) the whole struct is simply absent
//! (`Option::None`), so the instrumented-out baseline pays one branch per
//! record site and touches no atomics — that's the bench baseline the CI
//! overhead gate compares against.

use std::sync::Arc;

use gbm_obs::{Clock, Counter, Gauge, Histogram, MetricsRegistry, ObsConfig, Tracer};

/// Every named metric the serving + durability stack records, as cached
/// lock-free handles. Names are dot-separated and stable — they are the
/// exposition contract (`probe_load --json`, `Server::metrics()`).
pub(crate) struct ServeMetrics {
    // -- query / scan path --
    /// `serve.queries`: top-K queries answered.
    pub queries: Arc<Counter>,
    /// `serve.scan.rows`: rows visited across all shard scans.
    pub scan_rows: Arc<Counter>,
    /// `serve.scan.cells_probed`: IVF cells probed (0 on exact tiers).
    pub scan_cells_probed: Arc<Counter>,
    /// `serve.scan.survivors`: margin-cut / re-rank candidates scored
    /// exactly against f32.
    pub scan_survivors: Arc<Counter>,
    /// `serve.scan.bytes`: bytes touched by scans (per the
    /// [`ScanStats`](crate::ScanStats) accounting model).
    pub scan_bytes: Arc<Counter>,
    /// `serve.query_us`: whole-query wall latency (fan-out to merged).
    pub query_us: Arc<Histogram>,
    /// `serve.merge_us`: k-way merge wall latency.
    pub merge_us: Arc<Histogram>,
    // -- failover / degradation --
    /// `serve.failover.inline_scans`: shard ranges scanned inline on the
    /// caller because their pinned worker is dead.
    pub failover_inline_scans: Arc<Counter>,
    /// `serve.workers.panics`: scan-worker panics caught and retired.
    pub worker_panics: Arc<Counter>,
    /// `serve.workers.degraded`: scan workers currently failed (gauge —
    /// recovers to 0 only across a restart).
    pub workers_degraded: Arc<Gauge>,
    // -- encode path --
    /// `serve.encode.flushes`: batched encoder forwards run.
    pub encode_flushes: Arc<Counter>,
    /// `serve.encode.graphs`: graphs encoded across all flushes.
    pub encode_graphs: Arc<Counter>,
    /// `serve.encode.forward_us`: batched forward wall latency.
    pub encode_forward_us: Arc<Histogram>,
    /// `serve.encode.batch_fill`: graphs per flush (the coalescing
    /// quality distribution).
    pub encode_batch_fill: Arc<Histogram>,
    /// `serve.encode.wait_ticks`: per-request coalescer wait, in clock
    /// ticks (enqueue to flush).
    pub encode_wait_ticks: Arc<Histogram>,
    // -- durability --
    /// `wal.appends`: WAL records appended (successful).
    pub wal_appends: Arc<Counter>,
    /// `wal.append_retries`: failed append attempts that were retried.
    pub wal_append_retries: Arc<Counter>,
    /// `wal.append_us`: cumulative-delta append latency per flush window.
    pub wal_append_us: Arc<Histogram>,
    /// `wal.sync_us`: cumulative-delta fsync latency per flush window.
    pub wal_sync_us: Arc<Histogram>,
    // -- recovery (seeded once, at durable start) --
    /// `recover.replayed_ops`: WAL ops replayed at recovery.
    pub recover_replayed_ops: Arc<Counter>,
    /// `recover.torn_bytes`: torn WAL tail bytes discarded at recovery.
    pub recover_torn_bytes: Arc<Counter>,
    /// `recover.replay_us`: wall time of the recovery WAL replay.
    pub recover_replay_us: Arc<Counter>,
}

impl ServeMetrics {
    /// Registers (or re-resolves) every serving metric in `reg` and caches
    /// the handles.
    pub fn register(reg: &MetricsRegistry) -> ServeMetrics {
        ServeMetrics {
            queries: reg.counter("serve.queries"),
            scan_rows: reg.counter("serve.scan.rows"),
            scan_cells_probed: reg.counter("serve.scan.cells_probed"),
            scan_survivors: reg.counter("serve.scan.survivors"),
            scan_bytes: reg.counter("serve.scan.bytes"),
            query_us: reg.histogram("serve.query_us"),
            merge_us: reg.histogram("serve.merge_us"),
            failover_inline_scans: reg.counter("serve.failover.inline_scans"),
            worker_panics: reg.counter("serve.workers.panics"),
            workers_degraded: reg.gauge("serve.workers.degraded"),
            encode_flushes: reg.counter("serve.encode.flushes"),
            encode_graphs: reg.counter("serve.encode.graphs"),
            encode_forward_us: reg.histogram("serve.encode.forward_us"),
            encode_batch_fill: reg.histogram("serve.encode.batch_fill"),
            encode_wait_ticks: reg.histogram("serve.encode.wait_ticks"),
            wal_appends: reg.counter("wal.appends"),
            wal_append_retries: reg.counter("wal.append_retries"),
            wal_append_us: reg.histogram("wal.append_us"),
            wal_sync_us: reg.histogram("wal.sync_us"),
            recover_replayed_ops: reg.counter("recover.replayed_ops"),
            recover_torn_bytes: reg.counter("recover.torn_bytes"),
            recover_replay_us: reg.counter("recover.replay_us"),
        }
    }

    /// Folds one query's aggregate [`ScanStats`](crate::ScanStats) into
    /// the scan counters.
    pub fn record_scan(&self, stats: &crate::ScanStats) {
        self.scan_rows.add(stats.rows_scanned);
        self.scan_cells_probed.add(stats.cells_probed);
        self.scan_survivors.add(stats.survivors);
        self.scan_bytes.add(stats.scan_bytes);
    }
}

/// The observability bundle one [`Server`](crate::Server) and all its
/// workers share: registry, the optional hot-path handles, the trace
/// sampler, and the injected clock that timestamps trace stages.
pub(crate) struct ServerObs {
    /// The server's metric directory — [`Server::metrics`](crate::Server::metrics)
    /// snapshots this.
    pub registry: MetricsRegistry,
    /// Hot-path handles; `None` when [`ObsConfig::metrics`] is off (the
    /// instrumented-out baseline).
    pub metrics: Option<ServeMetrics>,
    /// The per-query sampling gate and span sink.
    pub tracer: Tracer,
    /// Trace-stage timestamps come from here — the same injected clock
    /// that drives the coalescer, so spans are deterministic under a
    /// [`VirtualClock`](crate::VirtualClock).
    pub clock: Arc<dyn Clock>,
}

impl ServerObs {
    /// Builds the bundle from an [`ObsConfig`] policy and the server's
    /// injected clock.
    pub fn new(cfg: ObsConfig, clock: Arc<dyn Clock>) -> ServerObs {
        let registry = MetricsRegistry::new();
        let metrics = cfg.metrics.then(|| ServeMetrics::register(&registry));
        ServerObs {
            registry,
            metrics,
            tracer: Tracer::new(cfg.trace_sample),
            clock,
        }
    }
}
