//! Environment knobs for the serving layer, with the workspace's
//! warn-and-fall-back contract: an invalid value prints a warning on stderr
//! and the built-in default stays in force — a typo'd `GBM_FLUSH_TICKS=2O`
//! must not masquerade as a tuned deployment (the same contract
//! `gbm-bench`'s `GBM_EPOCHS`-style knobs follow).

/// Reads and parses an environment knob. `None` when the variable is unset
/// *or* unparsable (the latter warns loudly).
pub(crate) fn env_knob<T: std::str::FromStr>(name: &str, what: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!(
                "warning: ignoring invalid {name}={raw:?} (expected {what}); using the default"
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::artifact::ArtifactConfig;
    use crate::coalesce::CoalescerConfig;
    use crate::index::IndexConfig;
    use crate::quantized::ScanPrecision;
    use crate::server::ServerConfig;

    /// One test covers every serving knob: env vars are process-wide, so
    /// splitting this across parallel tests would race.
    #[test]
    fn serve_env_knobs_apply_and_fall_back_loudly() {
        // unset: defaults in force
        std::env::remove_var("GBM_FLUSH_TICKS");
        std::env::remove_var("GBM_SERVE_WORKERS");
        std::env::remove_var("GBM_IVF_CELLS");
        std::env::remove_var("GBM_SCAN_NPROBE");
        std::env::remove_var("GBM_METRICS");
        std::env::remove_var("GBM_TRACE_SAMPLE");
        let co = CoalescerConfig::default().with_env();
        assert_eq!(co.max_wait, CoalescerConfig::default().max_wait);
        let sv = ServerConfig::default().with_env();
        assert_eq!(sv.scan_workers, ServerConfig::default().scan_workers);
        assert!(sv.obs.metrics, "metrics default on");
        assert_eq!(sv.obs.trace_sample, 0, "tracing defaults off");

        // valid overrides apply
        std::env::set_var("GBM_FLUSH_TICKS", "9");
        std::env::set_var("GBM_SERVE_WORKERS", "3");
        std::env::set_var("GBM_METRICS", "0");
        std::env::set_var("GBM_TRACE_SAMPLE", "100");
        assert_eq!(CoalescerConfig::default().with_env().max_wait, 9);
        let sv = ServerConfig::default().with_env();
        assert_eq!(sv.scan_workers, 3);
        assert_eq!(
            sv.coalescer.max_wait, 9,
            "ServerConfig::with_env composes the coalescer knob"
        );
        assert!(!sv.obs.metrics, "GBM_METRICS=0 disables the registry");
        assert_eq!(sv.obs.trace_sample, 100);
        std::env::set_var("GBM_METRICS", "1");
        assert!(ServerConfig::default().with_env().obs.metrics);

        // invalid values warn (stderr) and fall back — not silently ignore
        std::env::set_var("GBM_FLUSH_TICKS", "2O");
        std::env::set_var("GBM_SERVE_WORKERS", "-1");
        std::env::set_var("GBM_METRICS", "off");
        std::env::set_var("GBM_TRACE_SAMPLE", "every-5th");
        assert_eq!(
            CoalescerConfig::default().with_env().max_wait,
            CoalescerConfig::default().max_wait
        );
        assert_eq!(
            ServerConfig::default().with_env().scan_workers,
            ServerConfig::default().scan_workers
        );
        let sv = ServerConfig::default().with_env();
        assert!(sv.obs.metrics, "unparsable GBM_METRICS keeps the default");
        assert_eq!(sv.obs.trace_sample, 0);

        // zero workers degrade to one at construction, like num_shards
        std::env::set_var("GBM_SERVE_WORKERS", "0");
        assert_eq!(ServerConfig::default().with_env().scan_workers, 0);

        // IVF knobs: GBM_IVF_CELLS always applies; GBM_SCAN_NPROBE only
        // retunes an Ivf precision — on exact precisions it warns and is
        // ignored, so a stray knob cannot change exact-scan semantics
        let ivf = IndexConfig {
            precision: ScanPrecision::Ivf {
                nprobe: 4,
                widen: 2,
            },
            ..Default::default()
        };
        std::env::set_var("GBM_IVF_CELLS", "32");
        std::env::set_var("GBM_SCAN_NPROBE", "7");
        let cfg = ivf.with_env();
        assert_eq!(cfg.ivf_cells, 32);
        assert_eq!(
            cfg.precision,
            ScanPrecision::Ivf {
                nprobe: 7,
                widen: 2
            }
        );
        let exact = IndexConfig::default().with_env();
        assert_eq!(exact.ivf_cells, 32, "cells knob is precision-independent");
        assert_eq!(exact.precision, IndexConfig::default().precision);
        // unparsable values warn and keep the config's own settings
        std::env::set_var("GBM_IVF_CELLS", "many");
        std::env::set_var("GBM_SCAN_NPROBE", "-3");
        let cfg = ivf.with_env();
        assert_eq!(cfg.ivf_cells, 0);
        assert_eq!(
            cfg.precision,
            ScanPrecision::Ivf {
                nprobe: 4,
                widen: 2
            }
        );
        // ServerConfig::with_env composes the index knobs
        std::env::set_var("GBM_IVF_CELLS", "16");
        let sv = ServerConfig {
            index: ivf,
            ..Default::default()
        }
        .with_env();
        assert_eq!(sv.index.ivf_cells, 16);

        // artifact knobs: GBM_ARTIFACT_DIR repoints the reader,
        // GBM_ARTIFACT_MMAP toggles the map path; unparsable values warn
        // and keep the defaults like every other knob
        std::env::remove_var("GBM_ARTIFACT_DIR");
        std::env::remove_var("GBM_ARTIFACT_MMAP");
        let ac = ArtifactConfig::new("/base").with_env();
        assert_eq!(ac.dir, std::path::PathBuf::from("/base"));
        assert!(ac.mmap, "mmap defaults on");
        std::env::set_var("GBM_ARTIFACT_DIR", "/published/here");
        std::env::set_var("GBM_ARTIFACT_MMAP", "false");
        let ac = ArtifactConfig::new("/base").with_env();
        assert_eq!(ac.dir, std::path::PathBuf::from("/published/here"));
        assert!(!ac.mmap);
        std::env::set_var("GBM_ARTIFACT_MMAP", "mapped");
        assert!(
            ArtifactConfig::new("/base").with_env().mmap,
            "unparsable GBM_ARTIFACT_MMAP keeps the default"
        );
        std::env::remove_var("GBM_ARTIFACT_DIR");
        std::env::remove_var("GBM_ARTIFACT_MMAP");

        std::env::remove_var("GBM_FLUSH_TICKS");
        std::env::remove_var("GBM_SERVE_WORKERS");
        std::env::remove_var("GBM_IVF_CELLS");
        std::env::remove_var("GBM_SCAN_NPROBE");
        std::env::remove_var("GBM_METRICS");
        std::env::remove_var("GBM_TRACE_SAMPLE");
    }
}
