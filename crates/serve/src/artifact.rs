//! Zero-copy serving from a published v2 artifact: the writer side
//! ([`encode_index_artifact`] / [`publish_index_artifact`]) and the reader
//! side ([`ReadOnlyIndex`], [`ArtifactReader`]).
//!
//! ```text
//!  writer process                      reader processes (N)
//!  ──────────────                      ────────────────────
//!  ShardedIndex (live, mutable)        ArtifactReader::open(dir)
//!    │ publish_index_artifact(seq)       │ mmap artifact-<seq>.gbm
//!    ▼                                   ▼
//!  artifact-<seq>.gbm ──CURRENT──►     ReadOnlyIndex::query
//!  (tmp → fsync → rename)              (scans the mapping in place)
//!                                        │ poll(): CURRENT moved?
//!                                        ▼ map new gen, swap Arc
//! ```
//!
//! The contract, asserted by `tests/artifact_equiv.rs` and the
//! multi-process `probe_artifact` drill:
//!
//! * **Rank identity.** [`ReadOnlyIndex::query`] over the mapped bytes is
//!   bit-identical to [`ShardedIndex::query`] on the index that published
//!   them — ids, scores, tie order — at F32 and Int8, and *also* at Ivf
//!   (the artifact serializes the trained cell tables instead of
//!   retraining, so even the approximate tier's candidate sets match).
//!   This holds by construction: both indexes drive the same
//!   [`ShardView`](crate::scan) scan kernels; the artifact only changes
//!   where the slices point.
//! * **Cold start is a map, not a decode.** Opening checksums the header
//!   and TOC (O(sections)) and validates each shard's structure once;
//!   payload bytes are touched by page faults as queries reach them.
//! * **Readers never observe a torn generation.** Publishing is
//!   tmp→fsync→rename twice ([`gbm_artifact::publish_artifact`]); a
//!   writer killed mid-publish leaves `CURRENT` on the previous complete
//!   generation, and [`ArtifactReader::poll`] failures leave the reader
//!   serving its current map.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use gbm_artifact::{
    encode_artifact, open_map, publish_artifact, read_current, resolve_shard, ArtifactError,
    ArtifactIvf, ArtifactMap, ArtifactMeta, ArtifactQuant, ArtifactShard, ArtifactView, MapKind,
    Section, SectionKind,
};
use gbm_obs::{names, Counter, Histogram, MetricsRegistry};
use gbm_quant::{IvfCellsView, QuantizedMatrixView};
use rayon::prelude::*;

use crate::index::{GraphId, IndexConfig, ScanStats, ShardedIndex};
use crate::persist::{precision_tag, scan_precision, tag_ivf_cells};
use crate::quantized::ScanPrecision;
use crate::scan::{prepare_query, scan_shard, IvfRef, QuantView, ShardView};

/// Where artifacts are published and how readers map them.
#[derive(Clone, Debug)]
pub struct ArtifactConfig {
    /// Directory holding `artifact-<seq>.gbm` generations and `CURRENT`.
    pub dir: PathBuf,
    /// `mmap` the artifact (the zero-copy path). `false` — or an mmap
    /// failure at open — reads the file into an aligned heap buffer
    /// behind the same interface.
    pub mmap: bool,
}

impl ArtifactConfig {
    /// Serving from `dir`, mapping by default.
    pub fn new(dir: impl Into<PathBuf>) -> ArtifactConfig {
        ArtifactConfig {
            dir: dir.into(),
            mmap: true,
        }
    }

    /// Applies the artifact environment knobs on top of this config:
    /// `GBM_ARTIFACT_DIR` (the publish/poll directory) and
    /// `GBM_ARTIFACT_MMAP` (`true`/`false`: map vs heap-read). Invalid
    /// values warn on stderr and leave the built-in defaults in force,
    /// like every other `GBM_*` knob.
    pub fn with_env(mut self) -> ArtifactConfig {
        if let Some(dir) =
            crate::env::env_knob::<PathBuf>("GBM_ARTIFACT_DIR", "an artifact directory path")
        {
            self.dir = dir;
        }
        if let Some(mmap) =
            crate::env::env_knob::<bool>("GBM_ARTIFACT_MMAP", "true or false (mmap the artifact)")
        {
            self.mmap = mmap;
        }
        self
    }
}

/// Encodes `index`'s full scannable state — ids, f32 rows, int8 mirrors,
/// trained IVF cell tables — into v2 artifact bytes stamped `last_seq`.
/// Pending (unflushed) inserts are not imaged, exactly as they are
/// invisible to [`ShardedIndex::query`].
pub fn encode_index_artifact(index: &ShardedIndex, last_seq: u64) -> Vec<u8> {
    let cfg = index.config();
    let meta = ArtifactMeta {
        num_shards: cfg.num_shards,
        encode_batch: cfg.encode_batch,
        hidden: index.hidden(),
        precision: precision_tag(cfg.precision, cfg.ivf_cells),
        last_seq,
    };
    // trained cell tables flatten to CSR once, up front: ArtifactShard
    // borrows, so the flattened vectors must outlive the shard structs
    struct IvfAux {
        offsets: Vec<u32>,
        members: Vec<u32>,
    }
    let aux: Vec<Option<IvfAux>> = (0..cfg.num_shards)
        .map(|s| {
            index
                .shard_ivf(s)
                .filter(|ivf| ivf.is_trained())
                .map(|ivf| {
                    let mut offsets = vec![0u32];
                    let mut members = Vec::new();
                    for c in 0..ivf.num_cells() {
                        members.extend_from_slice(ivf.cell(c));
                        offsets.push(members.len() as u32);
                    }
                    IvfAux { offsets, members }
                })
        })
        .collect();
    let shards: Vec<ArtifactShard<'_>> = (0..cfg.num_shards)
        .map(|s| {
            let quant = index.shard_quant(s);
            ArtifactShard {
                ids: index.shard_ids(s),
                rows: index.shard_rows(s),
                // a shard emptied by removals keeps a 0-row mirror
                // allocated; its image is "no mirror", same normalization
                // as the v1 snapshot
                quant: quant
                    .and_then(|q| q.matrix())
                    .filter(|m| m.rows() > 0)
                    .map(|m| {
                        let q = quant.expect("matrix implies mirror");
                        ArtifactQuant {
                            codes: m.codes(),
                            scales: m.scales(),
                            block_scale: q.block_scale(),
                            block_l1: q.block_l1(),
                        }
                    }),
                ivf: aux[s].as_ref().map(|a| {
                    let ivf = index.shard_ivf(s).expect("aux implies cell index");
                    ArtifactIvf {
                        centroids: ivf.centroids(),
                        sqnorms: ivf.cent_sqnorms(),
                        offsets: &a.offsets,
                        members: &a.members,
                        cell_of: ivf.cell_of(),
                    }
                }),
            }
        })
        .collect();
    encode_artifact(&meta, &shards)
}

/// Encodes and atomically publishes `index` as generation `seq` under
/// `dir` (artifact file lands, then `CURRENT` swings to it). Returns the
/// published path.
pub fn publish_index_artifact(index: &ShardedIndex, dir: &Path, seq: u64) -> io::Result<PathBuf> {
    publish_artifact(dir, seq, &encode_index_artifact(index, seq))
}

/// A sharded index served directly out of a mapped artifact: the same
/// `query` / `query_stats` / `query_shards` surface as [`ShardedIndex`],
/// rank-identical at the exact tiers and recall-identical at Ivf, with no
/// mutation API — readers swap whole generations instead.
///
/// Opening validates the header, TOC, and every shard's structural
/// invariants once; queries then re-slice the mapping with cheap
/// already-validated casts. Payload checksums are *not* verified at open
/// (that would fault in every page and defeat the zero-copy cold start) —
/// [`verify`](Self::verify) runs the full pass on demand.
pub struct ReadOnlyIndex {
    map: Box<dyn ArtifactMap>,
    meta: ArtifactMeta,
    sections: Vec<Section>,
    cfg: IndexConfig,
    num_encoded: usize,
    fell_back: bool,
}

impl ReadOnlyIndex {
    /// Maps (or heap-reads, per `prefer_mmap` and platform) the artifact
    /// at `path` and validates it for serving.
    pub fn open(path: &Path, prefer_mmap: bool) -> Result<ReadOnlyIndex, ArtifactError> {
        let (map, fell_back) = open_map(path, prefer_mmap)?;
        let mut index = ReadOnlyIndex::from_map(map)?;
        index.fell_back = fell_back;
        Ok(index)
    }

    /// Serves from an already-mapped artifact (any [`ArtifactMap`]).
    /// Parses and checksums the header + TOC and deep-validates every
    /// shard's structure; payload bytes stay untouched.
    pub fn from_map(map: Box<dyn ArtifactMap>) -> Result<ReadOnlyIndex, ArtifactError> {
        let (meta, sections) = {
            let view = ArtifactView::parse(map.bytes())?;
            for s in 0..view.meta().num_shards {
                view.shard(s)?;
            }
            view.into_parts()
        };
        let cfg = IndexConfig {
            num_shards: meta.num_shards,
            encode_batch: meta.encode_batch,
            precision: scan_precision(meta.precision),
            ivf_cells: tag_ivf_cells(meta.precision),
        };
        let num_encoded = sections
            .iter()
            .filter(|e| e.kind == SectionKind::Ids)
            .map(|e| e.len / std::mem::size_of::<GraphId>())
            .sum();
        Ok(ReadOnlyIndex {
            map,
            meta,
            sections,
            cfg,
            num_encoded,
            fell_back: false,
        })
    }

    /// Shard `s` as the borrowed [`ShardView`] the scan kernels read —
    /// slices straight into the mapping. Structure was validated at open,
    /// so the per-query resolve cannot fail on a map that has not been
    /// yanked out from under us.
    fn shard_view(&self, s: usize) -> ShardView<'_> {
        let shard = resolve_shard(self.map.bytes(), &self.meta, &self.sections, s)
            .expect("artifact shards were validated at open");
        let hidden = self.meta.hidden;
        ShardView {
            ids: shard.ids,
            rows: shard.rows,
            quant: shard.quant.map(|q| QuantView {
                mat: QuantizedMatrixView::new(q.codes, q.scales, hidden),
                block_scale: q.block_scale,
                block_l1: q.block_l1,
            }),
            ivf: shard.ivf.map(|i| {
                IvfRef::Mapped(IvfCellsView::new(
                    i.centroids,
                    i.sqnorms,
                    i.offsets,
                    i.members,
                    i.cell_of,
                    hidden,
                ))
            }),
        }
    }

    /// Exact top-K cosine neighbours out of the mapping — bit-identical to
    /// [`ShardedIndex::query`] on the published index.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<(GraphId, f32)> {
        self.query_stats(query, k).0
    }

    /// [`query`](Self::query) plus the scan's [`ScanStats`] — same
    /// accounting model as the live index.
    pub fn query_stats(&self, query: &[f32], k: usize) -> (Vec<(GraphId, f32)>, ScanStats) {
        if k == 0 || self.num_encoded == 0 {
            return (Vec::new(), ScanStats::default());
        }
        assert_eq!(
            query.len(),
            self.hidden(),
            "query embedding width must match the index"
        );
        let hidden = self.hidden();
        let precision = self.cfg.precision;
        let quant_query = prepare_query(precision, query);
        let views: Vec<ShardView<'_>> =
            (0..self.num_shards()).map(|s| self.shard_view(s)).collect();
        let per_shard: Vec<(Vec<(GraphId, f32)>, ScanStats)> = views
            .par_iter()
            .with_min_len(1)
            .map(|v| {
                let mut stats = ScanStats::default();
                let ranked = scan_shard(v, query, &quant_query, k, precision, hidden, &mut stats);
                (ranked, stats)
            })
            .collect();
        let mut stats = ScanStats::default();
        let mut partials = Vec::with_capacity(per_shard.len());
        for (ranked, s) in per_shard {
            stats.merge(&s);
            partials.push(ranked);
        }
        (gbm_tensor::merge_ranked(&partials, k), stats)
    }

    /// The fan-out half of [`query`](Self::query), mirroring
    /// [`ShardedIndex::query_shards`]: scans only `shards`, sequentially,
    /// and returns their merged sorted partial.
    pub fn query_shards(
        &self,
        shards: std::ops::Range<usize>,
        query: &[f32],
        k: usize,
    ) -> Vec<(GraphId, f32)> {
        self.query_shards_stats(shards, query, k).0
    }

    /// [`query_shards`](Self::query_shards) plus the partial's
    /// [`ScanStats`].
    pub fn query_shards_stats(
        &self,
        shards: std::ops::Range<usize>,
        query: &[f32],
        k: usize,
    ) -> (Vec<(GraphId, f32)>, ScanStats) {
        assert!(shards.end <= self.num_shards(), "shard range out of bounds");
        let views: Vec<ShardView<'_>> = shards.map(|s| self.shard_view(s)).collect();
        if k == 0 || views.iter().all(|v| v.ids.is_empty()) {
            return (Vec::new(), ScanStats::default());
        }
        assert_eq!(
            query.len(),
            self.hidden(),
            "query embedding width must match the index"
        );
        let hidden = self.hidden();
        let precision = self.cfg.precision;
        let quant_query = prepare_query(precision, query);
        let mut stats = ScanStats::default();
        let per_shard: Vec<Vec<(GraphId, f32)>> = views
            .iter()
            .map(|v| scan_shard(v, query, &quant_query, k, precision, hidden, &mut stats))
            .collect();
        (gbm_tensor::merge_ranked(&per_shard, k), stats)
    }

    /// Full payload-checksum verification — the explicit integrity pass
    /// (every page faulted in), not part of `open`.
    pub fn verify(&self) -> Result<(), ArtifactError> {
        ArtifactView::parse(self.map.bytes())?.verify()
    }

    /// Encoded (searchable) rows across all shards.
    pub fn num_encoded(&self) -> usize {
        self.num_encoded
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.meta.num_shards
    }

    /// Embedding width.
    pub fn hidden(&self) -> usize {
        self.meta.hidden
    }

    /// The index configuration the artifact was published with
    /// (`num_shards`/`precision`/`ivf_cells` round-trip exactly).
    pub fn config(&self) -> IndexConfig {
        self.cfg
    }

    /// WAL sequence this artifact is consistent with — the publish
    /// generation.
    pub fn last_seq(&self) -> u64 {
        self.meta.last_seq
    }

    /// How the bytes entered the address space.
    pub fn map_kind(&self) -> MapKind {
        self.map.kind()
    }

    /// True when `mmap` was requested but the open fell back to a heap
    /// read (readers keep serving; the `artifact.map_fallbacks` counter
    /// ticks).
    pub fn fell_back(&self) -> bool {
        self.fell_back
    }

    /// Bytes one full scan pass touches under the artifact's precision —
    /// same accounting as [`ShardedIndex::scan_bytes`].
    pub fn scan_bytes(&self) -> usize {
        (0..self.num_shards())
            .map(|s| {
                let v = self.shard_view(s);
                match self.cfg.precision {
                    ScanPrecision::F32 => std::mem::size_of_val(v.rows),
                    ScanPrecision::Int8 { .. } => v.quant.as_ref().map_or(0, QuantView::scan_bytes),
                    ScanPrecision::Ivf { .. } => {
                        v.quant.as_ref().map_or(0, QuantView::scan_bytes)
                            + v.ivf.as_ref().map_or(0, IvfRef::scan_bytes)
                    }
                }
            })
            .sum()
    }
}

/// The cached lock-free handles for the `artifact.*` metrics (names in
/// [`gbm_obs::names`] — they cross process boundaries in the drill).
struct ArtifactMetrics {
    maps: Arc<Counter>,
    remaps: Arc<Counter>,
    map_fallbacks: Arc<Counter>,
    open_errors: Arc<Counter>,
    cold_load_us: Arc<Histogram>,
}

impl ArtifactMetrics {
    fn register(reg: &MetricsRegistry) -> ArtifactMetrics {
        ArtifactMetrics {
            maps: reg.counter(names::ARTIFACT_MAPS),
            remaps: reg.counter(names::ARTIFACT_REMAPS),
            map_fallbacks: reg.counter(names::ARTIFACT_MAP_FALLBACKS),
            open_errors: reg.counter(names::ARTIFACT_OPEN_ERRORS),
            cold_load_us: reg.histogram(names::ARTIFACT_COLD_LOAD_US),
        }
    }
}

/// A polling reader over a published artifact directory: maps the current
/// generation at open, then [`poll`](Self::poll) swings to newer
/// generations without dropping in-flight queries — callers hold an
/// `Arc<ReadOnlyIndex>` from [`current`](Self::current), and a swap only
/// replaces the slot, never invalidates a clone already handed out (the
/// old mapping unmaps when its last query finishes).
pub struct ArtifactReader {
    cfg: ArtifactConfig,
    slot: RwLock<Arc<ReadOnlyIndex>>,
    generation: AtomicU64,
    metrics: Option<ArtifactMetrics>,
}

impl ArtifactReader {
    /// Opens the generation `CURRENT` names. Errors when nothing has been
    /// published yet (readers should retry until a writer appears) or the
    /// live artifact fails validation.
    pub fn open(cfg: ArtifactConfig) -> Result<ArtifactReader, ArtifactError> {
        ArtifactReader::with_metrics(cfg, None)
    }

    /// [`open`](Self::open) recording `artifact.*` metrics into `registry`.
    pub fn with_metrics(
        cfg: ArtifactConfig,
        registry: Option<&MetricsRegistry>,
    ) -> Result<ArtifactReader, ArtifactError> {
        let metrics = registry.map(ArtifactMetrics::register);
        let Some((seq, path)) = read_current(&cfg.dir)? else {
            return Err(ArtifactError::Io(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no published generation in {}", cfg.dir.display()),
            )));
        };
        let index = ArtifactReader::load(&cfg, &path, metrics.as_ref())?;
        Ok(ArtifactReader {
            cfg,
            slot: RwLock::new(Arc::new(index)),
            generation: AtomicU64::new(seq),
            metrics,
        })
    }

    fn load(
        cfg: &ArtifactConfig,
        path: &Path,
        metrics: Option<&ArtifactMetrics>,
    ) -> Result<ReadOnlyIndex, ArtifactError> {
        let t0 = Instant::now();
        match ReadOnlyIndex::open(path, cfg.mmap) {
            Ok(index) => {
                if let Some(m) = metrics {
                    m.maps.inc();
                    if index.fell_back() {
                        m.map_fallbacks.inc();
                    }
                    m.cold_load_us.record(t0.elapsed().as_micros() as u64);
                }
                Ok(index)
            }
            Err(e) => {
                if let Some(m) = metrics {
                    m.open_errors.inc();
                }
                Err(e)
            }
        }
    }

    /// The live generation's index. Cheap (one `Arc` clone under a read
    /// lock); hold the `Arc` for the duration of a query and it survives
    /// any concurrent [`poll`](Self::poll) swap.
    pub fn current(&self) -> Arc<ReadOnlyIndex> {
        Arc::clone(&self.slot.read().expect("artifact slot poisoned"))
    }

    /// The sequence number currently served.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Re-reads `CURRENT` and swaps onto a newer generation when one has
    /// been published. Returns whether a swap happened. Any failure —
    /// unreadable pointer, artifact mid-reap, validation error — leaves
    /// the reader serving its current generation (callers poll again
    /// later), with `artifact.open_errors` ticked.
    pub fn poll(&self) -> Result<bool, ArtifactError> {
        let Some((seq, path)) = read_current(&self.cfg.dir)? else {
            return Ok(false);
        };
        if seq <= self.generation() {
            return Ok(false);
        }
        let index = ArtifactReader::load(&self.cfg, &path, self.metrics.as_ref())?;
        if let Some(m) = &self.metrics {
            m.remaps.inc();
        }
        *self.slot.write().expect("artifact slot poisoned") = Arc::new(index);
        self.generation.store(seq, Ordering::Release);
        Ok(true)
    }
}
