//! The concurrent serving front-end: pipelined encode/scan workers over the
//! sharded index.
//!
//! [`Server`] turns the passive building blocks of this crate — the
//! [`EncodeCoalescer`]'s two-phase flush seam and the [`ShardedIndex`]'s
//! shard-range scan entry point — into a running multi-threaded pipeline:
//!
//! ```text
//!  submit/insert/remove ──► encode worker ──────────► Arc<RwLock<index>>
//!  (any thread, channel)    owns coalescer+replica         ▲ write (brief)
//!                           embed_batch OFF-lock           │
//!                                                          │ read
//!  query (any thread) ──► scan workers (shard-pinned) ◄────┘
//!                     ◄── partial top-K per worker, caller k-way merges
//! ```
//!
//! * **One encode worker** owns the model replica and the coalescer. Every
//!   write (encode request, row publish, remove) flows through its channel,
//!   so index mutation is single-writer by construction. The worker drives
//!   the coalescer's caller-side flush policy — full flush at `max_batch`,
//!   timer flush when the injected [`Clock`] says the oldest request crossed
//!   `max_wait` — and runs the expensive batched forward *without holding
//!   any lock*: only the final O(hidden) row publish takes the index write
//!   lock. Scans overlap encodes; that is the pipelining.
//! * **N scan workers**, each pinned to a contiguous shard range. A query
//!   fans out one [`ShardedIndex::query_shards`] job per worker, collects
//!   the sorted partials, and k-way merges them with
//!   [`gbm_tensor::merge_ranked`]. Because the ranked merge is associative
//!   over shard groupings, the fanned-out answer is **exactly** — ids,
//!   scores, tie order — the single-threaded [`ShardedIndex::query`] answer
//!   for every worker count (equivalence-tested across shard counts and
//!   scan precisions).
//! * **Oneshot replies**: submissions return handles backed by rendezvous
//!   channels, not polled tickets. [`EncodeHandle::wait`] blocks until the
//!   flush that carries its row completes; inserts and removes ack the same
//!   way. A remove that lands while its id's insert is still coalescing
//!   cancels the pending ticket and still resolves the insert's handle —
//!   nothing ever hangs and no ticket leaks ([`ServerReport`] proves it at
//!   shutdown).
//! * **Durability** ([`Server::durable`]): the encode worker tees every
//!   acked mutation through a `gbm-store` write-ahead log *before* applying
//!   it to the index. A failed append retries with backoff up to
//!   [`WAL_RETRIES`] times (the WAL repairs its own torn tail between
//!   attempts); a terminal failure surfaces as a typed
//!   [`ServeError::Durability`] on the caller's handle and the index is
//!   left untouched — an acked op is always recoverable, an unrecoverable
//!   op is never acked. Shutdown force-syncs and reports the final
//!   [`WalState`], so a dirty exit (unsynced records) is visible in the
//!   [`ServerReport`], never silently claimed clean.
//! * **Fault isolation**: a panicking scan worker is caught
//!   (`catch_unwind`), marked failed, and retired — its shard range fails
//!   over to an inline scan on the querying thread. Because the ranked
//!   merge is associative, degraded answers stay *exact*; the degradation
//!   is observable ([`ServerReport::degraded_scan_workers`]) but never
//!   changes a ranking. Index writes are unaffected (the encode worker is
//!   a different thread).

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use gbm_nn::{EncodedGraph, GraphBinMatch, ModelSpec};
use gbm_obs::{MetricsSnapshot, ObsConfig, TraceSpan};
use gbm_store::{StoreError, Wal, WalOp, WalState};
use gbm_tensor::Tensor;

use crate::clock::Clock;
use crate::coalesce::{CoalescerConfig, CoalescerStats, EncodeCoalescer, FlushTrigger, Ticket};
use crate::index::{GraphId, IndexConfig, ScanStats, ShardedIndex};
use crate::metrics::{ServeMetrics, ServerObs};
use crate::persist::RecoveryStats;

/// Worker topology and flush policy for a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Scan worker threads (clamped at construction to
    /// `1..=index.num_shards` — a worker with no shards would answer
    /// nothing).
    pub scan_workers: usize,
    /// Encode coalescing policy (the encode worker drives it).
    pub coalescer: CoalescerConfig,
    /// Sharding and scan precision of the index being served.
    pub index: IndexConfig,
    /// Observability policy: metrics on/off and the trace sampling rate
    /// ([`Server::metrics`] / [`Server::take_traces`]).
    pub obs: ObsConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            scan_workers: 2,
            coalescer: CoalescerConfig::default(),
            index: IndexConfig::default(),
            obs: ObsConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Applies the serving environment knobs on top of this config:
    /// `GBM_SERVE_WORKERS` (scan worker threads), `GBM_METRICS` (0
    /// disables the metrics registry — the instrumented-out baseline),
    /// `GBM_TRACE_SAMPLE` (trace every N-th query; 0 = off) and, via
    /// [`CoalescerConfig::with_env`] and [`IndexConfig::with_env`],
    /// `GBM_FLUSH_TICKS` / `GBM_IVF_CELLS` / `GBM_SCAN_NPROBE`. Invalid
    /// values warn on stderr and leave the built-in defaults in force.
    pub fn with_env(mut self) -> ServerConfig {
        if let Some(w) =
            crate::env::env_knob::<usize>("GBM_SERVE_WORKERS", "a scan worker thread count")
        {
            self.scan_workers = w;
        }
        if let Some(on) = crate::env::env_knob::<u64>("GBM_METRICS", "0 (off) or nonzero (on)") {
            self.obs.metrics = on != 0;
        }
        if let Some(n) =
            crate::env::env_knob::<u64>("GBM_TRACE_SAMPLE", "a trace sampling interval (0 = off)")
        {
            self.obs.trace_sample = n;
        }
        self.coalescer = self.coalescer.with_env();
        self.index = self.index.with_env();
        self
    }
}

/// End-of-life accounting from [`Server::shutdown`]. A clean run reports
/// every gauge zero: the final forced flush drained the queue, every row
/// reached its reply handle or publish, and no ticket was left behind —
/// the stress tests assert exactly that.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Coalescer behaviour over the server's lifetime (flush counts by
    /// trigger, batch fill).
    pub coalescer: CoalescerStats,
    /// Requests still queued un-encoded at exit (leak if nonzero).
    pub pending: usize,
    /// Tickets caught between `begin_flush` and `complete_flush` at exit
    /// (leak if nonzero).
    pub in_flight: usize,
    /// Encoded rows never delivered to a handle (leak if nonzero).
    pub ready: usize,
    /// Reply destinations never resolved (a lost reply if nonzero).
    pub unresolved: usize,
    /// Final WAL writer state on a durable server (`None` when the server
    /// ran without a WAL): `unsynced == 0` is a clean shutdown, anything
    /// else means the tail may not have reached disk.
    pub wal: Option<WalState>,
    /// Scan workers that panicked and were retired; their shard ranges
    /// failed over to inline scans (answers stayed exact throughout).
    pub degraded_scan_workers: usize,
}

impl ServerReport {
    /// True when nothing leaked: no queued work, no in-flight tickets, no
    /// undelivered rows, no unresolved reply handles.
    pub fn is_drained(&self) -> bool {
        self.pending == 0 && self.in_flight == 0 && self.ready == 0 && self.unresolved == 0
    }

    /// True when a WAL was attached and every record it accepted was
    /// fsynced by shutdown — the persisted log provably carries every
    /// acked op. Always false on a non-durable server.
    pub fn is_durable(&self) -> bool {
        self.wal.as_ref().is_some_and(|w| w.unsynced == 0)
    }
}

/// A serving-side failure surfaced on a caller's handle.
#[derive(Debug)]
pub enum ServeError {
    /// The WAL rejected an op even after [`WAL_RETRIES`] attempts; the op
    /// was **not** applied to the index (write-ahead means un-logged is
    /// un-applied).
    Durability {
        /// Append attempts made before giving up.
        attempts: u32,
        /// The storage error from the final attempt.
        source: StoreError,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Durability { attempts, source } => write!(
                f,
                "WAL append failed after {attempts} attempts, op not applied: {source}"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Durability { source, .. } => Some(source),
        }
    }
}

/// Everything a worker thread needs to rebuild the (non-`Send`) model:
/// the persistable [`ModelSpec`] (config + flat weights — the same image
/// snapshots carry) and the shared forward counter. The replica is
/// constructed *inside* the thread.
struct WorkerModel {
    spec: ModelSpec,
    counter: Arc<AtomicUsize>,
}

/// Where a flushed embedding row goes.
enum EncodeDest {
    /// Hand the row to the submitting caller.
    Reply(SyncSender<Tensor>),
    /// Publish the row into the index under `id`, then ack (or report the
    /// WAL failure that blocked the publish).
    Publish {
        id: GraphId,
        done: SyncSender<Result<(), ServeError>>,
    },
}

enum Request {
    Encode {
        graph: Box<EncodedGraph>,
        dest: EncodeDest,
    },
    InsertRow {
        id: GraphId,
        row: Vec<f32>,
        done: SyncSender<Result<(), ServeError>>,
    },
    Remove {
        id: GraphId,
        done: SyncSender<Result<bool, ServeError>>,
    },
    Shutdown {
        report: SyncSender<ServerReport>,
    },
}

/// One worker's sorted shard-range partial top-K, plus the scan-work
/// accounting behind it.
type Partial = (Vec<(GraphId, f32)>, ScanStats);

enum ScanJob {
    Query {
        query: Arc<[f32]>,
        k: usize,
        reply: SyncSender<Partial>,
    },
    /// Test-only: make the worker panic inside its job handler, exercising
    /// the retire-and-fail-over path deterministically.
    #[cfg(any(test, feature = "test-fixtures"))]
    Poison,
}

/// Blocks until the submitted graph's coalescer batch flushes, then yields
/// its embedding row.
pub struct EncodeHandle {
    rx: Receiver<Tensor>,
}

impl EncodeHandle {
    /// The `[1, hidden]` embedding of the submitted graph. Blocks until
    /// its batch flushes (full, timer, or shutdown).
    pub fn wait(self) -> Tensor {
        self.rx.recv().expect("server encode worker exited early")
    }

    /// The embedding if its batch has already flushed; `None` while it is
    /// still coalescing.
    pub fn try_wait(&self) -> Option<Tensor> {
        self.rx.try_recv().ok()
    }
}

/// Resolves when the inserted graph's row is published into the index —
/// or when a concurrent remove cancels the still-coalescing insert (the
/// handle never hangs either way).
pub struct InsertHandle {
    rx: Receiver<Result<(), ServeError>>,
}

impl InsertHandle {
    /// Blocks until the insert is published (or cancelled by a remove),
    /// returning the durability outcome. Only a durable server ever
    /// returns `Err` — and only after the WAL rejected the op through
    /// every retry, in which case the index was left untouched.
    pub fn result(self) -> Result<(), ServeError> {
        self.rx.recv().expect("server encode worker exited early")
    }

    /// Blocks until the insert is published (or cancelled by a remove).
    /// Panics on a durability failure; use [`result`](Self::result) on
    /// durable servers to handle it typed.
    pub fn wait(self) {
        self.result().expect("durable insert failed");
    }
}

/// Resolves with whether the removed id existed (encoded or pending).
pub struct RemoveHandle {
    rx: Receiver<Result<bool, ServeError>>,
}

impl RemoveHandle {
    /// Blocks until the remove is applied, returning whether the id
    /// existed — or the durability failure that blocked the remove (the
    /// index keeps the row in that case; un-logged is un-applied).
    pub fn result(self) -> Result<bool, ServeError> {
        self.rx.recv().expect("server encode worker exited early")
    }

    /// Blocks until the remove is applied; true when the id existed.
    /// Panics on a durability failure; use [`result`](Self::result) on
    /// durable servers to handle it typed.
    pub fn wait(self) -> bool {
        self.result().expect("durable remove failed")
    }
}

/// The running pipeline: one encode worker, N shard-pinned scan workers,
/// the shared index between them. `Sync` — share it behind an [`Arc`] and
/// hit it from as many threads as the load offers.
pub struct Server {
    index: Arc<RwLock<ShardedIndex>>,
    encode_tx: Option<Sender<Request>>,
    encode_worker: Option<JoinHandle<()>>,
    scan_txs: Vec<Sender<ScanJob>>,
    scan_workers: Vec<JoinHandle<()>>,
    worker_ranges: Vec<Range<usize>>,
    worker_failed: Arc<Vec<AtomicBool>>,
    obs: Arc<ServerObs>,
    has_model: bool,
}

impl Server {
    /// Starts a server encoding with (a replica of) `model` over an
    /// initially-empty index. The clock drives the coalescer's timer
    /// flushes — [`WallClock`](crate::WallClock) in production, a shared
    /// [`VirtualClock`](crate::VirtualClock) in tests and load probes.
    pub fn new(model: &GraphBinMatch, cfg: ServerConfig, clock: Arc<dyn Clock>) -> Server {
        let worker_model = WorkerModel {
            spec: ModelSpec::capture(model),
            counter: model.encoder().counter(),
        };
        Server::start(
            Some(worker_model),
            ShardedIndex::new(cfg.index),
            cfg,
            clock,
            None,
        )
    }

    /// Starts a **durable** server over recovered state: `index` and `wal`
    /// come from [`recover`](crate::persist::recover) (or a fresh
    /// [`Wal::create`] on first boot). Every acked insert/remove is
    /// appended to the WAL before it touches the index, so a crash at any
    /// point recovers rank-identically to the acked history. Pass a model
    /// to serve encodes too, or `None` for a row-publish/query server.
    pub fn durable(
        model: Option<&GraphBinMatch>,
        index: ShardedIndex,
        cfg: ServerConfig,
        clock: Arc<dyn Clock>,
        wal: Wal,
    ) -> Server {
        let worker_model = model.map(|m| WorkerModel {
            spec: ModelSpec::capture(m),
            counter: m.encoder().counter(),
        });
        Server::start(worker_model, index, cfg, clock, Some(wal))
    }

    /// Starts a server over precomputed unit-norm rows (row `i` gets id
    /// `i`) with no model attached: [`query`](Self::query),
    /// [`insert_row`](Self::insert_row) and [`remove`](Self::remove) serve
    /// normally, while [`submit`](Self::submit)/[`insert`](Self::insert)
    /// panic — there is nothing to encode with.
    pub fn from_rows(
        rows: &[f32],
        hidden: usize,
        cfg: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Server {
        Server::start(
            None,
            ShardedIndex::from_rows(rows, hidden, cfg.index),
            cfg,
            clock,
            None,
        )
    }

    fn start(
        model: Option<WorkerModel>,
        index: ShardedIndex,
        cfg: ServerConfig,
        clock: Arc<dyn Clock>,
        wal: Option<Wal>,
    ) -> Server {
        let has_model = model.is_some();
        let index = Arc::new(RwLock::new(index));
        let num_shards = index.read().unwrap().num_shards();
        let workers = cfg.scan_workers.clamp(1, num_shards);
        let obs = Arc::new(ServerObs::new(cfg.obs, Arc::clone(&clock)));
        let worker_failed: Arc<Vec<AtomicBool>> =
            Arc::new((0..workers).map(|_| AtomicBool::new(false)).collect());
        let mut scan_txs = Vec::with_capacity(workers);
        let mut scan_workers = Vec::with_capacity(workers);
        let mut worker_ranges = Vec::with_capacity(workers);
        for w in 0..workers {
            // contiguous near-even ranges covering 0..num_shards exactly
            let range = (w * num_shards / workers)..((w + 1) * num_shards / workers);
            let (tx, rx) = mpsc::channel::<ScanJob>();
            let idx = Arc::clone(&index);
            let failed = Arc::clone(&worker_failed);
            let shards = range.clone();
            let wobs = Arc::clone(&obs);
            worker_ranges.push(range);
            scan_txs.push(tx);
            scan_workers.push(std::thread::spawn(move || {
                scan_worker_loop(rx, idx, shards, failed, w, wobs)
            }));
        }
        let (encode_tx, encode_rx) = mpsc::channel::<Request>();
        let idx = Arc::clone(&index);
        let coalescer = cfg.coalescer;
        let eobs = Arc::clone(&obs);
        let encode_worker = std::thread::spawn(move || {
            encode_worker_loop(encode_rx, model, idx, clock, coalescer, wal, eobs)
        });
        Server {
            index,
            encode_tx: Some(encode_tx),
            encode_worker: Some(encode_worker),
            scan_txs,
            scan_workers,
            worker_ranges,
            worker_failed,
            obs,
            has_model,
        }
    }

    fn send(&self, req: Request) {
        self.encode_tx
            .as_ref()
            .expect("server already shut down")
            .send(req)
            .expect("encode worker alive while the server holds its sender");
    }

    /// Submits a graph for coalesced encoding; the handle resolves with
    /// its embedding row when the batch flushes. Panics on a model-less
    /// ([`from_rows`](Self::from_rows)) server.
    pub fn submit(&self, graph: EncodedGraph) -> EncodeHandle {
        assert!(
            self.has_model,
            "submit requires a server built with a model"
        );
        let (tx, rx) = mpsc::sync_channel(1);
        self.send(Request::Encode {
            graph: Box::new(graph),
            dest: EncodeDest::Reply(tx),
        });
        EncodeHandle { rx }
    }

    /// Encodes `graph` through the coalescer and publishes its row into
    /// the index under `id` (replacing any existing row — id routing is
    /// the index's stable hash). Panics on a model-less server.
    pub fn insert(&self, id: GraphId, graph: EncodedGraph) -> InsertHandle {
        assert!(
            self.has_model,
            "insert requires a server built with a model"
        );
        let (tx, rx) = mpsc::sync_channel(1);
        self.send(Request::Encode {
            graph: Box::new(graph),
            dest: EncodeDest::Publish { id, done: tx },
        });
        InsertHandle { rx }
    }

    /// Publishes a precomputed embedding row under `id` — no encode, but
    /// still routed through the encode worker so index writes stay
    /// single-writer and ordered with coalescing inserts for the same id.
    pub fn insert_row(&self, id: GraphId, row: Vec<f32>) -> InsertHandle {
        let (tx, rx) = mpsc::sync_channel(1);
        self.send(Request::InsertRow { id, row, done: tx });
        InsertHandle { rx }
    }

    /// Removes `id`: cancels a still-coalescing insert for it (resolving
    /// that insert's handle) and deletes its encoded row. The handle
    /// resolves with whether the id existed.
    pub fn remove(&self, id: GraphId) -> RemoveHandle {
        let (tx, rx) = mpsc::sync_channel(1);
        self.send(Request::Remove { id, done: tx });
        RemoveHandle { rx }
    }

    /// Exact top-K cosine neighbours of `query`, served by the scan-worker
    /// fan-out: one shard-range partial per worker, k-way merged here.
    /// Identical — ids, scores, tie order — to
    /// [`ShardedIndex::query`] on the same index state. A retired
    /// (panicked) worker's shard range fails over to an inline scan on
    /// this thread; merge associativity keeps the degraded answer exact.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<(GraphId, f32)> {
        let wall = std::time::Instant::now();
        let sampled = self.obs.tracer.sample();
        let t_fan = self.obs.clock.now();
        let q: Arc<[f32]> = query.into();
        let mut replies: Vec<Option<Receiver<Partial>>> = Vec::with_capacity(self.scan_txs.len());
        for (w, tx) in self.scan_txs.iter().enumerate() {
            if self.worker_failed[w].load(Ordering::SeqCst) {
                replies.push(None); // known dead: scan its range inline
                continue;
            }
            let (rtx, rrx) = mpsc::sync_channel(1);
            let sent = tx.send(ScanJob::Query {
                query: Arc::clone(&q),
                k,
                reply: rtx,
            });
            match sent {
                Ok(()) => replies.push(Some(rrx)),
                Err(_) => {
                    // the worker hung up mid-retirement; remember and fail over
                    self.worker_failed[w].store(true, Ordering::SeqCst);
                    replies.push(None);
                }
            }
        }
        let mut inline_scans = 0u64;
        let partials: Vec<Partial> = replies
            .into_iter()
            .enumerate()
            .map(|(w, rx)| match rx.map(|rx| rx.recv()) {
                Some(Ok(partial)) => partial,
                answered => {
                    if answered.is_some() {
                        // died between accepting the job and replying
                        self.worker_failed[w].store(true, Ordering::SeqCst);
                    }
                    inline_scans += 1;
                    self.index.read().unwrap().query_shards_stats(
                        self.worker_ranges[w].clone(),
                        &q,
                        k,
                    )
                }
            })
            .collect();
        let t_merge = self.obs.clock.now();
        let merge_wall = std::time::Instant::now();
        let (lists, stats): (Vec<_>, Vec<_>) = partials.into_iter().unzip();
        let merged = gbm_tensor::merge_ranked(&lists, k);
        if let Some(m) = &self.obs.metrics {
            let mut total = ScanStats::default();
            for s in &stats {
                total.merge(s);
            }
            m.queries.inc();
            m.record_scan(&total);
            m.failover_inline_scans.add(inline_scans);
            m.merge_us.record(merge_wall.elapsed().as_micros() as u64);
            m.query_us.record(wall.elapsed().as_micros() as u64);
        }
        if let Some(seq) = sampled {
            // stage timestamps come from the injected clock, so a probe
            // driving a VirtualClock gets bit-reproducible spans
            let t_end = self.obs.clock.now();
            let mut span = TraceSpan::new("query", seq, t_fan);
            for (w, s) in stats.iter().enumerate() {
                span.stage(&format!("scan.worker{w}"), t_fan, t_merge)
                    .field("shards", s.shards)
                    .field("rows_scanned", s.rows_scanned)
                    .field("cells_probed", s.cells_probed)
                    .field("survivors", s.survivors)
                    .field("scan_bytes", s.scan_bytes);
            }
            span.stage("merge", t_merge, t_end)
                .field("partials", stats.len() as u64)
                .field("k", k as u64)
                .field("inline_failovers", inline_scans);
            span.finish(t_end);
            self.obs.tracer.record(span);
        }
        merged
    }

    /// A point-in-time snapshot of every serving + durability metric:
    /// encode flushes and forward latency, scan work (rows, IVF cells,
    /// survivors, bytes), merge and whole-query latency, WAL append/fsync
    /// timings and retries, recovery replay stats, and worker failover
    /// counters. Empty sections when the server was built with
    /// [`ObsConfig::metrics`] = false.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.registry.snapshot()
    }

    /// Drains every trace span sampled so far (oldest first). Empty unless
    /// the server was built with a nonzero [`ObsConfig::trace_sample`].
    pub fn take_traces(&self) -> Vec<TraceSpan> {
        self.obs.tracer.take()
    }

    /// Seeds the `recover.*` metrics from the recovery this server was
    /// booted from (capture [`Recovery::stats`] before moving its
    /// `index`/`wal` into [`durable`](Self::durable)), so one exposition
    /// snapshot tells the whole story: what replay cost at startup plus
    /// everything served since.
    pub fn record_recovery(&self, stats: RecoveryStats) {
        if let Some(m) = &self.obs.metrics {
            m.recover_replayed_ops.add(stats.replayed_ops as u64);
            m.recover_torn_bytes.add(stats.torn_bytes as u64);
            m.recover_replay_us.add(stats.replay_us);
        }
    }

    /// Test-only: injects a panic into scan worker `w`'s job handler,
    /// driving the retire-and-fail-over path deterministically.
    #[cfg(any(test, feature = "test-fixtures"))]
    pub fn poison_scan_worker(&self, w: usize) {
        let _ = self.scan_txs[w].send(ScanJob::Poison);
    }

    /// Encoded (searchable) rows right now.
    pub fn num_encoded(&self) -> usize {
        self.index.read().unwrap().num_encoded()
    }

    /// Every encoded id, ascending.
    pub fn ids(&self) -> Vec<GraphId> {
        self.index.read().unwrap().ids()
    }

    /// The published embedding row of `id`, if present.
    pub fn embedding(&self, id: GraphId) -> Option<Tensor> {
        self.index.read().unwrap().embedding(id)
    }

    /// Scan worker threads actually running (after clamping to the shard
    /// count).
    pub fn scan_worker_count(&self) -> usize {
        self.scan_txs.len()
    }

    /// Gracefully stops the pipeline: the encode worker force-flushes
    /// whatever is still coalescing (resolving every outstanding handle),
    /// reports its end-of-life accounting, and every thread joins.
    pub fn shutdown(mut self) -> ServerReport {
        let (tx, rx) = mpsc::sync_channel(1);
        self.send(Request::Shutdown { report: tx });
        let mut report = rx.recv().expect("encode worker reports before exiting");
        report.degraded_scan_workers = self
            .worker_failed
            .iter()
            .filter(|f| f.load(Ordering::SeqCst))
            .count();
        self.join_workers();
        report
    }

    fn join_workers(&mut self) {
        // dropping the senders is the stop signal; join for a clean exit
        drop(self.encode_tx.take());
        if let Some(h) = self.encode_worker.take() {
            let _ = h.join();
        }
        self.scan_txs.clear();
        for h in self.scan_workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    /// Dropping without [`shutdown`](Self::shutdown) still drains: the
    /// worker force-flushes on disconnect, then everything joins.
    fn drop(&mut self) {
        self.join_workers();
    }
}

fn scan_worker_loop(
    rx: Receiver<ScanJob>,
    index: Arc<RwLock<ShardedIndex>>,
    shards: Range<usize>,
    failed: Arc<Vec<AtomicBool>>,
    me: usize,
    obs: Arc<ServerObs>,
) {
    while let Ok(job) = rx.recv() {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match job {
            ScanJob::Query { query, k, reply } => {
                let partial = index
                    .read()
                    .unwrap()
                    .query_shards_stats(shards.clone(), &query, k);
                // a caller that gave up on the query just drops its receiver
                let _ = reply.send(partial);
            }
            // resume_unwind (vs panic!) skips the panic hook's backtrace
            // noise — the unwind itself is the injected fault
            #[cfg(any(test, feature = "test-fixtures"))]
            ScanJob::Poison => std::panic::resume_unwind(Box::new("injected scan-worker fault")),
        }));
        if outcome.is_err() {
            // retire this worker: queries fail over to inline scans of its
            // shard range (only a *read* lock was held — no lock poisoning,
            // the index stays healthy for everyone else)
            failed[me].store(true, Ordering::SeqCst);
            if let Some(m) = &obs.metrics {
                m.worker_panics.inc();
                m.workers_degraded.add(1);
            }
            return;
        }
    }
}

/// Append attempts per op before a WAL failure becomes terminal; the tail
/// self-repairs (truncate to the durable frontier) between attempts.
pub const WAL_RETRIES: u32 = 3;

/// Backoff before the first retry; quadruples per subsequent attempt.
const WAL_RETRY_BACKOFF: Duration = Duration::from_micros(100);

/// Appends `op` with bounded retry-with-backoff. `Ok` means the op is in
/// the log (write-ahead: the caller may now apply it); `Err` means it
/// never made it and must not be applied. Successful appends record their
/// cumulative append/fsync time deltas into the WAL histograms; every
/// failed attempt counts one `wal.append_retries`.
fn durable_append(
    wal: &mut Option<Wal>,
    op: &WalOp,
    metrics: Option<&ServeMetrics>,
) -> Result<(), ServeError> {
    let Some(w) = wal.as_mut() else {
        return Ok(()); // non-durable server: every op "logs" trivially
    };
    let before = w.state();
    let mut backoff = WAL_RETRY_BACKOFF;
    let mut last: Option<StoreError> = None;
    for attempt in 0..WAL_RETRIES {
        match w.append(op) {
            Ok(_) => {
                if let Some(m) = metrics {
                    let after = w.state();
                    m.wal_appends.inc();
                    m.wal_append_us
                        .record(after.append_us.saturating_sub(before.append_us));
                    m.wal_sync_us
                        .record(after.sync_us.saturating_sub(before.sync_us));
                }
                return Ok(());
            }
            Err(e) => {
                last = Some(e);
                if let Some(m) = metrics {
                    m.wal_append_retries.inc();
                }
                if attempt + 1 < WAL_RETRIES {
                    std::thread::sleep(backoff);
                    backoff *= 4;
                }
            }
        }
    }
    Err(ServeError::Durability {
        attempts: WAL_RETRIES,
        source: last.expect("loop ran at least once"),
    })
}

/// How long the encode worker blocks on its channel before re-checking the
/// timer-flush deadline — the staleness bound on `max_wait` enforcement.
const WORKER_POLL: Duration = Duration::from_millis(1);

fn encode_worker_loop(
    rx: Receiver<Request>,
    model: Option<WorkerModel>,
    index: Arc<RwLock<ShardedIndex>>,
    clock: Arc<dyn Clock>,
    cfg: CoalescerConfig,
    mut wal: Option<Wal>,
    obs: Arc<ServerObs>,
) {
    // the replica is built here, inside the worker thread: the model's
    // parameter store is not Send, so it crosses the boundary as a
    // (config, weight snapshot) ModelSpec plus the shared counter and is
    // reconstituted on arrival
    let replica = model.map(|m| {
        m.spec
            .build(Arc::clone(&m.counter))
            .expect("a spec captured from a live model rebuilds")
    });
    let mut co = EncodeCoalescer::new(cfg);
    let max_batch = co.config().max_batch;
    let mut dests: HashMap<Ticket, EncodeDest> = HashMap::new();
    // the live publish ticket per id, so a remove (or a replacing insert)
    // can cancel a still-coalescing insert for the same id
    let mut publish_ticket: HashMap<GraphId, Ticket> = HashMap::new();

    // One coalescer flush: drain the queue, run the batched forward with NO
    // lock held (scans keep serving), then publish/reply row by row — only
    // the O(hidden) insert_row takes the write lock.
    #[allow(clippy::too_many_arguments)]
    fn flush(
        co: &mut EncodeCoalescer,
        trigger: FlushTrigger,
        replica: &Option<GraphBinMatch>,
        dests: &mut HashMap<Ticket, EncodeDest>,
        publish_ticket: &mut HashMap<GraphId, Ticket>,
        index: &RwLock<ShardedIndex>,
        wal: &mut Option<Wal>,
        obs: &ServerObs,
    ) {
        let Some(batch) = co.begin_flush() else {
            return;
        };
        co.note_flush_trigger(trigger);
        let model = replica
            .as_ref()
            .expect("encode requests only reach a server built with a model");
        let flush_tick = obs.clock.now();
        let enqueued = batch.enqueued_at();
        let forward_wall = std::time::Instant::now();
        let rows = model.encoder().embed_batch(&batch.graphs());
        let forward_us = forward_wall.elapsed().as_micros() as u64;
        if let Some(m) = &obs.metrics {
            m.encode_flushes.inc();
            m.encode_graphs.add(batch.len() as u64);
            m.encode_forward_us.record(forward_us);
            m.encode_batch_fill.record(batch.len() as u64);
            for &at in &enqueued {
                m.encode_wait_ticks.record(flush_tick.saturating_sub(at));
            }
        }
        if let Some(seq) = obs.tracer.sample() {
            let mut span = TraceSpan::new("encode_flush", seq, flush_tick);
            let oldest = enqueued.iter().copied().min().unwrap_or(flush_tick);
            span.stage("coalesce.wait", oldest, flush_tick)
                .field("batch_size", enqueued.len() as u64)
                .field(
                    "max_wait_ticks",
                    enqueued
                        .iter()
                        .map(|&at| flush_tick.saturating_sub(at))
                        .max()
                        .unwrap_or(0),
                );
            span.stage("encode.forward", flush_tick, obs.clock.now())
                .field("forward_us", forward_us);
            span.finish(obs.clock.now());
            obs.tracer.record(span);
        }
        let tickets = batch.tickets();
        co.complete_flush(batch, rows);
        for t in tickets {
            let Some(dest) = dests.remove(&t) else {
                continue; // cancelled earlier; its handle already resolved
            };
            let row = co.poll(t);
            match dest {
                EncodeDest::Reply(tx) => {
                    if let Some(row) = row {
                        // a caller that dropped its handle just loses the row
                        let _ = tx.send(row);
                    }
                }
                EncodeDest::Publish { id, done } => {
                    let result = match row {
                        Some(row) => {
                            if publish_ticket.get(&id) == Some(&t) {
                                publish_ticket.remove(&id);
                            }
                            // write-ahead: the row only lands in the index
                            // once the WAL has it
                            let op = WalOp::Insert {
                                id,
                                row: row.data().to_vec(),
                            };
                            durable_append(wal, &op, obs.metrics.as_ref()).map(|()| {
                                index.write().unwrap().insert_row(id, row.data());
                            })
                        }
                        None => Ok(()), // cancelled between flush phases
                    };
                    let _ = done.send(result);
                }
            }
        }
    }

    // a cancelled publish still resolves its insert handle — nothing hangs
    fn cancel_publish(
        co: &mut EncodeCoalescer,
        dests: &mut HashMap<Ticket, EncodeDest>,
        ticket: Ticket,
    ) {
        co.cancel(ticket);
        if let Some(EncodeDest::Publish { done, .. }) = dests.remove(&ticket) {
            // a cancelled insert never reached the WAL or the index: that
            // is a successful no-op, not a durability failure
            let _ = done.send(Ok(()));
        }
    }

    let mut shutdown_report: Option<SyncSender<ServerReport>> = None;
    'serve: loop {
        let mut next = match rx.recv_timeout(WORKER_POLL) {
            Ok(req) => Some(req),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break 'serve,
        };
        // handle the received request, then drain the burst behind it
        while let Some(req) = next {
            match req {
                Request::Encode { graph, dest } => {
                    let t = co.enqueue(*graph, &*clock);
                    if let EncodeDest::Publish { id, .. } = &dest {
                        if let Some(old) = publish_ticket.insert(*id, t) {
                            // replaced while still coalescing: the newer
                            // insert wins, the older handle resolves now
                            cancel_publish(&mut co, &mut dests, old);
                        }
                    }
                    dests.insert(t, dest);
                    if co.pending_len() >= max_batch {
                        flush(
                            &mut co,
                            FlushTrigger::Full,
                            &replica,
                            &mut dests,
                            &mut publish_ticket,
                            &index,
                            &mut wal,
                            &obs,
                        );
                    }
                }
                Request::InsertRow { id, row, done } => {
                    if let Some(old) = publish_ticket.remove(&id) {
                        cancel_publish(&mut co, &mut dests, old);
                    }
                    // write-ahead: log first, apply only on success
                    let op = WalOp::Insert { id, row };
                    let result = durable_append(&mut wal, &op, obs.metrics.as_ref()).map(|()| {
                        let WalOp::Insert { row, .. } = &op else {
                            unreachable!("op constructed as Insert above")
                        };
                        index.write().unwrap().insert_row(id, row);
                    });
                    let _ = done.send(result);
                }
                Request::Remove { id, done } => {
                    // write-ahead: a remove that cannot be logged is not
                    // applied (and does not cancel a pending insert either)
                    let result =
                        durable_append(&mut wal, &WalOp::Remove { id }, obs.metrics.as_ref()).map(
                            |()| {
                                let mut existed = false;
                                if let Some(t) = publish_ticket.remove(&id) {
                                    cancel_publish(&mut co, &mut dests, t);
                                    existed = true;
                                }
                                existed | index.write().unwrap().remove(id)
                            },
                        );
                    let _ = done.send(result);
                }
                Request::Shutdown { report } => {
                    shutdown_report = Some(report);
                    break;
                }
            }
            next = rx.try_recv().ok();
        }
        if shutdown_report.is_some() {
            break 'serve;
        }
        if co.flush_due(&*clock) {
            flush(
                &mut co,
                FlushTrigger::Timer,
                &replica,
                &mut dests,
                &mut publish_ticket,
                &index,
                &mut wal,
                &obs,
            );
        }
    }
    // final drain: whatever is still coalescing flushes now, so every
    // outstanding handle resolves before the worker exits
    if co.pending_len() > 0 {
        flush(
            &mut co,
            FlushTrigger::Forced,
            &replica,
            &mut dests,
            &mut publish_ticket,
            &index,
            &mut wal,
            &obs,
        );
    }
    // final sync: a failure leaves `unsynced` nonzero in the reported
    // state — a visibly dirty shutdown, never one silently claimed clean
    if let Some(w) = wal.as_mut() {
        let _ = w.sync();
    }
    if let Some(report) = shutdown_report {
        let _ = report.send(ServerReport {
            coalescer: co.stats().clone(),
            pending: co.pending_len(),
            in_flight: co.in_flight_len(),
            ready: co.ready_len(),
            unresolved: dests.len(),
            wal: wal.as_ref().map(|w| w.state()),
            degraded_scan_workers: 0, // filled in by Server::shutdown
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::quantized::ScanPrecision;
    use crate::testfix::{model, toy};

    fn synth_rows(n: usize, hidden: usize, seed: u64) -> Vec<f32> {
        // splitmix64, the same mixer the index routes with
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..n * hidden)
            .map(|_| (next() % 2000) as f32 / 1000.0 - 1.0)
            .collect()
    }

    /// The headline acceptance criterion: the fanned-out concurrent query
    /// answers **exactly** — ids, scores, tie order — like the
    /// single-threaded `ShardedIndex::query`, for every shard count ×
    /// precision × worker count combination.
    #[test]
    fn concurrent_query_equals_single_threaded_across_shards_and_precisions() {
        let hidden = 8;
        let n = 500;
        let rows = synth_rows(n, hidden, 21);
        let queries = [
            rows[..hidden].to_vec(),
            rows[40 * hidden..41 * hidden].to_vec(),
        ];
        for shards in [1usize, 2, 7] {
            for precision in [
                ScanPrecision::F32,
                ScanPrecision::Int8 { widen: 2 },
                // approximate, but deterministic: the concurrent fan-out
                // must still equal the single-threaded scan bit for bit
                ScanPrecision::Ivf {
                    nprobe: 2,
                    widen: 2,
                },
            ] {
                let icfg = IndexConfig {
                    num_shards: shards,
                    encode_batch: 8,
                    precision,
                    ..Default::default()
                };
                let reference = ShardedIndex::from_rows(&rows, hidden, icfg);
                for workers in [1usize, 2, 3] {
                    let server = Server::from_rows(
                        &rows,
                        hidden,
                        ServerConfig {
                            scan_workers: workers,
                            index: icfg,
                            ..Default::default()
                        },
                        Arc::new(VirtualClock::new()),
                    );
                    assert_eq!(server.scan_worker_count(), workers.min(shards));
                    for q in &queries {
                        for k in [1usize, 10, n + 3] {
                            assert_eq!(
                                server.query(q, k),
                                reference.query(q, k),
                                "shards={shards} workers={workers} k={k} \
                                 precision={precision:?}"
                            );
                        }
                    }
                    let report = server.shutdown();
                    assert!(report.is_drained(), "query-only server leaks: {report:?}");
                }
            }
        }
    }

    /// Oneshot semantics: `submit` resolves with the same row a direct
    /// solo encode produces, and a full coalescer batch flushes without
    /// the clock moving.
    #[test]
    fn submit_resolves_with_the_coalesced_embedding() {
        let (pool, vocab) = toy(4);
        let m = model(vocab, 31);
        let server = Server::new(
            &m,
            ServerConfig {
                coalescer: CoalescerConfig {
                    max_batch: 4,
                    max_wait: 1_000_000,
                },
                ..Default::default()
            },
            Arc::new(VirtualClock::new()),
        );
        let handles: Vec<EncodeHandle> = pool.iter().map(|g| server.submit(g.clone())).collect();
        for (i, h) in handles.into_iter().enumerate() {
            let got = h.wait();
            let solo = m.encoder().embed(&pool[i]);
            for (a, b) in got.data().iter().zip(solo.data().iter()) {
                assert!((a - b).abs() < 1e-4, "graph {i}: coalesced {a} vs solo {b}");
            }
        }
        let report = server.shutdown();
        assert!(report.is_drained(), "{report:?}");
        assert_eq!(report.coalescer.full_flushes, 1, "one full batch");
        assert_eq!(report.coalescer.encoded, 4);
    }

    /// Timer flushes fire off the injected clock, not wall time: a lone
    /// request sits coalescing while the virtual clock is still, and
    /// resolves once the clock crosses `max_wait`.
    #[test]
    fn timer_flush_fires_on_the_injected_clock() {
        let (pool, vocab) = toy(1);
        let m = model(vocab, 32);
        let clock = Arc::new(VirtualClock::new());
        let server = Server::new(
            &m,
            ServerConfig {
                coalescer: CoalescerConfig {
                    max_batch: 100,
                    max_wait: 5,
                },
                ..Default::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let h = server.insert(7, pool[0].clone());
        // the virtual clock has not moved: the worker polls but never
        // reaches the deadline, so the request must still be coalescing
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(server.num_encoded(), 0, "no flush before the deadline");
        clock.advance(5);
        h.wait(); // resolves via the timer flush
        assert_eq!(server.num_encoded(), 1);
        assert!(server.embedding(7).is_some());
        let report = server.shutdown();
        assert!(report.is_drained(), "{report:?}");
        assert_eq!(report.coalescer.timer_flushes, 1);
    }

    /// Insert/remove lifecycle through the server: publish, replace,
    /// remove-of-encoded, remove-of-pending (which must cancel the ticket
    /// AND resolve the insert handle), and remove-of-absent.
    #[test]
    fn insert_remove_lifecycle_never_hangs_or_leaks() {
        let (pool, vocab) = toy(5);
        let m = model(vocab, 33);
        let clock = Arc::new(VirtualClock::new());
        let server = Server::new(
            &m,
            ServerConfig {
                coalescer: CoalescerConfig {
                    max_batch: 2,
                    max_wait: 1_000_000,
                },
                index: IndexConfig {
                    num_shards: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        // two inserts fill a batch and publish
        let h0 = server.insert(0, pool[0].clone());
        let h1 = server.insert(1, pool[1].clone());
        h0.wait();
        h1.wait();
        assert_eq!(server.ids(), vec![0, 1]);
        // a query served by the worker fan-out sees the published rows
        let q = server.embedding(0).unwrap();
        let top = server.query(q.data(), 1);
        assert_eq!(top[0].0, 0, "a row is its own nearest neighbour");
        // re-insert replaces: same id, still two rows
        let h = server.insert(1, pool[2].clone());
        let h2 = server.insert(2, pool[3].clone());
        h.wait();
        h2.wait();
        assert_eq!(server.ids(), vec![0, 1, 2]);
        // remove of an encoded row
        assert!(server.remove(1).wait());
        assert_eq!(server.ids(), vec![0, 2]);
        assert!(!server.remove(1).wait(), "double remove reports absence");
        // remove of a *pending* insert: batch never fills, clock never
        // moves — only the cancel can resolve the handle
        let pending = server.insert(9, pool[4].clone());
        assert!(server.remove(9).wait(), "pending insert counts as existing");
        pending.wait(); // resolved by the cancel, not a flush
        assert!(server.embedding(9).is_none(), "cancelled row never lands");
        // a replacing insert also resolves the handle it replaces
        let old = server.insert(5, pool[0].clone());
        let new = server.insert(5, pool[1].clone());
        old.wait();
        let report = server.shutdown(); // forced flush publishes id 5
        drop(new);
        assert!(report.is_drained(), "{report:?}");
        assert!(report.coalescer.forced_flushes >= 1);
    }

    /// `insert_row` publishes precomputed rows through the same
    /// single-writer path, usable on a model-less server.
    #[test]
    fn insert_row_serves_on_a_model_less_server() {
        let hidden = 4;
        let rows = synth_rows(6, hidden, 44);
        let server = Server::from_rows(
            &rows,
            hidden,
            ServerConfig::default(),
            Arc::new(VirtualClock::new()),
        );
        assert_eq!(server.num_encoded(), 6);
        server.insert_row(100, rows[..hidden].to_vec()).wait();
        assert_eq!(server.num_encoded(), 7);
        let top = server.query(&rows[..hidden], 2);
        // id 0 and id 100 share the same row: exact tie, id order decides
        assert_eq!(top[0].1, top[1].1);
        assert!(server.remove(100).wait());
        let report = server.shutdown();
        assert!(report.is_drained(), "{report:?}");
        assert_eq!(report.coalescer.flushes, 0, "no encodes ever ran");
    }

    /// The seeded concurrency stress: submitter threads (disjoint id
    /// spaces), a remover pass, and querier threads hammer one shared
    /// server. Afterwards: no ticket leaks, no lost replies (every handle
    /// resolved), and the final index state equals a serially-replayed
    /// reference — ids exactly, rows within batched-encode tolerance.
    #[test]
    fn concurrent_stress_replay_matches_serial() {
        let (pool, vocab) = toy(6);
        let m = model(vocab, 35);
        let clock = Arc::new(VirtualClock::new());
        let server = Arc::new(Server::new(
            &m,
            ServerConfig {
                scan_workers: 2,
                coalescer: CoalescerConfig {
                    max_batch: 4,
                    max_wait: 2,
                },
                index: IndexConfig {
                    num_shards: 3,
                    encode_batch: 4,
                    ..Default::default()
                },
                ..Default::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        const PER_THREAD: usize = 12;
        let mut threads = Vec::new();
        for t in 0..3u64 {
            let server = Arc::clone(&server);
            let pool = pool.clone();
            threads.push(std::thread::spawn(move || {
                // insert a private id range, then remove every third id;
                // per-thread state is deterministic whatever the schedule
                let ids: Vec<GraphId> = (0..PER_THREAD as u64).map(|i| t * 1000 + i).collect();
                let handles: Vec<InsertHandle> = ids
                    .iter()
                    .map(|&id| server.insert(id, pool[id as usize % pool.len()].clone()))
                    .collect();
                for h in handles {
                    h.wait();
                }
                for &id in ids.iter().step_by(3) {
                    assert!(server.remove(id).wait(), "own insert must exist");
                }
            }));
        }
        for q in 0..2usize {
            let server = Arc::clone(&server);
            threads.push(std::thread::spawn(move || {
                for i in 0..40 {
                    // queries against whatever is published right now must
                    // stay well-formed: ranked, no duplicates, len ≤ k
                    if let Some(row) = server.embedding((i % 5) as GraphId) {
                        let k = 3 + q;
                        let top = server.query(row.data(), k);
                        assert!(top.len() <= k);
                        for w in top.windows(2) {
                            assert!(w[0].1 >= w[1].1, "ranked");
                            assert_ne!(w[0].0, w[1].0, "no duplicate ids");
                        }
                    }
                    std::thread::yield_now();
                }
            }));
        }
        // keep virtual time moving so timer flushes can fire under load
        {
            let clock = Arc::clone(&clock);
            let ticker = std::thread::spawn(move || {
                for _ in 0..200 {
                    clock.advance(1);
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            for th in threads {
                th.join().expect("stress thread panicked");
            }
            ticker.join().unwrap();
        }
        let server = Arc::into_inner(server).expect("all thread clones joined");
        let got_ids = server.ids();
        let got_rows: Vec<Tensor> = got_ids
            .iter()
            .map(|&id| server.embedding(id).expect("listed id has a row"))
            .collect();
        let report = server.shutdown();
        assert!(report.is_drained(), "leaked state at shutdown: {report:?}");
        assert_eq!(
            report.coalescer.encoded,
            3 * PER_THREAD,
            "every insert was encoded exactly once (cancelled-before-encode \
             would under-count, duplicates would over-count)"
        );
        // serial replay: disjoint per-thread id spaces make the final state
        // independent of the interleaving, so one fixed order reproduces it
        let mut reference = ShardedIndex::new(IndexConfig {
            num_shards: 3,
            encode_batch: 4,
            ..Default::default()
        });
        for t in 0..3u64 {
            for i in 0..PER_THREAD as u64 {
                let id = t * 1000 + i;
                reference.insert(&m, id, pool[id as usize % pool.len()].clone());
            }
        }
        reference.flush(&m);
        for t in 0..3u64 {
            for i in (0..PER_THREAD as u64).step_by(3) {
                assert!(reference.remove(t * 1000 + i));
            }
        }
        assert_eq!(got_ids, reference.ids(), "final id set matches the replay");
        for (id, row) in got_ids.iter().zip(&got_rows) {
            let want = reference.embedding(*id).unwrap();
            for (a, b) in row.data().iter().zip(want.data().iter()) {
                // both sides batched-encode, with different batch splits:
                // rows agree to batching tolerance, not bitwise
                assert!(
                    (a - b).abs() < 5e-4,
                    "id {id}: server row {a} vs replay row {b}"
                );
            }
        }
    }

    use crate::persist::{recover, DurabilityConfig};
    use gbm_store::{FaultPlan, FaultStorage, MemStorage, Storage};

    /// The durable lifecycle: boot from an empty directory, ack writes,
    /// die without shutdown (the "kill"), and recover rank-identical to a
    /// never-crashed serial replay of the acked ops; then resume serving
    /// on the recovered state and shut down provably clean.
    #[test]
    fn durable_server_survives_kill_and_recovers_rank_identical() {
        let hidden = 4;
        let rows = synth_rows(12, hidden, 77);
        let row = |i: usize| rows[i * hidden..(i + 1) * hidden].to_vec();
        let icfg = IndexConfig {
            num_shards: 3,
            encode_batch: 4,
            precision: ScanPrecision::Int8 { widen: 2 },
            ..Default::default()
        };
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let dcfg = DurabilityConfig::new("/srv");
        let rec = recover(Arc::clone(&storage), &dcfg, icfg).unwrap();
        let server = Server::durable(
            None,
            rec.index,
            ServerConfig {
                scan_workers: 2,
                index: icfg,
                ..Default::default()
            },
            Arc::new(VirtualClock::new()),
            rec.wal,
        );
        for i in 0..12usize {
            server.insert_row(i as GraphId, row(i)).wait();
        }
        assert!(server.remove(3).wait());
        assert!(!server.remove(99).wait(), "absent id still logs its remove");
        let served = server.query(&row(0), 5);
        // kill: drop without shutdown — acked ops are already in the WAL
        drop(server);

        let rec = recover(Arc::clone(&storage), &dcfg, icfg).unwrap();
        assert_eq!(rec.snapshot_seq, 0, "no checkpoint was ever taken");
        assert_eq!(rec.replayed_ops, 14, "12 inserts + 2 removes");
        let mut reference = ShardedIndex::new(icfg);
        for i in 0..12usize {
            reference.insert_row(i as GraphId, &row(i));
        }
        reference.remove(3);
        assert_eq!(rec.index.ids(), reference.ids());
        for k in [1usize, 5, 20] {
            assert_eq!(rec.index.query(&row(0), k), reference.query(&row(0), k));
        }
        assert_eq!(rec.index.query(&row(0), 5), served, "recovered = as-served");

        // resume serving on the recovered state; this time exit cleanly
        let server = Server::durable(
            None,
            rec.index,
            ServerConfig {
                index: icfg,
                ..Default::default()
            },
            Arc::new(VirtualClock::new()),
            rec.wal,
        );
        server.insert_row(50, row(0)).wait();
        let report = server.shutdown();
        assert!(report.is_drained(), "{report:?}");
        assert!(report.is_durable(), "clean shutdown syncs the WAL");
        let wal = report.wal.expect("durable server reports WAL state");
        assert_eq!(wal.next_seq, 16, "numbering continued across the crash");
        assert_eq!((wal.unsynced, wal.append_failures), (0, 0));
        assert_eq!(report.degraded_scan_workers, 0);
    }

    /// WAL fault handling end to end: a transient append failure is
    /// absorbed by the bounded retry; a persistent one surfaces as a typed
    /// [`ServeError::Durability`] on the handle and the index is left
    /// untouched (write-ahead: un-logged is un-applied); clearing the
    /// fault resumes service on the self-repaired tail, and recovery sees
    /// exactly the acked ops.
    #[test]
    fn wal_faults_retry_then_surface_typed_errors() {
        let hidden = 4;
        let rows = synth_rows(4, hidden, 88);
        let row = |i: usize| rows[i * hidden..(i + 1) * hidden].to_vec();
        let icfg = IndexConfig {
            num_shards: 2,
            encode_batch: 4,
            precision: ScanPrecision::F32,
            ..Default::default()
        };
        let faulty = Arc::new(FaultStorage::new(Arc::new(MemStorage::new())));
        let storage: Arc<dyn Storage> = Arc::clone(&faulty) as Arc<dyn Storage>;
        let dcfg = DurabilityConfig::new("/srv");
        let rec = recover(Arc::clone(&storage), &dcfg, icfg).unwrap();
        let server = Server::durable(
            None,
            rec.index,
            ServerConfig {
                index: icfg,
                ..Default::default()
            },
            Arc::new(VirtualClock::new()),
            rec.wal,
        );
        // one injected failure: the retry absorbs it, the caller sees Ok
        faulty.set_plan(FaultPlan {
            fail_next_appends: 1,
            ..Default::default()
        });
        server
            .insert_row(0, row(0))
            .result()
            .expect("retry succeeds");
        assert_eq!(server.num_encoded(), 1);
        // persistent failure: typed error, nothing applied
        faulty.set_plan(FaultPlan {
            fail_next_appends: u64::MAX,
            ..Default::default()
        });
        let err = server.insert_row(1, row(1)).result().unwrap_err();
        let ServeError::Durability { attempts, source } = err;
        assert_eq!(attempts, WAL_RETRIES);
        assert!(!source.is_corruption(), "an injected I/O fault, not rot");
        assert_eq!(server.num_encoded(), 1, "failed insert never lands");
        let err = server.remove(0).result().unwrap_err();
        assert!(matches!(err, ServeError::Durability { .. }));
        assert_eq!(server.num_encoded(), 1, "failed remove never applies");
        // fault cleared: the dirty tail self-repairs, service resumes
        faulty.set_plan(FaultPlan::default());
        server.insert_row(2, row(2)).wait();
        let report = server.shutdown();
        assert!(report.is_drained(), "{report:?}");
        assert!(report.is_durable());
        let wal = report.wal.unwrap();
        assert_eq!(
            wal.append_failures,
            1 + 2 * u64::from(WAL_RETRIES),
            "1 retried + 2 terminal ops' worth of failed attempts"
        );
        // recovery sees the acked ops and only those
        let rec = recover(storage, &dcfg, icfg).unwrap();
        assert_eq!(rec.index.ids(), vec![0, 2]);
        assert_eq!(rec.replayed_ops, 2);
    }

    /// A failing final fsync must be a *visibly* dirty shutdown.
    #[test]
    fn failed_final_sync_reports_a_dirty_shutdown() {
        let hidden = 4;
        let rows = synth_rows(1, hidden, 91);
        let icfg = IndexConfig::default();
        let faulty = Arc::new(FaultStorage::new(Arc::new(MemStorage::new())));
        let storage: Arc<dyn Storage> = Arc::clone(&faulty) as Arc<dyn Storage>;
        let rec = recover(storage, &DurabilityConfig::new("/srv"), icfg).unwrap();
        let server = Server::durable(
            None,
            rec.index,
            ServerConfig::default(),
            Arc::new(VirtualClock::new()),
            rec.wal,
        );
        server.insert_row(0, rows.clone()).wait();
        faulty.set_plan(FaultPlan {
            fail_next_syncs: 1,
            ..Default::default()
        });
        let report = server.shutdown();
        assert!(report.is_drained(), "drained is orthogonal to durable");
        assert!(!report.is_durable(), "failed fsync cannot claim clean");
        assert!(report.wal.unwrap().unsynced > 0);
    }

    /// Worker fault isolation: poisoned scan workers retire, their shard
    /// ranges fail over to inline scans, and every degraded answer stays
    /// **exactly** equal to the healthy single-threaded scan — down to
    /// losing all workers. Writes are unaffected, and the degradation is
    /// visible in the shutdown report.
    #[test]
    fn poisoned_scan_workers_fail_over_with_exact_rankings() {
        let hidden = 6;
        let n = 200;
        let rows = synth_rows(n, hidden, 99);
        let icfg = IndexConfig {
            num_shards: 7,
            encode_batch: 8,
            precision: ScanPrecision::Int8 { widen: 2 },
            ..Default::default()
        };
        let reference = ShardedIndex::from_rows(&rows, hidden, icfg);
        let server = Server::from_rows(
            &rows,
            hidden,
            ServerConfig {
                scan_workers: 3,
                index: icfg,
                ..Default::default()
            },
            Arc::new(VirtualClock::new()),
        );
        let q = rows[..hidden].to_vec();
        assert_eq!(server.query(&q, 10), reference.query(&q, 10), "healthy");
        server.poison_scan_worker(1);
        for k in [1usize, 10, n + 5] {
            assert_eq!(server.query(&q, k), reference.query(&q, k), "k={k}");
        }
        // losing every worker still serves (all ranges inline)
        server.poison_scan_worker(0);
        server.poison_scan_worker(2);
        assert_eq!(server.query(&q, 10), reference.query(&q, 10), "all dead");
        // the write path is a different thread: unaffected
        server.insert_row(5000, q.clone()).wait();
        assert!(server.remove(5000).wait());
        let report = server.shutdown();
        assert!(report.is_drained(), "{report:?}");
        assert_eq!(report.degraded_scan_workers, 3);
        assert!(report.wal.is_none(), "no WAL was attached");
        assert!(!report.is_durable(), "durability never claimed without one");
    }

    /// The tentpole acceptance criterion: one `Server::metrics()` snapshot
    /// covers encode, scan, merge, WAL, recovery, and failover — every
    /// counter and histogram the pipeline claims to record is present and
    /// consistent with the load that was driven through it.
    #[test]
    fn metrics_snapshot_covers_encode_scan_merge_wal_and_failover() {
        let (pool, vocab) = toy(6);
        let m = model(vocab, 51);
        let icfg = IndexConfig {
            num_shards: 4,
            encode_batch: 4,
            precision: ScanPrecision::Int8 { widen: 2 },
            ..Default::default()
        };
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let dcfg = DurabilityConfig::new("/srv");
        let rec = recover(Arc::clone(&storage), &dcfg, icfg).unwrap();
        let rstats = rec.stats();
        let server = Server::durable(
            Some(&m),
            rec.index,
            ServerConfig {
                scan_workers: 2,
                coalescer: CoalescerConfig {
                    max_batch: 3,
                    max_wait: 1_000_000,
                },
                index: icfg,
                ..Default::default()
            },
            Arc::new(VirtualClock::new()),
            rec.wal,
        );
        server.record_recovery(rstats);
        // encode path: two full batches of 3 through the coalescer + WAL
        let handles: Vec<InsertHandle> = (0..6)
            .map(|i| server.insert(i as GraphId, pool[i].clone()))
            .collect();
        for h in handles {
            h.result().unwrap();
        }
        // scan + merge path: a few queries
        let q = server.embedding(0).unwrap();
        for _ in 0..3 {
            server.query(q.data(), 4);
        }
        // failover path: retire a worker, then query through the gap
        server.poison_scan_worker(1);
        server.query(q.data(), 4);
        server.query(q.data(), 4);

        let snap = server.metrics();
        // scan + merge
        assert_eq!(snap.counter("serve.queries"), Some(5));
        assert!(snap.counter("serve.scan.rows").unwrap() > 0);
        assert!(snap.counter("serve.scan.survivors").unwrap() > 0, "int8");
        assert!(snap.counter("serve.scan.bytes").unwrap() > 0);
        assert_eq!(snap.counter("serve.scan.cells_probed"), Some(0), "no IVF");
        assert_eq!(snap.histogram("serve.query_us").unwrap().count(), 5);
        assert_eq!(snap.histogram("serve.merge_us").unwrap().count(), 5);
        // encode
        assert_eq!(snap.counter("serve.encode.flushes"), Some(2));
        assert_eq!(snap.counter("serve.encode.graphs"), Some(6));
        let fill = snap.histogram("serve.encode.batch_fill").unwrap();
        assert_eq!((fill.count(), fill.max()), (2, 3));
        assert_eq!(
            snap.histogram("serve.encode.wait_ticks").unwrap().count(),
            6,
            "one wait sample per request"
        );
        assert_eq!(
            snap.histogram("serve.encode.forward_us").unwrap().count(),
            2
        );
        // WAL (write-ahead of every publish)
        assert_eq!(snap.counter("wal.appends"), Some(6));
        assert_eq!(snap.counter("wal.append_retries"), Some(0));
        assert_eq!(snap.histogram("wal.append_us").unwrap().count(), 6);
        // failover / degradation
        assert_eq!(snap.counter("serve.workers.panics"), Some(1));
        assert_eq!(snap.gauge("serve.workers.degraded"), Some(1));
        assert!(
            snap.counter("serve.failover.inline_scans").unwrap() >= 2,
            "both degraded queries failed over worker 1's range inline"
        );
        // recovery seeding (a fresh boot: zeros, but the names are live)
        assert_eq!(snap.counter("recover.replayed_ops"), Some(0));
        assert_eq!(snap.counter("recover.torn_bytes"), Some(0));
        // exposition renders and embeds
        let text = snap.to_text();
        assert!(text.contains("serve.queries 5"));
        let json = snap.to_json();
        assert!(json.contains("\"wal.appends\": 6"));
        server.shutdown();

        // and a recovery with real work seeds nonzero counters
        let rec = recover(storage, &dcfg, icfg).unwrap();
        assert_eq!(rec.replayed_ops, 6);
        let rstats = rec.stats();
        let server = Server::durable(
            None,
            rec.index,
            ServerConfig {
                index: icfg,
                ..Default::default()
            },
            Arc::new(VirtualClock::new()),
            rec.wal,
        );
        server.record_recovery(rstats);
        let snap = server.metrics();
        assert_eq!(snap.counter("recover.replayed_ops"), Some(6));
        server.shutdown();
    }

    /// `ObsConfig { metrics: false }` is the instrumented-out baseline:
    /// the registry stays empty (no atomics registered, the record sites
    /// are dead branches) while serving is unaffected.
    #[test]
    fn disabled_metrics_serve_identically_with_an_empty_registry() {
        let hidden = 4;
        let rows = synth_rows(20, hidden, 13);
        let server = Server::from_rows(
            &rows,
            hidden,
            ServerConfig {
                obs: ObsConfig {
                    metrics: false,
                    trace_sample: 0,
                },
                ..Default::default()
            },
            Arc::new(VirtualClock::new()),
        );
        let reference = ShardedIndex::from_rows(&rows, hidden, IndexConfig::default());
        let q = &rows[..hidden];
        assert_eq!(server.query(q, 5), reference.query(q, 5));
        let snap = server.metrics();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(server.take_traces().is_empty(), "tracing defaults off");
        server.shutdown();
    }

    /// The trace determinism acceptance criterion: identical request
    /// sequences against a virtual clock produce bit-identical span
    /// streams — stage names, tick ranges, and every scan-stats field.
    #[test]
    fn sampled_traces_are_deterministic_under_a_virtual_clock() {
        let run = || {
            let hidden = 6;
            let rows = synth_rows(64, hidden, 29);
            let clock = Arc::new(VirtualClock::new());
            let server = Server::from_rows(
                &rows,
                hidden,
                ServerConfig {
                    scan_workers: 2,
                    index: IndexConfig {
                        num_shards: 4,
                        precision: ScanPrecision::Int8 { widen: 2 },
                        ..Default::default()
                    },
                    obs: ObsConfig {
                        metrics: true,
                        trace_sample: 2, // every other query
                    },
                    ..Default::default()
                },
                Arc::clone(&clock) as Arc<dyn Clock>,
            );
            for i in 0..6usize {
                clock.advance(3);
                server.query(&rows[i * hidden..(i + 1) * hidden], 5);
            }
            let traces = server.take_traces();
            server.shutdown();
            traces
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), 3, "every 2nd of 6 queries sampled");
        assert_eq!(a, b, "virtual-clock traces are bit-reproducible");
        // span shape: one stage per worker plus the merge
        let span = &a[0];
        assert_eq!(span.label, "query");
        assert_eq!(span.stages.len(), 3, "2 scan workers + merge");
        assert_eq!(span.stages[0].name, "scan.worker0");
        assert_eq!(span.stages[2].name, "merge");
        let fields: Vec<&str> = span.stages[0]
            .fields
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(
            fields,
            [
                "shards",
                "rows_scanned",
                "cells_probed",
                "survivors",
                "scan_bytes"
            ]
        );
        let rows_scanned: u64 = a
            .iter()
            .flat_map(|s| &s.stages)
            .flat_map(|st| &st.fields)
            .filter(|(k, _)| k == "rows_scanned")
            .map(|&(_, v)| v)
            .sum();
        assert!(rows_scanned > 0, "sampled scans recorded their work");
    }
}
