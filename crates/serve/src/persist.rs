//! Crash-safe persistence for the serving stack: conversion between live
//! serving types ([`ShardedIndex`], [`Tokenizer`], [`ModelSpec`]) and
//! `gbm-store`'s plain snapshot/WAL data, plus the recovery orchestration.
//!
//! ```text
//!  running server ──append──► wal.log        (every insert/remove, seq N)
//!       │
//!       └─checkpoint()──────► snap-{N}.gbms  (atomic write, then the WAL
//!                                             restarts at N+1)
//!  crash ▼
//!  recover(): newest verifying snapshot  ──►  replay WAL ops with seq > N
//!             (corrupt ones skipped,          (torn tail dropped+counted,
//!              reported by name)               gaps = typed SeqGap error)
//! ```
//!
//! The recovery contract, enforced by the tests below and the proptest
//! suite in `tests/persist_prop.rs`: the recovered index is
//! **rank-identical** — ids, scores, tie order — to a never-crashed index
//! that applied the same durable operation prefix, or recovery fails with
//! a typed error. Never a silently wrong ranking.
//!
//! Two properties make the equivalence exact rather than approximate:
//!
//! * WAL inserts carry the embedding row, so replay is pure index
//!   arithmetic — no model, no re-encode drift.
//! * Replay is resumable by sequence number: a snapshot at `last_seq = N`
//!   skips ops `≤ N` instead of re-applying them. Re-applying would be
//!   *score*-safe but would perturb per-shard row order — the exact-tie
//!   order — so idempotent replay is deliberately not the mechanism.
//!
//! Quantized (int8) indexes restore by *requantizing* the f32 rows —
//! quantization is deterministic, so the rebuilt mirror must be bit-equal
//! to the snapshot's stored codes; any difference is a typed
//! [`PersistError::QuantMismatch`], catching corruption that slipped past
//! no checksum but would change coarse-scan behaviour.

use std::path::PathBuf;
use std::sync::Arc;

use gbm_nn::ModelSpec;
use gbm_store::{
    load_newest_snapshot, parse_snapshot_seq, save_snapshot, ModelData, PrecisionTag, QuantData,
    ShardData, SnapshotData, Storage, StoreError, TokenizerData, Wal, WalOp, WAL_FILE,
};
use gbm_tokenizer::Tokenizer;

use crate::index::{shard_of, GraphId, IndexConfig, ShardedIndex};
use crate::quantized::ScanPrecision;

/// Where and how durably serving state persists.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding the snapshots and the WAL.
    pub dir: PathBuf,
    /// Fsync the WAL after every append (durable to the op, slower) rather
    /// than at sync points (shutdown, checkpoint).
    pub fsync_each: bool,
}

impl DurabilityConfig {
    /// Persistence under `dir`, syncing at sync points only.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            fsync_each: false,
        }
    }

    /// Applies the persistence environment knobs on top of this config:
    /// `GBM_SNAPSHOT_DIR` (the durability directory) and `GBM_WAL_FSYNC`
    /// (`true`/`false`: fsync every WAL append). Invalid values warn on
    /// stderr and leave the built-in defaults in force, like every other
    /// `GBM_*` knob.
    pub fn with_env(mut self) -> DurabilityConfig {
        if let Some(dir) =
            crate::env::env_knob::<PathBuf>("GBM_SNAPSHOT_DIR", "a snapshot directory path")
        {
            self.dir = dir;
        }
        if let Some(fsync) =
            crate::env::env_knob::<bool>("GBM_WAL_FSYNC", "true or false (fsync per WAL append)")
        {
            self.fsync_each = fsync;
        }
        self
    }
}

/// Everything that can go wrong converting persisted data back into live
/// serving state — the serving-layer extension of [`StoreError`].
#[derive(Debug)]
pub enum PersistError {
    /// The storage layer failed or the bytes are corrupt.
    Store(StoreError),
    /// A snapshot row is filed under a shard its id does not hash to.
    ShardMismatch {
        /// The misfiled id.
        id: GraphId,
        /// Shard the id hashes to.
        expected: usize,
        /// Shard the snapshot filed it under.
        found: usize,
    },
    /// A shard's stored int8 codes are not the deterministic
    /// requantization of its stored f32 rows.
    QuantMismatch {
        /// The inconsistent shard.
        shard: usize,
    },
    /// Row widths disagree (snapshot vs index vs WAL op).
    WidthMismatch {
        /// What disagreed.
        what: String,
    },
    /// The model section cannot be rebuilt (unknown tags, weight-count
    /// mismatch).
    Model(String),
    /// The tokenizer section cannot be rebuilt (id collisions, bad
    /// vocabulary).
    Tokenizer(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Store(e) => write!(f, "{e}"),
            PersistError::ShardMismatch {
                id,
                expected,
                found,
            } => write!(
                f,
                "snapshot files id {id} under shard {found}, but it hashes to shard {expected}"
            ),
            PersistError::QuantMismatch { shard } => write!(
                f,
                "shard {shard}: stored int8 codes are not the requantization of the stored rows"
            ),
            PersistError::WidthMismatch { what } => write!(f, "row width mismatch: {what}"),
            PersistError::Model(e) => write!(f, "cannot rebuild model: {e}"),
            PersistError::Tokenizer(e) => write!(f, "cannot rebuild tokenizer: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for PersistError {
    fn from(e: StoreError) -> PersistError {
        PersistError::Store(e)
    }
}

impl PersistError {
    /// True when the persisted bytes are wrong (vs. I/O reaching them).
    pub fn is_corruption(&self) -> bool {
        match self {
            PersistError::Store(e) => e.is_corruption(),
            _ => true,
        }
    }
}

pub(crate) fn precision_tag(p: ScanPrecision, ivf_cells: usize) -> PrecisionTag {
    match p {
        ScanPrecision::F32 => PrecisionTag::F32,
        ScanPrecision::Int8 { widen } => PrecisionTag::Int8 {
            widen: widen as u32,
        },
        ScanPrecision::Ivf { nprobe, widen } => PrecisionTag::Ivf {
            nprobe: nprobe as u32,
            widen: widen as u32,
            cells: ivf_cells as u32,
        },
    }
}

pub(crate) fn scan_precision(t: PrecisionTag) -> ScanPrecision {
    match t {
        PrecisionTag::F32 => ScanPrecision::F32,
        PrecisionTag::Int8 { widen } => ScanPrecision::Int8 {
            widen: widen as usize,
        },
        PrecisionTag::Ivf { nprobe, widen, .. } => ScanPrecision::Ivf {
            nprobe: nprobe as usize,
            widen: widen as usize,
        },
    }
}

/// The configured IVF cell count carried by the tag (0 for non-IVF tags —
/// the field is meaningless there and `IndexConfig::default` uses 0 too).
pub(crate) fn tag_ivf_cells(t: PrecisionTag) -> usize {
    match t {
        PrecisionTag::Ivf { cells, .. } => cells as usize,
        _ => 0,
    }
}

/// The persistence image of a tokenizer.
pub fn tokenizer_data(tok: &Tokenizer) -> TokenizerData {
    TokenizerData {
        seq_len: tok.seq_len() as u32,
        normalize_vars: tok.normalize_vars(),
        entries: tok.vocab_entries(),
    }
}

/// Rebuilds a tokenizer from its persistence image.
pub fn tokenizer_from_data(data: &TokenizerData) -> Result<Tokenizer, PersistError> {
    Tokenizer::from_parts(
        data.entries.clone(),
        data.seq_len as usize,
        data.normalize_vars,
    )
    .map_err(PersistError::Tokenizer)
}

/// The persistence image of a model spec.
pub fn model_data(spec: &ModelSpec) -> ModelData {
    ModelData {
        config: spec.config_words(),
        weights: spec.weights.clone(),
    }
}

/// Rebuilds a model spec from its persistence image.
pub fn model_from_data(data: &ModelData) -> Result<ModelSpec, PersistError> {
    ModelSpec::from_words(&data.config, data.weights.clone()).map_err(PersistError::Model)
}

/// Captures a full point-in-time image of `index` (plus, optionally, the
/// tokenizer and model that feed it) with every WAL op up to `last_seq`
/// folded in.
pub fn snapshot_index(
    index: &ShardedIndex,
    last_seq: u64,
    tokenizer: Option<&Tokenizer>,
    model: Option<&ModelSpec>,
) -> SnapshotData {
    let cfg = index.config();
    let shards = (0..cfg.num_shards)
        .map(|s| ShardData {
            ids: index.shard_ids(s).to_vec(),
            rows: index.shard_rows(s).to_vec(),
            // a shard emptied by removals keeps a 0-row mirror allocated;
            // its image is "no mirror" (what a fresh rebuild produces)
            quant: index
                .shard_quant(s)
                .and_then(|q| q.matrix())
                .filter(|m| m.rows() > 0)
                .map(|m| QuantData {
                    codes: m.codes().to_vec(),
                    scales: m.scales().to_vec(),
                }),
        })
        .collect();
    SnapshotData {
        num_shards: cfg.num_shards as u32,
        encode_batch: cfg.encode_batch as u32,
        precision: precision_tag(cfg.precision, cfg.ivf_cells),
        hidden: index.hidden() as u32,
        last_seq,
        shards,
        tokenizer: tokenizer.map(tokenizer_data),
        model: model.map(model_data),
    }
}

/// Rebuilds a live index from a snapshot, verifying every structural
/// invariant the checksums cannot see: ids hash to the shards they are
/// filed under, row matrices are whole, and (for int8 indexes) the stored
/// codes are bit-equal to a deterministic requantization of the stored
/// rows. Row order is preserved exactly — it is the ranking tie-break.
pub fn restore_index(data: &SnapshotData) -> Result<ShardedIndex, PersistError> {
    let num_shards = data.num_shards as usize;
    let hidden = data.hidden as usize;
    // IVF cell structures are not imaged: they are a deterministic function
    // of the stored row order (seeded k-means), so re-inserting the rows
    // below rebuilds them bit-identically to the snapshotted index.
    let mut index = ShardedIndex::new(IndexConfig {
        num_shards,
        encode_batch: data.encode_batch as usize,
        precision: scan_precision(data.precision),
        ivf_cells: tag_ivf_cells(data.precision),
    });
    if hidden > 0 {
        index.set_hidden(hidden);
    }
    for (s, shard) in data.shards.iter().enumerate() {
        if hidden == 0 && !shard.ids.is_empty() {
            return Err(PersistError::WidthMismatch {
                what: format!("shard {s} has rows but the snapshot width is 0"),
            });
        }
        for (r, &id) in shard.ids.iter().enumerate() {
            let expected = shard_of(id, num_shards);
            if expected != s {
                return Err(PersistError::ShardMismatch {
                    id,
                    expected,
                    found: s,
                });
            }
            index.insert_row(id, &shard.rows[r * hidden..(r + 1) * hidden]);
        }
        // ids hash to this shard and arrived in row order, so the rebuilt
        // shard's ids/rows are the stored ones; verify the quant mirror
        // (0-row mirrors normalize to "absent" on both sides)
        let rebuilt = index
            .shard_quant(s)
            .and_then(|q| q.matrix())
            .filter(|m| m.rows() > 0);
        match (&shard.quant, rebuilt) {
            (None, None) => {}
            (Some(stored), Some(m)) => {
                if stored.codes != m.codes() || stored.scales != m.scales() {
                    return Err(PersistError::QuantMismatch { shard: s });
                }
            }
            (Some(_), None) | (None, Some(_)) => {
                return Err(PersistError::QuantMismatch { shard: s });
            }
        }
    }
    Ok(index)
}

/// A recovered serving state: the index at the durable frontier, the WAL
/// positioned to continue from it, and what recovery had to do to get
/// there.
pub struct Recovery {
    /// The index, rank-identical to a never-crashed replay of the durable
    /// op prefix.
    pub index: ShardedIndex,
    /// The WAL, torn tail repaired, numbering continuous with the
    /// recovered state — hand it to `Server::durable`.
    pub wal: Wal,
    /// `last_seq` of the snapshot recovery started from (0 = none found).
    pub snapshot_seq: u64,
    /// WAL ops replayed on top of the snapshot.
    pub replayed_ops: usize,
    /// Wall time the WAL replay took, microseconds (snapshot load
    /// excluded) — the recovery cost a `probe_recover` run reports.
    pub replay_us: u64,
    /// Torn-tail bytes dropped from the WAL (a crash mid-append).
    pub torn_bytes: usize,
    /// Snapshots that failed verification, newest first — surfaced because
    /// a skipped snapshot means a longer WAL replay than intended.
    pub skipped_snapshots: Vec<(String, StoreError)>,
    /// The tokenizer captured in the snapshot, when present.
    pub tokenizer: Option<Tokenizer>,
    /// The model captured in the snapshot, when present.
    pub model: Option<ModelSpec>,
}

/// The `Copy` summary of what a [`Recovery`] did — detachable from the
/// moved-out `index`/`wal`, so a server boot can capture it before handing
/// those to [`Server::durable`](crate::Server::durable) and seed the
/// `recover.*` metrics afterwards
/// ([`Server::record_recovery`](crate::Server::record_recovery)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// `last_seq` of the snapshot recovery started from (0 = none found).
    pub snapshot_seq: u64,
    /// WAL ops replayed on top of the snapshot.
    pub replayed_ops: usize,
    /// Wall time the WAL replay took, microseconds.
    pub replay_us: u64,
    /// Torn-tail bytes dropped from the WAL.
    pub torn_bytes: usize,
}

impl Recovery {
    /// The detachable summary of this recovery.
    pub fn stats(&self) -> RecoveryStats {
        RecoveryStats {
            snapshot_seq: self.snapshot_seq,
            replayed_ops: self.replayed_ops,
            replay_us: self.replay_us,
            torn_bytes: self.torn_bytes,
        }
    }
}

impl std::fmt::Debug for Recovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recovery")
            .field("rows", &self.index.num_encoded())
            .field("snapshot_seq", &self.snapshot_seq)
            .field("replayed_ops", &self.replayed_ops)
            .field("torn_bytes", &self.torn_bytes)
            .field("skipped_snapshots", &self.skipped_snapshots)
            .field("tokenizer", &self.tokenizer.is_some())
            .field("model", &self.model.is_some())
            .finish_non_exhaustive()
    }
}

/// Recovers serving state from `cfg.dir`: loads the newest snapshot that
/// verifies (an empty directory recovers to a fresh index under
/// `fallback`), replays the WAL ops past its `last_seq`, repairs the torn
/// tail, and detects every gap a lost snapshot or compacted log could
/// open. Returns a typed error rather than ever serving a wrong ranking.
pub fn recover(
    storage: Arc<dyn Storage>,
    cfg: &DurabilityConfig,
    fallback: IndexConfig,
) -> Result<Recovery, PersistError> {
    let (snap, skipped) = load_newest_snapshot(storage.as_ref(), &cfg.dir)?;
    let snapshot_seq = snap.as_ref().map_or(0, |s| s.last_seq);
    let (mut index, tokenizer, model) = match &snap {
        Some(data) => (
            restore_index(data)?,
            data.tokenizer
                .as_ref()
                .map(tokenizer_from_data)
                .transpose()?,
            data.model.as_ref().map(model_from_data).transpose()?,
        ),
        None => (ShardedIndex::new(fallback), None, None),
    };
    let (wal, replay) = Wal::resume(
        Arc::clone(&storage),
        cfg.dir.join(WAL_FILE),
        cfg.fsync_each,
        snapshot_seq + 1,
    )?;
    // ops ≤ snapshot_seq are already folded into the snapshot (a crash
    // between snapshot write and WAL compaction leaves them behind); the
    // remainder must continue exactly at snapshot_seq + 1
    let replay_start = std::time::Instant::now();
    let mut replayed = 0usize;
    for (seq, op) in &replay.ops {
        if *seq <= snapshot_seq {
            continue;
        }
        if *seq != snapshot_seq + 1 + replayed as u64 {
            return Err(StoreError::SeqGap {
                expected: snapshot_seq + 1 + replayed as u64,
                found: *seq,
            }
            .into());
        }
        match op {
            WalOp::Insert { id, row } => {
                if index.hidden() != 0 && row.len() != index.hidden() {
                    return Err(PersistError::WidthMismatch {
                        what: format!(
                            "WAL op {seq} inserts a {}-wide row into a {}-wide index",
                            row.len(),
                            index.hidden()
                        ),
                    });
                }
                index.insert_row(*id, row);
            }
            WalOp::Remove { id } => {
                index.remove(*id);
            }
        }
        replayed += 1;
    }
    let replay_us = replay_start.elapsed().as_micros() as u64;
    // a skipped (corrupt) snapshot newer than everything recovered means
    // ops were compacted away that nothing can reproduce — data loss,
    // which must surface as an error, not a silently shorter index
    let covered = wal.state().next_seq - 1;
    if let Some(lost) = skipped
        .iter()
        .filter_map(|(name, _)| parse_snapshot_seq(name))
        .find(|&seq| seq > covered)
    {
        return Err(StoreError::SeqGap {
            expected: covered + 1,
            found: lost,
        }
        .into());
    }
    Ok(Recovery {
        index,
        wal,
        snapshot_seq,
        replayed_ops: replayed,
        replay_us,
        torn_bytes: replay.torn_bytes,
        skipped_snapshots: skipped,
        tokenizer,
        model,
    })
}

/// Checkpoints the serving state: atomically writes a snapshot carrying
/// every op the WAL has logged, then restarts (compacts) the WAL at the
/// next sequence number. Crash-ordering is safe at every point — before
/// the snapshot lands the old WAL still covers everything; between
/// snapshot and compaction, replay skips the ops the snapshot already
/// folded in.
pub fn checkpoint(
    storage: Arc<dyn Storage>,
    cfg: &DurabilityConfig,
    index: &ShardedIndex,
    tokenizer: Option<&Tokenizer>,
    model: Option<&ModelSpec>,
    wal: &mut Wal,
) -> Result<PathBuf, PersistError> {
    let last_seq = wal.state().next_seq - 1;
    let data = snapshot_index(index, last_seq, tokenizer, model);
    let path = save_snapshot(storage.as_ref(), &cfg.dir, &data)?;
    *wal = Wal::create(
        storage,
        cfg.dir.join(WAL_FILE),
        wal.state().fsync_each,
        last_seq + 1,
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbm_store::{snapshot_file_name, FaultPlan, FaultStorage, MemStorage};

    fn synth_rows(n: usize, hidden: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n * hidden)
            .map(|_| {
                state = state
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((state >> 40) % 2000) as f32 / 1000.0 - 1.0
            })
            .collect()
    }

    fn assert_rank_identical(a: &ShardedIndex, b: &ShardedIndex, queries: &[Vec<f32>]) {
        assert_eq!(a.ids(), b.ids());
        for q in queries {
            for k in [1usize, 5, 64] {
                assert_eq!(a.query(q, k), b.query(q, k), "k={k}");
            }
        }
    }

    /// Snapshot → restore is bit-exact: rows, row order, quant codes, and
    /// therefore rankings, across shard counts and precisions (including
    /// empty shards and an entirely empty index).
    #[test]
    fn snapshot_restore_roundtrips_across_shapes() {
        let hidden = 6;
        let rows = synth_rows(40, hidden, 7);
        for shards in [1usize, 2, 7] {
            for precision in [
                ScanPrecision::F32,
                ScanPrecision::Int8 { widen: 2 },
                // 40 rows is below the IVF training threshold: the scan
                // falls back to the exact int8 path, so rank identity holds
                ScanPrecision::Ivf {
                    nprobe: 2,
                    widen: 2,
                },
            ] {
                let cfg = IndexConfig {
                    num_shards: shards,
                    encode_batch: 8,
                    precision,
                    ..Default::default()
                };
                let mut index = ShardedIndex::from_rows(&rows, hidden, cfg);
                index.remove(3); // perturb row order via swap-fill
                let data = snapshot_index(&index, 17, None, None);
                let restored = restore_index(&data).unwrap();
                assert_eq!(restored.hidden(), index.hidden());
                for s in 0..shards {
                    assert_eq!(restored.shard_ids(s), index.shard_ids(s), "row order");
                    assert_eq!(restored.shard_rows(s), index.shard_rows(s), "bit-exact");
                }
                let queries = [rows[..hidden].to_vec(), rows[hidden..2 * hidden].to_vec()];
                assert_rank_identical(&restored, &index, &queries);
            }
        }
        // the empty index
        let empty = ShardedIndex::new(IndexConfig::default());
        let restored = restore_index(&snapshot_index(&empty, 0, None, None)).unwrap();
        assert_eq!(restored.num_encoded(), 0);
        assert_eq!(restored.query(&[], 3), vec![]);
    }

    /// The configured IVF cell count rides the precision tag through a
    /// snapshot, and an IVF index trained past the threshold restores to
    /// identical cell structures (seeded k-means is a deterministic
    /// function of the stored row order).
    #[test]
    fn ivf_config_and_cells_survive_a_roundtrip() {
        let hidden = 8;
        let rows = synth_rows(300, hidden, 11);
        let cfg = IndexConfig {
            num_shards: 1,
            encode_batch: 8,
            precision: ScanPrecision::Ivf {
                nprobe: 3,
                widen: 2,
            },
            ivf_cells: 13,
        };
        let index = ShardedIndex::from_rows(&rows, hidden, cfg);
        let restored = restore_index(&snapshot_index(&index, 5, None, None)).unwrap();
        assert_eq!(restored.config().precision, cfg.precision);
        assert_eq!(restored.config().ivf_cells, 13);
        let (a, b) = (index.shard_ivf(0).unwrap(), restored.shard_ivf(0).unwrap());
        assert!(a.is_trained() && b.is_trained());
        assert_eq!(a.centroids(), b.centroids());
        assert_eq!(a.cell_of(), b.cell_of());
        let queries = [rows[..hidden].to_vec(), rows[hidden..2 * hidden].to_vec()];
        assert_rank_identical(&restored, &index, &queries);
    }

    /// Structural inconsistencies a checksum cannot catch are typed
    /// errors: misfiled ids, tampered quant codes, width-zero shards.
    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let hidden = 4;
        let rows = synth_rows(12, hidden, 9);
        let index = ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: 3,
                encode_batch: 4,
                precision: ScanPrecision::Int8 { widen: 2 },
                ..Default::default()
            },
        );
        let good = snapshot_index(&index, 1, None, None);
        restore_index(&good).unwrap();

        // swap two shards' contents: ids no longer hash where they are filed
        let mut misfiled = good.clone();
        misfiled.shards.swap(0, 1);
        assert!(matches!(
            restore_index(&misfiled),
            Err(PersistError::ShardMismatch { .. })
        ));

        // tamper one quant code: requantization no longer matches
        let mut tampered = good.clone();
        for shard in &mut tampered.shards {
            if let Some(q) = &mut shard.quant {
                if !q.codes.is_empty() {
                    q.codes[0] = q.codes[0].wrapping_add(1);
                    break;
                }
            }
        }
        assert!(matches!(
            restore_index(&tampered),
            Err(PersistError::QuantMismatch { .. })
        ));

        // drop a quant mirror entirely from an int8 snapshot
        let mut missing = good.clone();
        let populated = missing
            .shards
            .iter()
            .position(|s| !s.ids.is_empty())
            .unwrap();
        missing.shards[populated].quant = None;
        assert!(matches!(
            restore_index(&missing),
            Err(PersistError::QuantMismatch { .. })
        ));

        // rows claimed under width 0
        let mut zero = good.clone();
        zero.hidden = 0;
        for s in &mut zero.shards {
            s.rows.clear();
            s.quant = None;
        }
        assert!(matches!(
            restore_index(&zero),
            Err(PersistError::WidthMismatch { .. })
        ));
    }

    /// The headline equivalence: churn an index while logging to the WAL,
    /// checkpoint part-way, crash with a torn tail — recovery is
    /// rank-identical (ids, scores, tie order) to a never-crashed index
    /// that applied the durable ops, including a mid-compaction crash
    /// (snapshot written, WAL never truncated).
    #[test]
    fn recover_is_rank_identical_to_never_crashed_replay() {
        let hidden = 5;
        let rows = synth_rows(64, hidden, 21);
        let row = |i: usize| rows[i * hidden..(i + 1) * hidden].to_vec();
        // a churn script: inserts, removes, re-inserts (so swap-fill
        // perturbs row order — the tie-break recovery must reproduce)
        let ops: Vec<WalOp> = (0..48)
            .map(|i| match i % 7 {
                3 => WalOp::Remove { id: (i as u64) / 2 },
                5 => WalOp::Remove { id: 9999 }, // remove of an absent id
                _ => WalOp::Insert {
                    id: (i as u64) % 40,
                    row: row(i % 64),
                },
            })
            .collect();
        let icfg = IndexConfig {
            num_shards: 3,
            encode_batch: 8,
            precision: ScanPrecision::Int8 { widen: 2 },
            ..Default::default()
        };
        let apply = |index: &mut ShardedIndex, op: &WalOp| match op {
            WalOp::Insert { id, row } => index.insert_row(*id, row),
            WalOp::Remove { id } => {
                index.remove(*id);
            }
        };
        for compact_wal in [true, false] {
            let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
            let dcfg = DurabilityConfig::new("/d");
            let mut live = ShardedIndex::new(icfg);
            let mut wal =
                Wal::create(Arc::clone(&storage), dcfg.dir.join(WAL_FILE), false, 1).unwrap();
            for (i, op) in ops.iter().enumerate() {
                wal.append(op).unwrap();
                apply(&mut live, op);
                if i == 29 {
                    if compact_wal {
                        checkpoint(Arc::clone(&storage), &dcfg, &live, None, None, &mut wal)
                            .unwrap();
                    } else {
                        // mid-compaction crash: snapshot lands, WAL does not
                        // get truncated — replay must skip the overlap
                        let data = snapshot_index(&live, wal.state().next_seq - 1, None, None);
                        save_snapshot(storage.as_ref(), &dcfg.dir, &data).unwrap();
                    }
                }
            }
            // crash mid-append: torn junk after the last durable record
            storage
                .append(&dcfg.dir.join(WAL_FILE), &[7, 7, 7, 7, 7])
                .unwrap();

            let rec = recover(Arc::clone(&storage), &dcfg, icfg).unwrap();
            assert_eq!(rec.snapshot_seq, 30);
            assert_eq!(rec.replayed_ops, ops.len() - 30);
            assert_eq!(rec.torn_bytes, 5);
            assert!(rec.skipped_snapshots.is_empty());
            assert_eq!(rec.wal.state().next_seq, ops.len() as u64 + 1);
            let queries: Vec<Vec<f32>> = vec![row(0), row(17), row(63)];
            assert_rank_identical(&rec.index, &live, &queries);
            // recovered shards are byte-identical, not just rank-identical
            for s in 0..icfg.num_shards {
                assert_eq!(rec.index.shard_ids(s), live.shard_ids(s));
                assert_eq!(rec.index.shard_rows(s), live.shard_rows(s));
            }
        }
    }

    #[test]
    fn empty_dir_recovers_to_a_fresh_index() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let dcfg = DurabilityConfig::new("/fresh");
        let rec = recover(Arc::clone(&storage), &dcfg, IndexConfig::default()).unwrap();
        assert_eq!(rec.index.num_encoded(), 0);
        assert_eq!(
            (rec.snapshot_seq, rec.replayed_ops, rec.torn_bytes),
            (0, 0, 0)
        );
        assert_eq!(rec.wal.state().next_seq, 1);
        assert!(rec.tokenizer.is_none() && rec.model.is_none());
    }

    /// A corrupt newest snapshot falls back to the previous one as long as
    /// the WAL still covers the gap; once the WAL has been compacted past
    /// it, the same corruption is unrecoverable and must be a typed error.
    #[test]
    fn corrupt_newest_snapshot_falls_back_or_fails_loudly() {
        let hidden = 4;
        let rows = synth_rows(20, hidden, 33);
        let icfg = IndexConfig {
            num_shards: 2,
            encode_batch: 4,
            precision: ScanPrecision::F32,
            ..Default::default()
        };
        let build = |compact: bool| {
            let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
            let dcfg = DurabilityConfig::new("/d");
            let mut live = ShardedIndex::new(icfg);
            let mut wal =
                Wal::create(Arc::clone(&storage), dcfg.dir.join(WAL_FILE), false, 1).unwrap();
            for i in 0..16usize {
                let op = WalOp::Insert {
                    id: i as u64,
                    row: rows[i * hidden..(i + 1) * hidden].to_vec(),
                };
                wal.append(&op).unwrap();
                live.insert_row(i as u64, &rows[i * hidden..(i + 1) * hidden]);
                if i == 7 {
                    // older snapshot at seq 8, WAL keeps running
                    let data = snapshot_index(&live, 8, None, None);
                    save_snapshot(storage.as_ref(), &dcfg.dir, &data).unwrap();
                }
            }
            if compact {
                checkpoint(Arc::clone(&storage), &dcfg, &live, None, None, &mut wal).unwrap();
            } else {
                let data = snapshot_index(&live, 16, None, None);
                save_snapshot(storage.as_ref(), &dcfg.dir, &data).unwrap();
            }
            // corrupt the newest snapshot (seq 16) on disk
            let newest = dcfg.dir.join(snapshot_file_name(16));
            let mut bytes = storage.read(&newest).unwrap();
            let n = bytes.len();
            bytes[n / 2] ^= 0x40;
            storage.write_atomic(&newest, &bytes).unwrap();
            (storage, dcfg, live)
        };

        // WAL intact: fall back to seq 8, replay 9..16, same rankings
        let (storage, dcfg, live) = build(false);
        let rec = recover(Arc::clone(&storage), &dcfg, icfg).unwrap();
        assert_eq!(rec.snapshot_seq, 8);
        assert_eq!(rec.replayed_ops, 8);
        assert_eq!(rec.skipped_snapshots.len(), 1);
        assert!(rec.skipped_snapshots[0].1.is_corruption());
        assert_rank_identical(&rec.index, &live, &[rows[..hidden].to_vec()]);

        // WAL compacted at 16: ops 9..16 exist nowhere — typed error
        let (storage, dcfg, _) = build(true);
        let err = recover(storage, &dcfg, icfg).unwrap_err();
        assert!(
            matches!(
                err,
                PersistError::Store(StoreError::SeqGap {
                    expected: 9,
                    found: 16
                })
            ),
            "got {err}"
        );
    }

    /// Every fault the injectable storage can produce ends in a typed
    /// error or an exact ranking — never a silently wrong one.
    #[test]
    fn injected_faults_never_yield_wrong_rankings() {
        let hidden = 4;
        let rows = synth_rows(10, hidden, 55);
        let icfg = IndexConfig {
            num_shards: 2,
            encode_batch: 4,
            precision: ScanPrecision::F32,
            ..Default::default()
        };
        let inner = Arc::new(MemStorage::new());
        let faulty = Arc::new(FaultStorage::new(Arc::clone(&inner) as Arc<dyn Storage>));
        let storage: Arc<dyn Storage> = Arc::clone(&faulty) as Arc<dyn Storage>;
        let dcfg = DurabilityConfig::new("/d");
        let mut live = ShardedIndex::new(icfg);
        let mut wal = Wal::create(Arc::clone(&storage), dcfg.dir.join(WAL_FILE), false, 1).unwrap();
        for i in 0..10usize {
            wal.append(&WalOp::Insert {
                id: i as u64,
                row: rows[i * hidden..(i + 1) * hidden].to_vec(),
            })
            .unwrap();
            live.insert_row(i as u64, &rows[i * hidden..(i + 1) * hidden]);
        }
        checkpoint(Arc::clone(&storage), &dcfg, &live, None, None, &mut wal).unwrap();
        wal.append(&WalOp::Remove { id: 3 }).unwrap();
        live.remove(3);
        let queries = [rows[..hidden].to_vec()];

        // bit flip on every snapshot read: no snapshot verifies, and the
        // WAL alone cannot reproduce the compacted ops — typed error
        faulty.set_plan(FaultPlan {
            flip_on_read: Some(("snap-".into(), 30, 0x04)),
            ..Default::default()
        });
        let err = recover(Arc::clone(&storage), &dcfg, icfg).unwrap_err();
        assert!(err.is_corruption(), "got {err}");

        // faults cleared: the same directory recovers exactly
        faulty.set_plan(FaultPlan::default());
        let rec = recover(Arc::clone(&storage), &dcfg, icfg).unwrap();
        assert_eq!(rec.replayed_ops, 1);
        assert_rank_identical(&rec.index, &live, &queries);

        // mid-log WAL corruption: append a second record so the corrupt
        // one is not the (repairable) tail, flip a payload byte in the
        // first — typed error, never a partially-replayed index
        wal.append(&WalOp::Remove { id: 4 }).unwrap();
        let wal_path = dcfg.dir.join(WAL_FILE);
        let mut bytes = inner.read(&wal_path).unwrap();
        bytes[10] ^= 0x01;
        inner.write_atomic(&wal_path, &bytes).unwrap();
        let err = recover(Arc::clone(&inner) as Arc<dyn Storage>, &dcfg, icfg).unwrap_err();
        assert!(err.is_corruption(), "got {err}");
    }

    /// `GBM_SNAPSHOT_DIR` / `GBM_WAL_FSYNC` apply when valid and fall back
    /// loudly when not — one test, because env vars are process-wide.
    #[test]
    fn persistence_env_knobs_apply_and_fall_back() {
        std::env::remove_var("GBM_SNAPSHOT_DIR");
        std::env::remove_var("GBM_WAL_FSYNC");
        let base = DurabilityConfig::new("/default");
        let cfg = base.clone().with_env();
        assert_eq!(cfg.dir, PathBuf::from("/default"));
        assert!(!cfg.fsync_each);

        std::env::set_var("GBM_SNAPSHOT_DIR", "/from-env");
        std::env::set_var("GBM_WAL_FSYNC", "true");
        let cfg = base.clone().with_env();
        assert_eq!(cfg.dir, PathBuf::from("/from-env"));
        assert!(cfg.fsync_each);

        // an unparsable bool warns and keeps the default
        std::env::set_var("GBM_WAL_FSYNC", "yes please");
        let cfg = base.clone().with_env();
        assert!(!cfg.fsync_each);

        std::env::remove_var("GBM_SNAPSHOT_DIR");
        std::env::remove_var("GBM_WAL_FSYNC");
    }

    /// Tokenizer and model ride the snapshot and come back functionally
    /// identical (same encodings, bit-identical weights).
    #[test]
    fn tokenizer_and_model_roundtrip_through_recovery() {
        use gbm_tokenizer::TokenizerConfig;
        let corpus = ["add i64 %1 %2", "mul i64 %3 %1", "ret i64 %3"];
        let tok = Tokenizer::train(corpus.iter().copied(), TokenizerConfig::default());
        let spec = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            let model = gbm_nn::GraphBinMatch::new(
                gbm_nn::GraphBinMatchConfig::small(tok.vocab_size()),
                &mut rng,
            );
            ModelSpec::capture(&model)
        };
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let dcfg = DurabilityConfig::new("/d");
        let index = ShardedIndex::new(IndexConfig::default());
        let mut wal = Wal::create(Arc::clone(&storage), dcfg.dir.join(WAL_FILE), false, 1).unwrap();
        checkpoint(
            Arc::clone(&storage),
            &dcfg,
            &index,
            Some(&tok),
            Some(&spec),
            &mut wal,
        )
        .unwrap();
        let rec = recover(storage, &dcfg, IndexConfig::default()).unwrap();
        let rtok = rec.tokenizer.expect("tokenizer captured");
        for text in &corpus {
            assert_eq!(rtok.encode(text), tok.encode(text));
        }
        let rspec = rec.model.expect("model captured");
        assert_eq!(rspec, spec, "config and weights bit-identical");
    }
}
