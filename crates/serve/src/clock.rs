//! Injected time for the serving layer.
//!
//! The coalescer's flush-on-timeout behaviour depends on "how long has the
//! oldest request waited" — reading the OS clock for that makes every test
//! and load probe nondeterministic. Time is therefore a capability passed in
//! by the caller: production uses [`WallClock`] (milliseconds since server
//! start), tests and the load probes drive a [`VirtualClock`] by hand and
//! get bit-reproducible flush schedules.

use std::cell::Cell;
use std::time::Instant;

/// A monotonic tick source. Ticks are dimensionless — the coalescer only
/// compares differences against its `max_wait` — but [`WallClock`] maps one
/// tick to one millisecond.
pub trait Clock {
    /// Current tick count (monotonic, starts near zero).
    fn now(&self) -> u64;
}

/// A hand-driven clock for deterministic tests and load simulation.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: Cell<u64>,
}

impl VirtualClock {
    /// A clock at tick zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Advances time by `n` ticks.
    pub fn advance(&self, n: u64) {
        self.ticks.set(self.ticks.get() + n);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> u64 {
        self.ticks.get()
    }
}

/// Real time: one tick per millisecond since construction.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A clock starting at the current instant.
    pub fn new() -> WallClock {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_only_by_hand() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        c.advance(3);
        c.advance(4);
        assert_eq!(c.now(), 7);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
