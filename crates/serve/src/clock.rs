//! Injected time for the serving layer — re-exported from [`gbm_obs`].
//!
//! The clock abstraction started here (the coalescer's flush-on-timeout
//! behaviour depends on "how long has the oldest request waited") and moved
//! to `gbm-obs` when trace spans needed the same capability. This module
//! keeps the historical `gbm_serve::clock::*` paths working unchanged.

pub use gbm_obs::clock::{Clock, VirtualClock, WallClock};
