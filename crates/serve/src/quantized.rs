//! The int8 coarse-scan half of quantized serving.
//!
//! A [`QuantizedShard`] shadows one shard's dense f32 row matrix with a
//! [`gbm_quant::QuantizedMatrix`] — one byte per element plus a per-row
//! scale, ~4× less memory touched per scan — and answers *candidate*
//! queries: which rows could be in the exact top-K. The shard then
//! re-scores exactly those candidates against its retained f32 rows
//! (`Shard::scan_top_k_int8` in `index.rs`) — the coarse-scan →
//! exact-re-rank shape of Ling et al.'s deep graph matching search.
//!
//! **Why the candidate cut is a margin, not just a count.** Candidate
//! selection keeps the approximate top-K′ (`K′ = k · widen`, the coarse
//! floor) *plus every row whose approximate score is within an analytic
//! error margin of the K′-th best*. Per-row symmetric quantization bounds
//! each element's rounding error by `scale / 2`, which bounds every row's
//! dot error by `bound_r` ([`gbm_quant::dot_error_bound`]); if `t` is the
//! K′-th best approximate score, every true top-K row must score at least
//! `t − 2·max_r bound_r` approximately (it beats K′ rows exactly, each of
//! which approximates to within one bound of `t`). Admitting that whole
//! margin zone makes the re-ranked top-K **unconditionally** the exact f32
//! ranking — ids, scores, tie order — not just empirically on friendly
//! pools. On well-spread pools the zone is a handful of rows; on
//! near-duplicate pools (scores packed tighter than the quantization
//! resolution) it degrades gracefully toward re-scoring the shard rather
//! than returning a wrong ranking. `probe_quant` measures both regimes.

use gbm_quant::{QuantizedMatrix, QuantizedVector};
use gbm_tensor::top_k;

use crate::index::{merge_row_ranked, SCAN_BLOCK};
use crate::scan::QuantView;

/// How a shard scan scores candidate rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScanPrecision {
    /// Exact f32 dot products over the full row matrix (the PR 4 path).
    #[default]
    F32,
    /// Quantized int8 coarse scan over a per-row symmetric code matrix:
    /// each shard keeps the approximate top-`widen · k` rows plus the
    /// quantization-error margin zone around the cut, then re-scores just
    /// those candidates with exact f32 dots. Results *always* equal the
    /// f32 ranking — ids, scores, tie order (the margin admits every row
    /// the rounding error could have demoted; equivalence-tested across
    /// shard counts and widen factors).
    Int8 {
        /// Coarse-floor widening factor: each shard's coarse scan keeps at
        /// least `k · widen` rows before the error-margin zone is added
        /// (`0` is clamped to 1). Larger values pre-admit more candidates;
        /// exactness never depends on it.
        widen: usize,
    },
    /// IVF approximate scan: each shard clusters its rows into coarse
    /// cells (deterministic seeded k-means, [`gbm_quant::IvfCells`]),
    /// scores the query against cell centroids only, visits the member
    /// rows of the `nprobe` nearest cells over the int8 code mirror, and
    /// exact-f32 re-ranks the approximate top-`widen · k` survivors.
    /// Sub-linear in pool size — and, unlike `F32`/`Int8`, **approximate**:
    /// rows whose cell isn't probed are never seen, so the contract is a
    /// measured recall floor (`gbm-eval`, `probe_quant`), not rank
    /// identity. Shards below [`gbm_quant::IVF_MIN_TRAIN_ROWS`] rows stay
    /// untrained and fall back to the exact int8 path, so small pools keep
    /// bit-identical rankings.
    Ivf {
        /// Cells probed per shard per query (`0` is clamped to 1; values
        /// past the cell count visit every cell). Higher `nprobe` trades
        /// scan speed for recall — the recall@K-vs-nprobe sweep in
        /// EXPERIMENTS.md quantifies the curve.
        nprobe: usize,
        /// Re-rank width: the `widen · k` best approximate candidates from
        /// the probed cells get exact f32 scores (`0` is clamped to 1).
        widen: usize,
    },
}

/// The int8 mirror of one shard's embedding rows: maintained alongside the
/// f32 matrix (same push / swap-fill lifecycle, asserted in tests) and
/// scanned for the candidate rows an exact re-rank must score.
#[derive(Default)]
pub struct QuantizedShard {
    /// `None` until the first row arrives (the row width isn't known
    /// before then — same convention as `ShardedIndex::hidden == 0`).
    mat: Option<QuantizedMatrix>,
    /// L1 norm of each *live* f32 row, in row order (swap-fill on remove,
    /// mirroring the code matrix) — what lets removal recompute the exact
    /// maxima below instead of leaving them stale.
    l1s: Vec<f32>,
    /// Largest quantization scale per `SCAN_BLOCK` of live rows. Block
    /// granularity (rather than one shard-wide maximum) lets the margin
    /// scan cut each block against *its own* error bound: one outlier row
    /// fattens only its block's margin, not the whole shard's, which
    /// strictly shrinks the candidate zone in the near-duplicate regime
    /// (regression-tested below). Removal recomputes only the two touched
    /// blocks exactly — O(`SCAN_BLOCK`) — so the bounds track the live
    /// pool instead of ratcheting up under churn.
    block_scale: Vec<f32>,
    /// Largest row L1 norm per `SCAN_BLOCK` (same maintenance).
    block_l1: Vec<f32>,
}

impl QuantizedShard {
    /// An empty mirror.
    pub fn new() -> QuantizedShard {
        QuantizedShard::default()
    }

    /// Quantizes and appends one f32 row (call in lockstep with the f32
    /// matrix's push).
    pub fn push_row(&mut self, row: &[f32]) {
        let mat = self
            .mat
            .get_or_insert_with(|| QuantizedMatrix::new(row.len()));
        mat.push_row(row);
        let l1 = row.iter().map(|v| v.abs()).sum();
        self.l1s.push(l1);
        let r = mat.rows() - 1;
        let b = r / SCAN_BLOCK;
        let scale = mat.scale(r);
        if b == self.block_scale.len() {
            self.block_scale.push(scale);
            self.block_l1.push(l1);
        } else {
            self.block_scale[b] = self.block_scale[b].max(scale);
            self.block_l1[b] = self.block_l1[b].max(l1);
        }
    }

    /// Swap-fill removal of row `r` (call in lockstep with the f32
    /// matrix's swap-remove). The swap disturbs at most two blocks — the
    /// one `r` lives in (filled by the old last row) and the final block
    /// (which shrank) — and both get their maxima recomputed exactly, an
    /// O(`SCAN_BLOCK`) pass, so [`max_dot_error`](Self::max_dot_error) and
    /// the per-block bounds stay tight for the live pool instead of
    /// ratcheting up forever under churn.
    pub fn swap_remove_row(&mut self, r: usize) {
        let mat = self
            .mat
            .as_mut()
            .expect("remove on an empty quantized shard");
        mat.swap_remove_row(r);
        self.l1s.swap_remove(r);
        let nblocks = mat.rows().div_ceil(SCAN_BLOCK);
        self.block_scale.truncate(nblocks);
        self.block_l1.truncate(nblocks);
        if nblocks > 0 {
            self.recompute_block(nblocks - 1);
            let rb = r / SCAN_BLOCK;
            if rb < nblocks - 1 {
                self.recompute_block(rb);
            }
        }
    }

    /// Recomputes block `b`'s maxima exactly over its live rows.
    fn recompute_block(&mut self, b: usize) {
        let mat = self.mat.as_ref().expect("recompute on an empty shard");
        let lo = b * SCAN_BLOCK;
        let hi = ((b + 1) * SCAN_BLOCK).min(mat.rows());
        self.block_scale[b] = (lo..hi).map(|i| mat.scale(i)).fold(0.0, f32::max);
        self.block_l1[b] = self.l1s[lo..hi].iter().copied().fold(0.0, f32::max);
    }

    /// Mirrored row count.
    pub fn rows(&self) -> usize {
        self.mat.as_ref().map_or(0, |m| m.rows())
    }

    /// The underlying code matrix (`None` while empty) — read by the
    /// persistence layer, which snapshots codes and scales and verifies
    /// them bit-equal against a deterministic requantization at load.
    pub fn matrix(&self) -> Option<&QuantizedMatrix> {
        self.mat.as_ref()
    }

    /// Largest quantization scale per [`SCAN_BLOCK`] of live rows — the
    /// artifact writer serializes these so a mapped index evaluates the
    /// exact same per-block margins without recomputation.
    pub fn block_scale(&self) -> &[f32] {
        &self.block_scale
    }

    /// Largest row L1 norm per [`SCAN_BLOCK`] (same serialization story).
    pub fn block_l1(&self) -> &[f32] {
        &self.block_l1
    }

    /// This mirror's state as the borrowed [`QuantView`] the scan kernels
    /// read (`None` while empty — no rows means nothing to scan).
    pub(crate) fn view(&self) -> Option<QuantView<'_>> {
        self.mat.as_ref().map(|m| QuantView {
            mat: m.as_view(),
            block_scale: &self.block_scale,
            block_l1: &self.block_l1,
        })
    }

    /// Bytes one full coarse scan touches: codes + scales, plus the two
    /// per-block bound arrays the margin cuts read.
    pub fn scan_bytes(&self) -> usize {
        self.mat.as_ref().map_or(0, |m| m.scan_bytes())
            + (self.block_scale.len() + self.block_l1.len()) * std::mem::size_of::<f32>()
    }

    /// A bound on `|approx − exact|` valid for *every* row in this shard
    /// against the given query: [`gbm_quant::dot_error_bound`] evaluated
    /// at the shard-wide maxima (the fold of the per-block maxima; `l1_q`
    /// is the query's L1 norm), padded 5% + ε for the f32 arithmetic the
    /// real-number derivation ignores. Padding only admits more
    /// candidates.
    pub fn max_dot_error(&self, q: &QuantizedVector, l1_q: f32) -> f32 {
        let max_scale = self.block_scale.iter().copied().fold(0.0, f32::max);
        let max_l1 = self.block_l1.iter().copied().fold(0.0, f32::max);
        let n = q.codes.len() as f32;
        let bound =
            max_scale * 0.5 * l1_q + q.scale * 0.5 * max_l1 + n * q.scale * max_scale * 0.25;
        bound * 1.05 + 1e-6
    }

    /// The per-block analogue of [`max_dot_error`](Self::max_dot_error):
    /// `bounds[b]` caps `|approx − exact|` for every row of block `b`
    /// (same formula, evaluated at that block's maxima, same 5% + ε
    /// padding). By construction `bounds[b] ≤ max_dot_error` for every
    /// block, which is what makes the blocked margin cut strictly tighter.
    pub fn block_bounds(&self, q: &QuantizedVector, l1_q: f32) -> Vec<f32> {
        self.view()
            .map_or_else(Vec::new, |v| v.block_bounds(q, l1_q))
    }

    /// The candidate rows an exact re-rank must score to reproduce the f32
    /// top-`k` (`kprime = k · widen` is the coarse floor): the approximate
    /// top-`kprime` rows **plus** every row whose approximate score is
    /// within `margin` of the `kprime`-th best. With
    /// `margin ≥ 2 · max_dot_error`, the set provably contains the true
    /// top-`k` — a true top-k row beats `kprime` rows exactly, each of
    /// which approximates to within one error bound of the cut.
    ///
    /// Returns `(row, approx_score)` sorted by `(score desc, row asc)`;
    /// blocked like the f32 scan (a `SCAN_BLOCK` score buffer + partial
    /// select per block), with the margin zone accumulated alongside and
    /// pruned as the running cut rises.
    pub fn scan_candidates(
        &self,
        q: &QuantizedVector,
        kprime: usize,
        margin: f32,
    ) -> Vec<(usize, f32)> {
        let Some(mat) = &self.mat else {
            return Vec::new();
        };
        if kprime == 0 {
            return Vec::new();
        }
        let rows = mat.rows();
        // running top-kprime (tracked only to know the threshold) and the
        // full candidate set so far: every row that cleared the threshold
        // in force when its block was scored. The threshold only rises, so
        // a row excluded then would be excluded by the final cut too — and
        // the final retain makes the set exactly {rows: score ≥ t_final}.
        let mut best: Vec<(usize, f32)> = Vec::new();
        let mut cands: Vec<(usize, f32)> = Vec::new();
        let mut scores = [0.0f32; SCAN_BLOCK];
        let mut start = 0;
        while start < rows {
            let n = SCAN_BLOCK.min(rows - start);
            let mut block_max = f32::NEG_INFINITY;
            for (i, s) in scores[..n].iter_mut().enumerate() {
                *s = mat.approx_dot(start + i, q);
                block_max = block_max.max(*s);
            }
            // the per-block partial select only matters when the block can
            // actually displace an entry of the running top-kprime
            let cut = (best.len() >= kprime).then(|| best[kprime - 1].1);
            if cut.is_none_or(|c| block_max >= c) {
                best = merge_row_ranked(
                    best,
                    top_k(&scores[..n], kprime)
                        .into_iter()
                        .map(|(r, s)| (r + start, s))
                        .collect(),
                    kprime,
                );
            }
            // collect against the freshest threshold (merging first only
            // tightens it — any row clearing the final cut clears every
            // earlier one, so nothing admissible is lost)
            let t = threshold(&best, kprime, margin);
            for (i, &s) in scores[..n].iter().enumerate() {
                if t.is_none_or(|t| s >= t) {
                    cands.push((start + i, s));
                }
            }
            // keep the set from growing unboundedly between blocks: prune
            // against the (monotonically risen) threshold
            if cands.len() > kprime + SCAN_BLOCK {
                if let Some(t) = threshold(&best, kprime, margin) {
                    cands.retain(|&(_, s)| s >= t);
                }
            }
            start += n;
        }
        if let Some(t) = threshold(&best, kprime, margin) {
            cands.retain(|&(_, s)| s >= t);
        }
        cands.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        cands
    }

    /// [`scan_candidates`](Self::scan_candidates) with the margin applied
    /// *per block* instead of shard-wide — the tighter cut the per-block
    /// bounds buy. Block `b`'s margin is `bounds[b] + max_b bounds[b]`:
    /// a true top-k row `x` in block `b` exactly beats some row `y` of the
    /// running top-`kprime`, so
    /// `approx(x) ≥ exact(x) − bounds[b(x)] ≥ approx(y) − bounds[b(y)] −
    /// bounds[b(x)] ≥ t − max_bound − bounds[b(x)]` — the same containment
    /// proof as the uniform `2 · max_dot_error` margin, with one of the
    /// two error terms evaluated at the candidate's own block. Since
    /// `bounds[b] ≤ max_bound` everywhere, every cut is at least as tight
    /// as the uniform one, and strictly tighter for any block whose maxima
    /// sit below the shard's (one outlier row no longer fattens every
    /// block's margin). Output contract matches `scan_candidates`:
    /// `(row, approx_score)` sorted by `(score desc, row asc)`, floor of
    /// `kprime` rows always kept.
    pub fn scan_candidates_blocked(
        &self,
        q: &QuantizedVector,
        l1_q: f32,
        kprime: usize,
    ) -> Vec<(usize, f32)> {
        self.view()
            .map_or_else(Vec::new, |v| v.scan_candidates_blocked(q, l1_q, kprime))
    }
}

/// The margin threshold once the coarse floor is full: `kprime`-th best
/// approximate score minus the margin. `None` while fewer than `kprime`
/// rows have been seen (everything is still a candidate).
fn threshold(best: &[(usize, f32)], kprime: usize, margin: f32) -> Option<f32> {
    (best.len() >= kprime).then(|| best[kprime - 1].1 - margin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbm_quant::quantize_vector;

    fn synth_rows(n: usize, hidden: usize) -> Vec<f32> {
        (0..n * hidden)
            .map(|i| ((i * 37 + 11) % 201) as f32 / 100.0 - 1.0)
            .collect()
    }

    #[test]
    fn candidates_cross_block_boundaries_and_sort_by_score_then_row() {
        let hidden = 8;
        let n = SCAN_BLOCK + 50;
        let rows = synth_rows(n, hidden);
        let mut shard = QuantizedShard::new();
        for row in rows.chunks_exact(hidden) {
            shard.push_row(row);
        }
        assert_eq!(shard.rows(), n);
        let query: Vec<f32> = (0..hidden).map(|i| (i as f32 * 0.3).sin()).collect();
        let q = quantize_vector(&query);
        // reference: quantize each row independently and full-sort
        let mat = QuantizedMatrix::from_rows(&rows, hidden);
        let mut expect: Vec<(usize, f32)> = (0..n).map(|r| (r, mat.approx_dot(r, &q))).collect();
        expect.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for kprime in [1usize, 7, SCAN_BLOCK, n + 3] {
            for margin in [0.0f32, 0.05] {
                let got = shard.scan_candidates(&q, kprime, margin);
                // exactly the rows at or above (kprime-th best − margin)
                let cut = expect[kprime.min(n) - 1].1 - margin;
                let want: Vec<(usize, f32)> = expect
                    .iter()
                    .copied()
                    .take_while(|&(_, s)| s >= cut)
                    .collect();
                assert_eq!(got, want, "kprime={kprime} margin={margin}");
                assert!(got.len() >= kprime.min(n), "floor always kept");
            }
        }
    }

    #[test]
    fn empty_shard_and_zero_kprime_answer_empty() {
        let shard = QuantizedShard::new();
        let q = quantize_vector(&[1.0, 2.0]);
        assert_eq!(shard.scan_candidates(&q, 5, 0.1), vec![]);
        assert_eq!(shard.rows(), 0);
        assert_eq!(shard.scan_bytes(), 0);
        let mut filled = QuantizedShard::new();
        filled.push_row(&[1.0, 2.0]);
        assert_eq!(filled.scan_candidates(&q, 0, 0.1), vec![]);
    }

    #[test]
    fn margin_covers_true_rows_on_a_near_duplicate_pool() {
        // the adversarial case: rows packed tighter than the quantization
        // resolution — the margin must admit (up to) the whole shard
        // rather than let the coarse ranking decide
        let hidden = 16;
        let base: Vec<f32> = (0..hidden).map(|i| ((i as f32) * 0.37).sin()).collect();
        let mut shard = QuantizedShard::new();
        let n = 40;
        let mut all_rows = Vec::new();
        for r in 0..n {
            let mut row = base.clone();
            row[0] += r as f32 * 1e-5; // differences far below scale/2
            shard.push_row(&row);
            all_rows.push(row);
        }
        let q = quantize_vector(&base);
        let l1_q: f32 = base.iter().map(|v| v.abs()).sum();
        let margin = 2.0 * shard.max_dot_error(&q, l1_q);
        let got = shard.scan_candidates(&q, 2, margin);
        assert_eq!(
            got.len(),
            n,
            "near-duplicate rows are indistinguishable at int8: all stay candidates"
        );
    }

    /// The churn regression for the margin satellite: removing an outlier
    /// row must shrink `max_dot_error` back to exactly the bound of a
    /// shard that never saw the outlier — stale-high maxima would keep the
    /// fat margin (and its over-admitted candidates) forever.
    #[test]
    fn error_margin_shrinks_back_after_removing_the_outlier() {
        let hidden = 8;
        let normal: Vec<Vec<f32>> = (0..5)
            .map(|r| {
                (0..hidden)
                    .map(|i| ((r * hidden + i) as f32 * 0.21).sin() * 0.3)
                    .collect()
            })
            .collect();
        let outlier: Vec<f32> = (0..hidden).map(|i| 50.0 + i as f32).collect();
        let query: Vec<f32> = (0..hidden).map(|i| (i as f32 * 0.4).cos()).collect();
        let q = quantize_vector(&query);
        let l1_q: f32 = query.iter().map(|v| v.abs()).sum();

        let mut clean = QuantizedShard::new();
        for row in &normal {
            clean.push_row(row);
        }
        let clean_bound = clean.max_dot_error(&q, l1_q);

        // outlier first, so its removal swap-fills from the middle of the
        // row order rather than popping the tail
        let mut churned = QuantizedShard::new();
        churned.push_row(&outlier);
        for row in &normal {
            churned.push_row(row);
        }
        let fat_bound = churned.max_dot_error(&q, l1_q);
        assert!(
            fat_bound > 10.0 * clean_bound,
            "outlier inflates the bound ({fat_bound} vs {clean_bound})"
        );
        churned.swap_remove_row(0);
        assert_eq!(churned.rows(), normal.len());
        assert_eq!(
            churned.max_dot_error(&q, l1_q),
            clean_bound,
            "maxima recompute exactly: the bound equals a never-outlier shard"
        );
        // removing a non-max row keeps the (already tight) bound intact
        churned.swap_remove_row(1);
        assert!(churned.max_dot_error(&q, l1_q) <= clean_bound);
        // drain to empty: the maxima collapse to zero, not NaN/-inf
        while churned.rows() > 0 {
            churned.swap_remove_row(0);
        }
        assert_eq!(churned.max_dot_error(&q, l1_q), 1e-6);
    }

    #[test]
    fn scan_bytes_tracks_push_and_remove() {
        let mut shard = QuantizedShard::new();
        shard.push_row(&[1.0; 16]);
        shard.push_row(&[2.0; 16]);
        // codes + scales, plus one block's worth of bound entries (2 f32s)
        assert_eq!(shard.scan_bytes(), 2 * (16 + 4) + 8);
        shard.swap_remove_row(0);
        assert_eq!(shard.scan_bytes(), 16 + 4 + 8);
        shard.swap_remove_row(0);
        assert_eq!(
            shard.scan_bytes(),
            0,
            "drained shard drops its bound blocks"
        );
    }

    /// The per-block satellite's regression: one outlier row must fatten
    /// only *its* block's margin. A near-duplicate cluster holds the top
    /// scores, an outlier in the same block blows up that block's bound,
    /// and a separate tame block holds rows spread across the margin zone
    /// — the shard-wide margin (2·max bound) admits them all, the blocked
    /// margin (tame bound + max bound) cuts strictly deeper, and both
    /// candidate sets still re-rank to the exact f32 top-k.
    #[test]
    fn per_block_margins_strictly_shrink_the_candidate_zone() {
        let hidden = 16;
        let base: Vec<f32> = (0..hidden)
            .map(|i| ((i as f32) * 0.37).sin() + 1.1)
            .collect();
        let mut shard = QuantizedShard::new();
        let mut all_rows: Vec<Vec<f32>> = Vec::new();
        let mut push = |shard: &mut QuantizedShard, row: Vec<f32>| {
            shard.push_row(&row);
            all_rows.push(row);
        };
        // block 0: near-duplicates of the query + one huge outlier
        for r in 0..SCAN_BLOCK {
            if r == 7 {
                push(&mut shard, (0..hidden).map(|i| 30.0 + i as f32).collect());
            } else {
                let mut row = base.clone();
                row[0] += r as f32 * 1e-5;
                push(&mut shard, row);
            }
        }
        // block 1: tame rows whose scores ramp down smoothly below the top
        // cluster, right through the two competing margin cuts
        for r in 0..SCAN_BLOCK {
            let alpha = 0.9 - r as f32 * (1.8 / SCAN_BLOCK as f32); // 0.9 → −0.9
            push(&mut shard, base.iter().map(|v| v * alpha).collect());
        }

        let q = quantize_vector(&base);
        let l1_q: f32 = base.iter().map(|v| v.abs()).sum();
        let kprime = 8;
        let uniform = shard.scan_candidates(&q, kprime, 2.0 * shard.max_dot_error(&q, l1_q));
        let blocked = shard.scan_candidates_blocked(&q, l1_q, kprime);
        assert!(
            blocked.len() < uniform.len(),
            "blocked margins must admit strictly fewer candidates ({} vs {})",
            blocked.len(),
            uniform.len()
        );
        assert!(blocked.len() >= kprime, "coarse floor always kept");
        let uniform_rows: std::collections::HashSet<usize> =
            uniform.iter().map(|&(r, _)| r).collect();
        assert!(
            blocked.iter().all(|&(r, _)| uniform_rows.contains(&r)),
            "tighter cut only drops candidates, never adds"
        );

        // exactness: re-ranking the blocked candidates with true f32 dots
        // reproduces the exact top-k (ids and scores)
        let dot = |row: &[f32]| -> f32 { row.iter().zip(&base).map(|(a, b)| a * b).sum() };
        let mut exact: Vec<(usize, f32)> = all_rows.iter().map(|r| dot(r)).enumerate().collect();
        exact.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let k = 5;
        let mut rerank: Vec<(usize, f32)> = blocked
            .iter()
            .map(|&(r, _)| (r, dot(&all_rows[r])))
            .collect();
        rerank.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        assert_eq!(
            &rerank[..k],
            &exact[..k],
            "blocked cut keeps the true top-k"
        );
    }

    /// On a homogeneous single-block pool the per-block and shard-wide
    /// margins coincide, so both scans must return the identical set.
    #[test]
    fn blocked_scan_matches_uniform_on_a_single_block() {
        let hidden = 8;
        let rows = synth_rows(SCAN_BLOCK / 2, hidden);
        let mut shard = QuantizedShard::new();
        for row in rows.chunks_exact(hidden) {
            shard.push_row(row);
        }
        let query: Vec<f32> = (0..hidden).map(|i| (i as f32 * 0.3).sin()).collect();
        let q = quantize_vector(&query);
        let l1_q: f32 = query.iter().map(|v| v.abs()).sum();
        for kprime in [1usize, 5, 40] {
            let uniform = shard.scan_candidates(&q, kprime, 2.0 * shard.max_dot_error(&q, l1_q));
            let blocked = shard.scan_candidates_blocked(&q, l1_q, kprime);
            assert_eq!(uniform, blocked, "kprime={kprime}");
        }
    }
}
