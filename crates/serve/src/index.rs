//! The sharded embedding index: the candidate pool as S dense shards, each
//! answering top-K cosine queries with a blocked partial-select scan.
//!
//! Graph ids map to shards by a stable hash ([`shard_of`] — splitmix64, so
//! placement never depends on insertion order or process state). Each shard
//! owns a row-major `[rows × hidden]` embedding matrix — embeddings are
//! unit-norm, so cosine *is* the dot product and a shard query is one
//! matvec + [`top_k`] partial select, O(rows · hidden + rows · log K), with
//! a block-sized buffer instead of an all-rows score materialization.
//! Shards scan in parallel (rayon) and the per-shard sorted lists k-way
//! merge by `(score desc, id asc)`.
//!
//! **Exactness:** after [`ShardedIndex::build`], a query returns exactly the
//! first K entries of the monolithic ranking — the stable descending cosine
//! sort over the whole pool that `gbm_eval::retrieval::rank_candidates`
//! produces under `RankBy::Cosine` — for *any* shard count, ties included
//! (dot products accumulate in the same order as
//! [`EmbeddingStore::cosine`](gbm_nn::EmbeddingStore::cosine), so scores are
//! bit-identical). After incremental [`insert`](ShardedIndex::insert)/
//! [`remove`](ShardedIndex::remove), exact-tie order within a shard follows
//! row order (insertion order, perturbed by remove's swap-fill) instead of
//! id order; scores themselves stay exact.
//!
//! Incremental updates batch: `insert` queues the graph in its shard's
//! pending list and re-encodes a full pending batch through **one**
//! disjoint-union forward; [`flush`](ShardedIndex::flush) drains the
//! remainders (e.g. before serving a query — pending graphs are invisible
//! to [`query`](ShardedIndex::query) until flushed).

use std::collections::HashMap;

use gbm_nn::{EmbeddingStore, EncodedGraph, GraphBinMatch};
use gbm_quant::IvfCells;
use gbm_tensor::Tensor;
use rayon::prelude::*;

use crate::quantized::{QuantizedShard, ScanPrecision};
use crate::scan::{prepare_query, scan_shard, IvfRef, ShardView};

/// Identifier of a graph in the index (for pool-backed indexes: the pool
/// position).
pub type GraphId = u64;

/// Rows scored per block in a shard scan: big enough to amortize the
/// per-block partial select, small enough that the score buffer stays in
/// cache instead of materializing all rows' scores.
pub(crate) const SCAN_BLOCK: usize = 256;

/// Sharding and encoding policy for a [`ShardedIndex`].
#[derive(Clone, Copy, Debug)]
pub struct IndexConfig {
    /// Number of hash shards (clamped to at least 1).
    pub num_shards: usize,
    /// Graphs per batched encoder forward, both at build time and for the
    /// pending-insert re-encode batches.
    pub encode_batch: usize,
    /// Shard-scan scoring: exact f32 dots, an int8 coarse scan over a
    /// quantized row mirror followed by an exact f32 re-score of the
    /// widened candidate set ([`ScanPrecision::Int8`]'s `widen` is clamped
    /// to at least 1), or the IVF approximate scan
    /// ([`ScanPrecision::Ivf`], bounded recall rather than rank identity).
    pub precision: ScanPrecision,
    /// Coarse cells per shard at [`ScanPrecision::Ivf`]; `0` (the default)
    /// sizes each shard automatically at `≈√rows` per training round.
    /// Ignored at the exact precisions.
    pub ivf_cells: usize,
}

impl Default for IndexConfig {
    fn default() -> IndexConfig {
        IndexConfig {
            num_shards: 4,
            encode_batch: gbm_nn::embeddings::DEFAULT_ENCODE_BATCH,
            precision: ScanPrecision::F32,
            ivf_cells: 0,
        }
    }
}

impl IndexConfig {
    /// Applies the index env knobs, warn-and-fall-back like every serve
    /// knob: `GBM_IVF_CELLS` overrides [`ivf_cells`](Self::ivf_cells)
    /// (`0` = auto), and `GBM_SCAN_NPROBE` overrides
    /// [`ScanPrecision::Ivf`]'s `nprobe` — with a loud warning (and no
    /// effect) when the configured precision isn't IVF, so a stray knob
    /// can't silently change an exact deployment's semantics.
    pub fn with_env(mut self) -> IndexConfig {
        if let Some(cells) = crate::env::env_knob::<usize>("GBM_IVF_CELLS", "a cell count") {
            self.ivf_cells = cells;
        }
        if let Some(np) = crate::env::env_knob::<usize>("GBM_SCAN_NPROBE", "a probe count") {
            match &mut self.precision {
                ScanPrecision::Ivf { nprobe, .. } => *nprobe = np,
                other => eprintln!(
                    "warning: GBM_SCAN_NPROBE={np} ignored: scan precision is {other:?}, not Ivf"
                ),
            }
        }
        self
    }
}

/// What one query's scan actually did, accumulated across the shards it
/// touched — the per-query observability record behind
/// [`ShardedIndex::query_stats`] and the serving layer's trace spans.
///
/// Semantics per precision tier:
///
/// * **f32** — `rows_scanned` counts every row (all exactly scored);
///   `cells_probed` and `survivors` stay 0, `scan_bytes` is the dense
///   matrix walked.
/// * **int8** — `rows_scanned` counts every row (the coarse scan visits
///   all codes); `survivors` is the margin-cut candidate set that got the
///   exact f32 re-score; `scan_bytes` is the code mirror plus the
///   survivors' f32 rows.
/// * **IVF** — `cells_probed` is the probed cell count, `rows_scanned`
///   only the probed cells' members, `survivors` the re-ranked
///   `k·widen` set; `scan_bytes` is the probe cost
///   ([`gbm_quant::IvfCells::probe_stats`]) plus visited codes plus the
///   survivors' f32 rows. Untrained shards fall back to int8 accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Shards this scan visited (empty shards included — they were asked).
    pub shards: u64,
    /// Rows whose scores were computed, at any precision.
    pub rows_scanned: u64,
    /// IVF cells probed (0 on the exact tiers).
    pub cells_probed: u64,
    /// Candidates that survived to the exact f32 re-rank (0 at plain f32,
    /// where every row is already exact).
    pub survivors: u64,
    /// Bytes of index data this scan read.
    pub scan_bytes: u64,
}

impl ScanStats {
    /// Folds another scan's counts into this one (what the serving layer
    /// does with per-worker partial stats).
    pub fn merge(&mut self, other: &ScanStats) {
        self.shards += other.shards;
        self.rows_scanned += other.rows_scanned;
        self.cells_probed += other.cells_probed;
        self.survivors += other.survivors;
        self.scan_bytes += other.scan_bytes;
    }
}

/// splitmix64: a stable, well-mixed 64-bit hash (sequential ids spread
/// uniformly instead of striping).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard owning `id` — a pure function of the id, never of index state,
/// so routing stays consistent across rebuilds, processes, and hosts.
pub fn shard_of(id: GraphId, num_shards: usize) -> usize {
    (splitmix64(id) % num_shards.max(1) as u64) as usize
}

/// One shard: a dense embedding matrix plus its pending (queued, not yet
/// encoded) inserts, and — when the index scans at int8 — a quantized
/// mirror of the rows maintained in lockstep.
#[derive(Default)]
struct Shard {
    /// `ids[r]` owns matrix row `r`.
    ids: Vec<GraphId>,
    /// Row-major `[ids.len() × hidden]`.
    rows: Vec<f32>,
    /// id → row, for O(1) remove/contains.
    row_of: HashMap<GraphId, usize>,
    /// Queued inserts awaiting their batched re-encode.
    pending: Vec<(GraphId, EncodedGraph)>,
    /// int8 code mirror of `rows` (`Some` iff the index scans at
    /// [`ScanPrecision::Int8`] or [`ScanPrecision::Ivf`] — the IVF scan
    /// approximate-scores probed cells over it); every push/remove updates
    /// both.
    quant: Option<QuantizedShard>,
    /// IVF cell index over `rows` (`Some` iff the index scans at
    /// [`ScanPrecision::Ivf`]), maintained through the same push /
    /// swap-remove lifecycle. Untrained (and exact-fallback) below
    /// [`gbm_quant::IVF_MIN_TRAIN_ROWS`] rows.
    ivf: Option<IvfCells>,
}

impl Shard {
    fn push_row(&mut self, id: GraphId, row: &[f32]) {
        self.row_of.insert(id, self.ids.len());
        self.ids.push(id);
        self.rows.extend_from_slice(row);
        if let Some(q) = &mut self.quant {
            q.push_row(row);
        }
        if let Some(ivf) = &mut self.ivf {
            ivf.push_row(&self.rows, row.len());
        }
    }

    fn remove_encoded(&mut self, id: GraphId, hidden: usize) -> bool {
        let Some(row) = self.row_of.remove(&id) else {
            return false;
        };
        let last = self.ids.len() - 1;
        if row != last {
            // swap-fill the hole with the last row
            let moved = self.ids[last];
            self.ids[row] = moved;
            self.row_of.insert(moved, row);
            let (head, tail) = self.rows.split_at_mut(last * hidden);
            head[row * hidden..(row + 1) * hidden].copy_from_slice(&tail[..hidden]);
        }
        self.ids.pop();
        self.rows.truncate(last * hidden);
        if let Some(q) = &mut self.quant {
            q.swap_remove_row(row);
        }
        if let Some(ivf) = &mut self.ivf {
            ivf.swap_remove_row(row, &self.rows, hidden);
        }
        true
    }

    /// This shard's scannable state as borrowed slices — the owned side of
    /// the [`ShardView`] contract the scan kernels (`crate::scan`) run
    /// over. The mapped [`ReadOnlyIndex`](crate::artifact::ReadOnlyIndex)
    /// builds the same view type from artifact bytes, so both index
    /// flavors execute literally the same scan code.
    fn view(&self) -> ShardView<'_> {
        ShardView {
            ids: &self.ids,
            rows: &self.rows,
            quant: self.quant.as_ref().and_then(QuantizedShard::view),
            ivf: self.ivf.as_ref().map(IvfRef::Owned),
        }
    }
}

/// Merges two `(row, score)` lists, each sorted by `(score desc, row asc)`,
/// keeping the best `k`. Shared with the quantized coarse scan
/// (`quantized::QuantizedShard::scan_candidates`). Thin wrapper over the
/// general ranked k-way merge in `gbm-tensor`.
pub(crate) fn merge_row_ranked(
    a: Vec<(usize, f32)>,
    b: Vec<(usize, f32)>,
    k: usize,
) -> Vec<(usize, f32)> {
    if a.is_empty() {
        return b;
    }
    gbm_tensor::merge_ranked(&[a, b], k)
}

/// The graph pool partitioned into hash shards of batched-encoded
/// embeddings, queryable for exact top-K cosine neighbours.
pub struct ShardedIndex {
    shards: Vec<Shard>,
    cfg: IndexConfig,
    /// Embedding width; 0 until the first row is encoded.
    hidden: usize,
}

impl ShardedIndex {
    /// An empty index (rows arrive via [`insert`](ShardedIndex::insert)).
    pub fn new(cfg: IndexConfig) -> ShardedIndex {
        let cfg = IndexConfig {
            num_shards: cfg.num_shards.max(1),
            encode_batch: cfg.encode_batch.max(1),
            precision: match cfg.precision {
                ScanPrecision::Int8 { widen } => ScanPrecision::Int8 {
                    widen: widen.max(1),
                },
                ScanPrecision::Ivf { nprobe, widen } => ScanPrecision::Ivf {
                    nprobe: nprobe.max(1),
                    widen: widen.max(1),
                },
                p => p,
            },
            ivf_cells: cfg.ivf_cells,
        };
        let quantized = matches!(
            cfg.precision,
            ScanPrecision::Int8 { .. } | ScanPrecision::Ivf { .. }
        );
        let ivf = matches!(cfg.precision, ScanPrecision::Ivf { .. });
        ShardedIndex {
            shards: (0..cfg.num_shards)
                .map(|s| Shard {
                    quant: quantized.then(QuantizedShard::new),
                    // per-shard seed derived from the shard position: pure,
                    // so two builds of the same rows train identically
                    ivf: ivf.then(|| IvfCells::new(cfg.ivf_cells, splitmix64(s as u64))),
                    ..Shard::default()
                })
                .collect(),
            cfg,
            hidden: 0,
        }
    }

    /// Builds an index directly from precomputed unit-norm embedding rows
    /// (row-major `[n × hidden]`; row `i` gets id `i`) — the "load a
    /// serialized embedding matrix" path: no model or encoder involved, so
    /// pools far beyond what a test model could encode can be served (and
    /// benchmarked) from stored rows.
    pub fn from_rows(rows: &[f32], hidden: usize, cfg: IndexConfig) -> ShardedIndex {
        assert!(hidden > 0, "hidden must be positive");
        assert_eq!(rows.len() % hidden, 0, "rows must be a whole matrix");
        let mut index = ShardedIndex::new(cfg);
        index.hidden = hidden;
        for (i, row) in rows.chunks_exact(hidden).enumerate() {
            let id = i as GraphId;
            index.shards[shard_of(id, index.cfg.num_shards)].push_row(id, row);
        }
        index
    }

    /// Builds the index over a whole pool: one batched
    /// [`EmbeddingStore`] encode (rayon across batches), then rows
    /// partitioned by [`shard_of`]. Graph `i` gets id `i`.
    pub fn build(model: &GraphBinMatch, pool: &[EncodedGraph], cfg: IndexConfig) -> ShardedIndex {
        let mut index = ShardedIndex::new(cfg);
        if pool.is_empty() {
            return index;
        }
        let store = EmbeddingStore::build_batched(model, pool, index.cfg.encode_batch);
        index.hidden = store.embedding(0).dims()[1];
        for i in 0..pool.len() {
            let id = i as GraphId;
            let shard = shard_of(id, index.cfg.num_shards);
            index.shards[shard].push_row(id, store.embedding(i).data());
        }
        index
    }

    /// Queues `graph` under `id` in its shard's pending batch; a full batch
    /// (`encode_batch` graphs) re-encodes immediately through one batched
    /// forward. Inserting an existing id replaces it.
    pub fn insert(&mut self, model: &GraphBinMatch, id: GraphId, graph: EncodedGraph) {
        self.remove(id);
        let shard = shard_of(id, self.cfg.num_shards);
        self.shards[shard].pending.push((id, graph));
        if self.shards[shard].pending.len() >= self.cfg.encode_batch {
            self.flush_shard(model, shard);
        }
    }

    /// Encodes every shard's pending batch (shards in parallel, one batched
    /// forward per shard batch). Returns the number of graphs encoded.
    pub fn flush(&mut self, model: &GraphBinMatch) -> usize {
        let work: Vec<(usize, Vec<(GraphId, EncodedGraph)>)> = self
            .shards
            .iter_mut()
            .enumerate()
            .filter(|(_, s)| !s.pending.is_empty())
            .map(|(i, s)| (i, std::mem::take(&mut s.pending)))
            .collect();
        if work.is_empty() {
            return 0;
        }
        let snapshot = model.store.snapshot();
        let model_cfg = *model.config();
        let counter = model.encoder().counter();
        let encode_batch = self.cfg.encode_batch;
        // each item is one or more whole batched forwards: always worth a thread
        let encoded: Vec<(usize, Vec<(GraphId, Tensor)>)> = work
            .par_iter()
            .with_min_len(1)
            .map(|(shard, batch)| {
                let replica = GraphBinMatch::from_snapshot(
                    model_cfg,
                    &snapshot,
                    std::sync::Arc::clone(&counter),
                );
                let mut rows = Vec::with_capacity(batch.len());
                for chunk in batch.chunks(encode_batch) {
                    let graphs: Vec<&EncodedGraph> = chunk.iter().map(|(_, g)| g).collect();
                    let embs = replica.encoder().embed_batch(&graphs);
                    rows.extend(chunk.iter().map(|(id, _)| *id).zip(embs));
                }
                (*shard, rows)
            })
            .collect();
        let mut total = 0;
        for (shard, rows) in encoded {
            for (id, emb) in rows {
                if self.hidden == 0 {
                    self.hidden = emb.dims()[1];
                }
                self.shards[shard].push_row(id, emb.data());
                total += 1;
            }
        }
        total
    }

    fn flush_shard(&mut self, model: &GraphBinMatch, shard: usize) {
        let batch = std::mem::take(&mut self.shards[shard].pending);
        if batch.is_empty() {
            return;
        }
        let graphs: Vec<&EncodedGraph> = batch.iter().map(|(_, g)| g).collect();
        let embs = model.encoder().embed_batch(&graphs);
        for ((id, _), emb) in batch.iter().zip(embs) {
            if self.hidden == 0 {
                self.hidden = emb.dims()[1];
            }
            self.shards[shard].push_row(*id, emb.data());
        }
    }

    /// Publishes a precomputed embedding row under `id`, replacing any
    /// existing row or pending insert — the serving front-end's write
    /// entry point: the expensive encode runs off to the side (an encode
    /// worker's batched forward) and only this O(hidden) append happens
    /// under the index writer's lock. The first published row fixes the
    /// index width, exactly like the first encoded batch.
    pub fn insert_row(&mut self, id: GraphId, row: &[f32]) {
        if self.hidden == 0 {
            self.hidden = row.len();
        }
        assert_eq!(
            row.len(),
            self.hidden,
            "published row width must match the index"
        );
        self.remove(id);
        self.shards[shard_of(id, self.cfg.num_shards)].push_row(id, row);
    }

    /// Removes `id` (encoded or still pending). Returns whether it existed.
    pub fn remove(&mut self, id: GraphId) -> bool {
        let hidden = self.hidden;
        let shard = &mut self.shards[shard_of(id, self.cfg.num_shards)];
        if let Some(pos) = shard.pending.iter().position(|(pid, _)| *pid == id) {
            shard.pending.remove(pos);
            return true;
        }
        shard.remove_encoded(id, hidden)
    }

    /// Exact top-K cosine neighbours of `query` (a `[hidden]` embedding
    /// slice, e.g. `Tensor::data()` of a coalescer row): shards scan in
    /// parallel, sorted shard lists k-way merge by `(score desc, id asc)`.
    /// Pending (unflushed) inserts are not searched.
    pub fn query(&self, query: &[f32], k: usize) -> Vec<(GraphId, f32)> {
        self.query_stats(query, k).0
    }

    /// [`query`](Self::query) plus the scan's [`ScanStats`] — what the
    /// serving layer records into metrics and trace spans. Same answer,
    /// same cost; the stats are O(1) increments already known to the scan.
    pub fn query_stats(&self, query: &[f32], k: usize) -> (Vec<(GraphId, f32)>, ScanStats) {
        if k == 0 || self.num_encoded() == 0 {
            return (Vec::new(), ScanStats::default());
        }
        assert_eq!(
            query.len(),
            self.hidden,
            "query embedding width must match the index"
        );
        let hidden = self.hidden;
        let precision = self.cfg.precision;
        // the quantized query and its L1 norm are shard-independent:
        // compute once here, not once per shard in the fan-out
        let quant_query = prepare_query(precision, query);
        let per_shard: Vec<(Vec<(GraphId, f32)>, ScanStats)> = self
            .shards
            .par_iter()
            .with_min_len(1)
            .map(|s| {
                let mut stats = ScanStats::default();
                let ranked = scan_shard(
                    &s.view(),
                    query,
                    &quant_query,
                    k,
                    precision,
                    hidden,
                    &mut stats,
                );
                (ranked, stats)
            })
            .collect();
        let mut stats = ScanStats::default();
        let mut partials = Vec::with_capacity(per_shard.len());
        for (ranked, s) in per_shard {
            stats.merge(&s);
            partials.push(ranked);
        }
        (gbm_tensor::merge_ranked(&partials, k), stats)
    }

    /// The fan-out half of [`query`](Self::query): scans only the shards in
    /// `shards` (sequentially — a scan worker thread *is* the parallelism)
    /// and returns their merged top-K partial, ranked by `(score desc,
    /// id asc)`. Merging the partials of any disjoint cover of
    /// `0..num_shards()` with [`gbm_tensor::merge_ranked`] reproduces
    /// `query`'s answer exactly — ids, scores, and tie order (the merge is
    /// associative; equivalence-tested across partitions, shard counts,
    /// and precisions). Scoring — including the int8 coarse scan's
    /// quantized query, recomputed here per call — is bit-identical to the
    /// full query path.
    pub fn query_shards(
        &self,
        shards: std::ops::Range<usize>,
        query: &[f32],
        k: usize,
    ) -> Vec<(GraphId, f32)> {
        self.query_shards_stats(shards, query, k).0
    }

    /// [`query_shards`](Self::query_shards) plus the partial's
    /// [`ScanStats`] — the per-worker accounting the concurrent front-end
    /// folds into its query metrics and trace spans.
    pub fn query_shards_stats(
        &self,
        shards: std::ops::Range<usize>,
        query: &[f32],
        k: usize,
    ) -> (Vec<(GraphId, f32)>, ScanStats) {
        assert!(shards.end <= self.shards.len(), "shard range out of bounds");
        let live = self.shards[shards.clone()]
            .iter()
            .any(|s| !s.ids.is_empty());
        if k == 0 || !live {
            return (Vec::new(), ScanStats::default());
        }
        assert_eq!(
            query.len(),
            self.hidden,
            "query embedding width must match the index"
        );
        let hidden = self.hidden;
        let precision = self.cfg.precision;
        let quant_query = prepare_query(precision, query);
        let mut stats = ScanStats::default();
        let per_shard: Vec<Vec<(GraphId, f32)>> = self.shards[shards]
            .iter()
            .map(|s| {
                scan_shard(
                    &s.view(),
                    query,
                    &quant_query,
                    k,
                    precision,
                    hidden,
                    &mut stats,
                )
            })
            .collect();
        (gbm_tensor::merge_ranked(&per_shard, k), stats)
    }

    /// Bytes one full scan pass touches under the configured precision:
    /// the dense f32 matrices; the int8 code mirrors plus per-row scales
    /// and per-block bound arrays (~4× less); or, at IVF, the int8
    /// structures plus the centroid matrices and cell lists the probe
    /// reads — the quantization memory story, reported honestly by
    /// `probe_quant`.
    pub fn scan_bytes(&self) -> usize {
        match self.cfg.precision {
            ScanPrecision::F32 => self
                .shards
                .iter()
                .map(|s| s.rows.len() * std::mem::size_of::<f32>())
                .sum(),
            ScanPrecision::Int8 { .. } => self
                .shards
                .iter()
                .map(|s| s.quant.as_ref().map_or(0, |q| q.scan_bytes()))
                .sum(),
            ScanPrecision::Ivf { .. } => self
                .shards
                .iter()
                .map(|s| {
                    s.quant.as_ref().map_or(0, |q| q.scan_bytes())
                        + s.ivf.as_ref().map_or(0, |i| i.scan_bytes())
                })
                .sum(),
        }
    }

    /// The embedding row of `id`, if encoded.
    pub fn embedding(&self, id: GraphId) -> Option<Tensor> {
        let shard = &self.shards[shard_of(id, self.cfg.num_shards)];
        let row = *shard.row_of.get(&id)?;
        Some(Tensor::from_vec(
            shard.rows[row * self.hidden..(row + 1) * self.hidden].to_vec(),
            &[1, self.hidden],
        ))
    }

    /// True when `id` is encoded or pending.
    pub fn contains(&self, id: GraphId) -> bool {
        let shard = &self.shards[shard_of(id, self.cfg.num_shards)];
        shard.row_of.contains_key(&id) || shard.pending.iter().any(|(pid, _)| *pid == id)
    }

    /// Encoded (searchable) graphs across all shards.
    pub fn num_encoded(&self) -> usize {
        self.shards.iter().map(|s| s.ids.len()).sum()
    }

    /// Queued inserts not yet encoded.
    pub fn num_pending(&self) -> usize {
        self.shards.iter().map(|s| s.pending.len()).sum()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.cfg.num_shards
    }

    /// Encoded rows per shard (load-balance observability).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.ids.len()).collect()
    }

    /// The index's (clamped) configuration.
    pub fn config(&self) -> IndexConfig {
        self.cfg
    }

    /// Embedding width (0 until the first row arrives).
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Pins the embedding width before any row arrives — the restore path
    /// (`persist`) uses this so a recovered-then-emptied index keeps
    /// rejecting wrong-width rows exactly like the index it images.
    pub(crate) fn set_hidden(&mut self, hidden: usize) {
        assert!(
            self.hidden == 0 || self.hidden == hidden,
            "cannot change the width of a non-empty index"
        );
        self.hidden = hidden;
    }

    /// Shard `s`'s ids in row order — row order is the ranking tie-break,
    /// so persistence must image it exactly (unlike [`ids`](Self::ids),
    /// which sorts).
    pub fn shard_ids(&self, s: usize) -> &[GraphId] {
        &self.shards[s].ids
    }

    /// Shard `s`'s dense row-major embedding matrix.
    pub fn shard_rows(&self, s: usize) -> &[f32] {
        &self.shards[s].rows
    }

    /// Shard `s`'s int8 mirror, when the index scans quantized.
    pub fn shard_quant(&self, s: usize) -> Option<&QuantizedShard> {
        self.shards[s].quant.as_ref()
    }

    /// Shard `s`'s IVF cell index, when the index scans at
    /// [`ScanPrecision::Ivf`] (untrained below the training threshold).
    pub fn shard_ivf(&self, s: usize) -> Option<&IvfCells> {
        self.shards[s].ivf.as_ref()
    }

    /// Every encoded id, ascending.
    pub fn ids(&self) -> Vec<GraphId> {
        let mut ids: Vec<GraphId> = self
            .shards
            .iter()
            .flat_map(|s| s.ids.iter().copied())
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::dot;
    use crate::testfix::{model, toy};

    /// The monolithic reference: stable descending cosine sort over every
    /// encoded pool index (what rank_candidates does under RankBy::Cosine).
    fn monolith_ranking(store: &EmbeddingStore, query: &[f32], n: usize) -> Vec<(GraphId, f32)> {
        let mut all: Vec<(GraphId, f32)> = (0..n)
            .map(|i| (i as GraphId, dot(query, store.embedding(i).data())))
            .collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        all
    }

    #[test]
    fn shard_routing_is_stable_and_total() {
        for id in 0..100u64 {
            for shards in [1usize, 2, 7] {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards), "routing must be pure");
            }
        }
        assert_eq!(shard_of(42, 0), 0, "zero shards clamps to one");
    }

    #[test]
    fn sharded_query_equals_monolith_for_every_shard_count() {
        let (pool, vocab) = toy(9);
        let model = model(vocab, 11);
        let store = EmbeddingStore::build(&model, &pool);
        let query = store.embedding(0).data().to_vec();
        let expect = monolith_ranking(&store, &query, pool.len());
        for shards in [1usize, 2, 7] {
            let index = ShardedIndex::build(
                &model,
                &pool,
                IndexConfig {
                    num_shards: shards,
                    encode_batch: 4,
                    ..Default::default()
                },
            );
            assert_eq!(index.num_shards(), shards);
            assert_eq!(index.num_encoded(), pool.len());
            for k in [1usize, 3, pool.len(), pool.len() + 10] {
                let got = index.query(&query, k);
                let want: Vec<(GraphId, f32)> =
                    expect.iter().copied().take(k.min(pool.len())).collect();
                assert_eq!(
                    got, want,
                    "shards={shards} k={k} must match monolith exactly"
                );
            }
        }
    }

    #[test]
    fn more_shards_than_graphs_leaves_empty_shards_queryable() {
        let (pool, vocab) = toy(3);
        let model = model(vocab, 12);
        let index = ShardedIndex::build(
            &model,
            &pool,
            IndexConfig {
                num_shards: 7,
                encode_batch: 8,
                ..Default::default()
            },
        );
        let sizes = index.shard_sizes();
        assert_eq!(sizes.len(), 7);
        assert_eq!(sizes.iter().sum::<usize>(), 3);
        assert!(
            sizes.contains(&0),
            "3 graphs over 7 shards must leave empty shards"
        );
        let store = EmbeddingStore::build(&model, &pool);
        let q = store.embedding(1).data().to_vec();
        let got = index.query(&q, 10);
        assert_eq!(got.len(), 3, "k beyond pool size returns the whole pool");
        assert_eq!(got, monolith_ranking(&store, &q, 3));
    }

    #[test]
    fn insert_batches_then_flushes_one_forward_per_batch() {
        let (pool, vocab) = toy(6);
        let model = model(vocab, 13);
        let mut index = ShardedIndex::new(IndexConfig {
            num_shards: 1,
            encode_batch: 4,
            ..Default::default()
        });
        for (i, g) in pool.iter().enumerate().take(3) {
            index.insert(&model, i as GraphId, g.clone());
        }
        assert_eq!(index.num_pending(), 3, "below encode_batch: still queued");
        assert_eq!(model.encoder().forward_count(), 0);
        index.insert(&model, 3, pool[3].clone());
        // 4th insert filled the batch: one disjoint-union forward, 4 rows
        assert_eq!(index.num_pending(), 0);
        assert_eq!(index.num_encoded(), 4);
        assert_eq!(model.encoder().forward_count(), 4);
        // remainder drains through flush()
        index.insert(&model, 4, pool[4].clone());
        index.insert(&model, 5, pool[5].clone());
        assert_eq!(index.flush(&model), 2);
        assert_eq!(index.num_encoded(), 6);
        assert_eq!(
            index.flush(&model),
            0,
            "flush with nothing pending is a no-op"
        );
    }

    #[test]
    fn inserted_rows_match_store_embeddings_and_serve_queries() {
        let (pool, vocab) = toy(5);
        let model = model(vocab, 14);
        let mut index = ShardedIndex::new(IndexConfig {
            num_shards: 2,
            encode_batch: 2,
            ..Default::default()
        });
        for (i, g) in pool.iter().enumerate() {
            index.insert(&model, i as GraphId, g.clone());
        }
        index.flush(&model);
        let store = EmbeddingStore::build(&model.replica(), &pool);
        for i in 0..pool.len() {
            let row = index.embedding(i as GraphId).expect("flushed");
            for (a, b) in row.data().iter().zip(store.embedding(i).data().iter()) {
                assert!((a - b).abs() < 1e-4, "graph {i}: {a} vs {b}");
            }
        }
        let q = store.embedding(2).data().to_vec();
        let got = index.query(&q, 2);
        assert_eq!(got[0].0, 2, "a graph is its own nearest neighbour");
        assert!((got[0].1 - 1.0).abs() < 1e-4, "unit-norm self-cosine is 1");
    }

    #[test]
    fn remove_hides_rows_and_pending_inserts() {
        let (pool, vocab) = toy(5);
        let model = model(vocab, 15);
        let mut index = ShardedIndex::build(
            &model,
            &pool,
            IndexConfig {
                num_shards: 2,
                encode_batch: 4,
                ..Default::default()
            },
        );
        assert!(index.contains(1));
        assert!(index.remove(1));
        assert!(!index.contains(1));
        assert!(!index.remove(1), "double remove reports absence");
        assert_eq!(index.num_encoded(), 4);
        let store = EmbeddingStore::build(&model.replica(), &pool);
        let q = store.embedding(1).data().to_vec();
        assert!(
            index.query(&q, 10).iter().all(|&(id, _)| id != 1),
            "removed ids never surface in rankings"
        );
        // pending removes too
        index.insert(&model, 1, pool[1].clone());
        assert!(index.contains(1));
        assert!(index.remove(1));
        assert_eq!(index.num_pending(), 0);
        // re-insert replaces rather than duplicates
        index.insert(&model, 0, pool[0].clone());
        index.flush(&model);
        assert_eq!(index.ids().iter().filter(|&&id| id == 0).count(), 1);
    }

    /// The int8 acceptance criterion: a quantized index answers every
    /// query with exactly the monolithic f32 cosine ranking — ids, scores,
    /// tie order — across shard counts and widen factors.
    #[test]
    fn int8_query_equals_monolith_across_shards_and_widen_factors() {
        let (pool, vocab) = toy(9);
        let model = model(vocab, 11);
        let store = EmbeddingStore::build(&model, &pool);
        for shards in [1usize, 2, 7] {
            for widen in [2usize, 4, 8] {
                let index = ShardedIndex::build(
                    &model,
                    &pool,
                    IndexConfig {
                        num_shards: shards,
                        encode_batch: 4,
                        precision: ScanPrecision::Int8 { widen },
                        ..Default::default()
                    },
                );
                for &q in &[0usize, 4, 8] {
                    let query = store.embedding(q).data().to_vec();
                    let expect = monolith_ranking(&store, &query, pool.len());
                    for k in [1usize, 3, pool.len(), pool.len() + 10] {
                        let got = index.query(&query, k);
                        let want: Vec<(GraphId, f32)> =
                            expect.iter().copied().take(k.min(pool.len())).collect();
                        assert_eq!(
                            got, want,
                            "shards={shards} widen={widen} q={q} k={k}: int8 ranking must \
                             be identical to the f32 monolith"
                        );
                    }
                }
            }
        }
    }

    /// Incremental insert/remove keeps the quantized mirror in lockstep
    /// with the f32 rows: after a churn sequence, an Int8 index answers
    /// exactly like an F32 index that saw the same operations.
    #[test]
    fn int8_mirror_survives_insert_remove_churn() {
        let (pool, vocab) = toy(8);
        let model = model(vocab, 17);
        let mk = |precision| {
            let mut index = ShardedIndex::new(IndexConfig {
                num_shards: 3,
                encode_batch: 2,
                precision,
                ..Default::default()
            });
            for (i, g) in pool.iter().enumerate() {
                index.insert(&model, i as GraphId, g.clone());
            }
            index.flush(&model);
            index.remove(2);
            index.remove(5);
            index.insert(&model, 5, pool[5].clone());
            index.flush(&model);
            index
        };
        let f32_index = mk(ScanPrecision::F32);
        let int8_index = mk(ScanPrecision::Int8 { widen: 4 });
        assert_eq!(int8_index.num_encoded(), f32_index.num_encoded());
        assert_eq!(int8_index.ids(), f32_index.ids());
        let store = EmbeddingStore::build(&model.replica(), &pool);
        for &q in &[0usize, 3, 7] {
            let query = store.embedding(q).data().to_vec();
            for k in [1usize, 4, 10] {
                assert_eq!(
                    int8_index.query(&query, k),
                    f32_index.query(&query, k),
                    "q={q} k={k}: churned int8 index must match the churned f32 index"
                );
            }
        }
    }

    /// `from_rows` routes precomputed rows like `build` routes encoded
    /// ones, at both precisions, and the widen=0 config degrades to 1.
    #[test]
    fn from_rows_matches_build_routing_and_scan() {
        let hidden = 6;
        let n = 23;
        let mut state = 3u64;
        let mut rows = Vec::with_capacity(n * hidden);
        for _ in 0..n * hidden {
            state = splitmix64(state);
            rows.push((state % 2000) as f32 / 1000.0 - 1.0);
        }
        let f32_index = ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: 3,
                ..Default::default()
            },
        );
        assert_eq!(f32_index.num_encoded(), n);
        assert_eq!(f32_index.ids(), (0..n as GraphId).collect::<Vec<_>>());
        let int8_index = ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: 3,
                encode_batch: 8,
                precision: ScanPrecision::Int8 { widen: 0 },
                ..Default::default()
            },
        );
        // footprint: codes + one f32 scale per row vs 4 bytes per element,
        // plus 2 bound f32s per occupied scan block (one block per
        // non-empty shard at this pool size)
        assert_eq!(f32_index.scan_bytes(), n * hidden * 4);
        let occupied = int8_index.shard_sizes().iter().filter(|&&s| s > 0).count();
        assert_eq!(int8_index.scan_bytes(), n * hidden + n * 4 + occupied * 8);
        let query = rows[..hidden].to_vec();
        for k in [1usize, 5, n] {
            let f = f32_index.query(&query, k);
            let q = int8_index.query(&query, k);
            assert_eq!(f.len(), q.len());
            // widen clamped to 1: the candidate set is coarse, but every
            // returned score is the exact f32 dot of its row and the list
            // is ranked
            for w in q.windows(2) {
                assert!(w[0].1 >= w[1].1, "int8 results stay ranked (k={k})");
            }
            for &(id, score) in &q {
                let r = id as usize;
                let exact = dot(&query, &rows[r * hidden..(r + 1) * hidden]);
                assert_eq!(score, exact, "id {id}: re-ranked score is exact (k={k})");
            }
        }
        // a generous widen recovers the exact f32 ranking
        let wide = ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: 3,
                encode_batch: 8,
                precision: ScanPrecision::Int8 { widen: 8 },
                ..Default::default()
            },
        );
        for k in [1usize, 5, n] {
            assert_eq!(wide.query(&query, k), f32_index.query(&query, k), "k={k}");
        }
    }

    /// `query_shards` over any disjoint cover of the shard range, merged
    /// with `merge_ranked`, must reproduce `query` exactly — the invariant
    /// the concurrent scan workers stand on — at both precisions.
    #[test]
    fn query_shards_partials_merge_to_the_full_query() {
        let hidden = 8;
        let n = 300;
        let mut state = 5u64;
        let mut rows = Vec::with_capacity(n * hidden);
        for _ in 0..n * hidden {
            state = splitmix64(state);
            rows.push((state % 2000) as f32 / 1000.0 - 1.0);
        }
        let query = rows[..hidden].to_vec();
        for shards in [1usize, 2, 7] {
            for precision in [
                ScanPrecision::F32,
                ScanPrecision::Int8 { widen: 2 },
                // 300 rows: trained at 1 shard, untrained fallback at 2/7 —
                // the partial-merge invariant must hold either way
                ScanPrecision::Ivf {
                    nprobe: 3,
                    widen: 2,
                },
            ] {
                let index = ShardedIndex::from_rows(
                    &rows,
                    hidden,
                    IndexConfig {
                        num_shards: shards,
                        encode_batch: 8,
                        precision,
                        ..Default::default()
                    },
                );
                for k in [1usize, 10, n + 5] {
                    let expect = index.query(&query, k);
                    // whole range in one call
                    assert_eq!(index.query_shards(0..shards, &query, k), expect);
                    // every contiguous 2-way split
                    for mid in 0..=shards {
                        let partials = vec![
                            index.query_shards(0..mid, &query, k),
                            index.query_shards(mid..shards, &query, k),
                        ];
                        assert_eq!(
                            gbm_tensor::merge_ranked(&partials, k),
                            expect,
                            "shards={shards} split={mid} k={k} precision={precision:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn insert_row_publishes_replaces_and_scans_like_from_rows() {
        let hidden = 4;
        let n = 9;
        let rows: Vec<f32> = (0..n * hidden)
            .map(|i| ((i * 31 + 7) % 200) as f32 / 100.0 - 1.0)
            .collect();
        let reference = ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: 3,
                ..Default::default()
            },
        );
        // same rows published one by one, out of order
        let mut index = ShardedIndex::new(IndexConfig {
            num_shards: 3,
            ..Default::default()
        });
        for i in (0..n).rev() {
            index.insert_row(i as GraphId, &rows[i * hidden..(i + 1) * hidden]);
        }
        assert_eq!(index.num_encoded(), n);
        assert_eq!(index.ids(), reference.ids());
        let query = rows[hidden..2 * hidden].to_vec();
        // scores are exact dots of the published rows, so rankings agree
        // entry-for-entry wherever scores are distinct
        assert_eq!(index.query(&query, 3), reference.query(&query, 3));
        // re-publishing an id replaces, never duplicates
        index.insert_row(4, &rows[..hidden]);
        assert_eq!(index.num_encoded(), n);
        assert_eq!(
            index.embedding(4).unwrap().data(),
            &rows[..hidden],
            "replacement row is the one served"
        );
        // int8 indexes keep their code mirror in lockstep with publishes
        let mut q8 = ShardedIndex::new(IndexConfig {
            num_shards: 3,
            encode_batch: 8,
            precision: ScanPrecision::Int8 { widen: 4 },
            ..Default::default()
        });
        for i in 0..n {
            q8.insert_row(i as GraphId, &rows[i * hidden..(i + 1) * hidden]);
        }
        assert_eq!(q8.query(&query, 5), reference.query(&query, 5));
    }

    #[test]
    fn empty_index_answers_empty() {
        let index = ShardedIndex::new(IndexConfig::default());
        assert_eq!(index.query(&[0.0; 4], 5), vec![]);
        assert_eq!(index.num_encoded(), 0);
        assert_eq!(index.ids(), Vec::<GraphId>::new());
        let (pool, vocab) = toy(1);
        let model = model(vocab, 16);
        let built = ShardedIndex::build(&model, &pool[..0], IndexConfig::default());
        assert_eq!(built.num_encoded(), 0);
        assert_eq!(built.query(&[], 3), vec![]);
    }

    /// Deterministic pseudo-random rows in `[-1, 1)`, splitmix-driven.
    fn synth_matrix(n: usize, hidden: usize, mut state: u64) -> Vec<f32> {
        let mut rows = Vec::with_capacity(n * hidden);
        for _ in 0..n * hidden {
            state = splitmix64(state);
            rows.push((state % 2000) as f32 / 1000.0 - 1.0);
        }
        rows
    }

    /// `k` tight, well-separated clusters — the regime IVF is built for.
    fn clustered_matrix(n: usize, hidden: usize, k: usize, mut state: u64) -> Vec<f32> {
        let mut rows = Vec::with_capacity(n * hidden);
        for i in 0..n {
            let c = i % k;
            for d in 0..hidden {
                state = splitmix64(state);
                let jitter = (state % 1000) as f32 / 10_000.0 - 0.05;
                rows.push(if d % k == c { 3.0 + jitter } else { jitter });
            }
        }
        rows
    }

    /// Fraction of the exact top-K ids the approximate answer recovered.
    fn recall(approx: &[(GraphId, f32)], exact: &[(GraphId, f32)]) -> f64 {
        if exact.is_empty() {
            return 1.0;
        }
        let want: std::collections::HashSet<GraphId> = exact.iter().map(|&(id, _)| id).collect();
        approx.iter().filter(|&&(id, _)| want.contains(&id)).count() as f64 / exact.len() as f64
    }

    /// Below `IVF_MIN_TRAIN_ROWS` per shard the cell index never trains and
    /// every Ivf query falls back to the exact int8 path — bit-identical to
    /// the f32 ranking, so toy pools lose nothing by configuring Ivf.
    #[test]
    fn ivf_below_training_threshold_is_exactly_f32() {
        let hidden = 6;
        let n = 60;
        let rows = synth_matrix(n, hidden, 3);
        let f32_index = ShardedIndex::from_rows(&rows, hidden, IndexConfig::default());
        let ivf_index = ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                precision: ScanPrecision::Ivf {
                    nprobe: 2,
                    widen: 8,
                },
                ..Default::default()
            },
        );
        for s in 0..ivf_index.num_shards() {
            assert!(
                !ivf_index
                    .shard_ivf(s)
                    .expect("ivf state present")
                    .is_trained(),
                "shard {s} must stay untrained at {n} rows"
            );
        }
        let query = rows[..hidden].to_vec();
        for k in [1usize, 5, n] {
            assert_eq!(
                ivf_index.query(&query, k),
                f32_index.query(&query, k),
                "untrained IVF must equal f32 exactly (k={k})"
            );
        }
    }

    /// Trained IVF on a clustered pool: full probing with a saturating
    /// widen is exact, narrow probing keeps a high recall@10 floor, and a
    /// self-query's own row always comes back first at nprobe=1 (its cell
    /// is by construction the nearest one).
    #[test]
    fn ivf_recall_is_bounded_on_a_clustered_pool() {
        let hidden = 16;
        // 3× the threshold: the id hash splits rows ~evenly across the two
        // shards, leaving each comfortably past the training threshold
        let n = 3 * gbm_quant::IVF_MIN_TRAIN_ROWS;
        let rows = clustered_matrix(n, hidden, 8, 11);
        let mk = |nprobe, widen| {
            ShardedIndex::from_rows(
                &rows,
                hidden,
                IndexConfig {
                    num_shards: 2,
                    precision: ScanPrecision::Ivf { nprobe, widen },
                    ..Default::default()
                },
            )
        };
        let f32_index = ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: 2,
                ..Default::default()
            },
        );
        let full = mk(usize::MAX, usize::MAX);
        for s in 0..2 {
            assert!(full.shard_ivf(s).expect("ivf state").is_trained());
        }
        let k = 10;
        for qi in [0usize, 3, 101] {
            let query = rows[qi * hidden..(qi + 1) * hidden].to_vec();
            let exact = f32_index.query(&query, k);
            // probing every cell with an unbounded re-rank width degrades
            // to the exact scan: recall is 1 by construction
            assert_eq!(full.query(&query, k), exact, "full probe is exact (q={qi})");
            // narrow probes on clustered data: the query's cluster fits in
            // few cells, so recall@10 stays high
            let narrow = mk(2, 4);
            let r = recall(&narrow.query(&query, k), &exact);
            assert!(r >= 0.8, "recall@10 {r} < 0.8 at nprobe=2 (q={qi})");
            // self-query at nprobe=1 probes exactly the row's own cell:
            // k-means assigns each row to its nearest centroid, and that
            // same centroid distance ranks first for the row-as-query.
            // (Rank-1 itself isn't guaranteed — dot scores are
            // unnormalized, so a longer neighbor can out-score the row.)
            let s = shard_of(qi as GraphId, 2);
            let pos = full
                .shard_ids(s)
                .iter()
                .position(|&id| id == qi as GraphId)
                .expect("row present");
            let ivf = full.shard_ivf(s).expect("trained shard");
            assert_eq!(
                ivf.probe_cells(&query, 1),
                vec![ivf.cell_of()[pos]],
                "a self-query's first probed cell is its own cell (q={qi})"
            );
        }
    }

    /// Two builds of the same rows produce bit-identical IVF state and
    /// answers — the determinism contract, index-level.
    #[test]
    fn ivf_build_is_deterministic_across_runs() {
        let hidden = 8;
        let n = gbm_quant::IVF_MIN_TRAIN_ROWS + 30;
        let rows = synth_matrix(n, hidden, 77);
        let cfg = IndexConfig {
            num_shards: 1,
            precision: ScanPrecision::Ivf {
                nprobe: 4,
                widen: 2,
            },
            ivf_cells: 8,
            ..Default::default()
        };
        let a = ShardedIndex::from_rows(&rows, hidden, cfg);
        let b = ShardedIndex::from_rows(&rows, hidden, cfg);
        let (ia, ib) = (a.shard_ivf(0).unwrap(), b.shard_ivf(0).unwrap());
        assert!(ia.is_trained());
        assert_eq!(ia.num_cells(), 8, "ivf_cells pins the cell count");
        assert_eq!(ia.centroids(), ib.centroids(), "centroids bit-identical");
        assert_eq!(ia.cell_of(), ib.cell_of());
        let query = rows[..hidden].to_vec();
        assert_eq!(a.query(&query, 7), b.query(&query, 7));
    }

    /// Churn through insert_row/remove keeps the cell index consistent and
    /// the scan well-formed: every answer's scores are exact f32 dots of
    /// live rows, ranked, and removed ids never surface.
    #[test]
    fn ivf_survives_insert_remove_churn() {
        let hidden = 8;
        let n = gbm_quant::IVF_MIN_TRAIN_ROWS + 50;
        let rows = synth_matrix(n, hidden, 21);
        let mut index = ShardedIndex::new(IndexConfig {
            num_shards: 1,
            precision: ScanPrecision::Ivf {
                nprobe: 4,
                widen: 4,
            },
            ..Default::default()
        });
        for i in 0..n {
            index.insert_row(i as GraphId, &rows[i * hidden..(i + 1) * hidden]);
        }
        assert!(index.shard_ivf(0).unwrap().is_trained());
        // remove a spread of ids, replace a few with fresh rows
        for id in [0u64, 7, 99, 200, 300] {
            assert!(index.remove(id));
        }
        for id in [7u64, 99] {
            index.insert_row(id, &rows[..hidden]);
        }
        let query = rows[5 * hidden..6 * hidden].to_vec();
        let got = index.query(&query, 10);
        assert!(!got.is_empty());
        assert!(got.iter().all(|&(id, _)| id != 0 && id != 200 && id != 300));
        for w in got.windows(2) {
            assert!(w[0].1 >= w[1].1, "ivf results stay ranked");
        }
        for &(id, score) in &got {
            let emb = index.embedding(id).expect("returned ids are live");
            let exact = dot(&query, emb.data());
            assert_eq!(score, exact, "id {id}: returned score is the exact dot");
        }
    }

    /// IVF footprint accounting: centroids + cell lists ride on top of the
    /// int8 mirror's bytes, and the int8 portion matches an Int8 index of
    /// the same rows.
    #[test]
    fn ivf_scan_bytes_include_cells_and_centroids() {
        let hidden = 8;
        let n = gbm_quant::IVF_MIN_TRAIN_ROWS;
        let rows = synth_matrix(n, hidden, 13);
        let int8 = ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: 1,
                precision: ScanPrecision::Int8 { widen: 1 },
                ..Default::default()
            },
        );
        let ivf = ShardedIndex::from_rows(
            &rows,
            hidden,
            IndexConfig {
                num_shards: 1,
                precision: ScanPrecision::Ivf {
                    nprobe: 2,
                    widen: 1,
                },
                ..Default::default()
            },
        );
        let ivf_extra = ivf.shard_ivf(0).unwrap().scan_bytes();
        assert!(ivf_extra > 0, "trained index reports its cell memory");
        assert_eq!(ivf.scan_bytes(), int8.scan_bytes() + ivf_extra);
    }

    #[test]
    fn blocked_scan_crosses_block_boundaries() {
        // a synthetic shard larger than SCAN_BLOCK: the running merge across
        // blocks must agree with one top_k over all scores
        let hidden = 4;
        let n = SCAN_BLOCK * 2 + 37;
        let mut shard = Shard::default();
        let mut all_rows: Vec<Vec<f32>> = Vec::new();
        let mut state = 9u64;
        for i in 0..n {
            let mut row = Vec::with_capacity(hidden);
            for _ in 0..hidden {
                state = splitmix64(state);
                row.push((state % 1000) as f32 / 1000.0 - 0.5);
            }
            shard.push_row(i as GraphId, &row);
            all_rows.push(row);
        }
        let query = vec![0.3f32, -0.7, 0.2, 0.9];
        let scores: Vec<f32> = all_rows.iter().map(|r| dot(&query, r)).collect();
        for k in [1usize, 5, 100, n + 5] {
            let expect: Vec<(GraphId, f32)> = gbm_tensor::top_k(&scores, k)
                .into_iter()
                .map(|(i, s)| (i as GraphId, s))
                .collect();
            let got = shard
                .view()
                .scan_top_k(&query, k, hidden, &mut ScanStats::default());
            assert_eq!(got, expect, "k={k}");
        }
    }

    /// `query_stats` tells the truth about scan work at every precision:
    /// f32 scans every row, int8 scans every code and re-ranks a bounded
    /// survivor set, trained IVF probes cells and scans strictly fewer
    /// rows — and the ranked answer is identical to plain `query`.
    #[test]
    fn query_stats_account_scan_work_per_precision() {
        let hidden = 16;
        let n = 3 * gbm_quant::IVF_MIN_TRAIN_ROWS;
        let rows = clustered_matrix(n, hidden, 8, 11);
        let query = rows[..hidden].to_vec();
        let mk = |precision| {
            ShardedIndex::from_rows(
                &rows,
                hidden,
                IndexConfig {
                    num_shards: 2,
                    precision,
                    ..Default::default()
                },
            )
        };
        let k = 10;

        let f32_index = mk(ScanPrecision::F32);
        let (ranked, stats) = f32_index.query_stats(&query, k);
        assert_eq!(ranked, f32_index.query(&query, k));
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.rows_scanned, n as u64);
        assert_eq!(stats.cells_probed, 0);
        assert_eq!(stats.survivors, 0);
        assert_eq!(stats.scan_bytes, (n * hidden * 4) as u64);

        let int8 = mk(ScanPrecision::Int8 { widen: 4 });
        let (ranked, stats) = int8.query_stats(&query, k);
        assert_eq!(ranked, int8.query(&query, k));
        assert_eq!(stats.rows_scanned, n as u64, "coarse scan visits all codes");
        assert!(stats.survivors > 0, "someone survives the margin cut");
        assert!(
            stats.survivors <= (2 * k * 4 + 2 * SCAN_BLOCK) as u64,
            "survivors bounded near k·widen per shard (+ margin zone)"
        );

        let ivf = mk(ScanPrecision::Ivf {
            nprobe: 2,
            widen: 4,
        });
        assert!(ivf.shard_ivf(0).unwrap().is_trained());
        let (ranked, stats) = ivf.query_stats(&query, k);
        assert_eq!(ranked, ivf.query(&query, k));
        assert_eq!(stats.cells_probed, 4, "nprobe=2 across 2 shards");
        assert!(
            stats.rows_scanned < n as u64,
            "IVF scans strictly fewer rows than the pool"
        );
        assert!(stats.survivors > 0 && stats.survivors <= (2 * k * 4) as u64);

        // the fan-out halves account exactly like the full query
        let (_, a) = ivf.query_shards_stats(0..1, &query, k);
        let (_, b) = ivf.query_shards_stats(1..2, &query, k);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged, stats, "partial stats merge to the full scan's");

        // k = 0 and empty indexes account nothing
        assert_eq!(ivf.query_stats(&query, 0).1, ScanStats::default());
        let empty = ShardedIndex::new(IndexConfig::default());
        assert_eq!(empty.query_stats(&[0.0; 4], 5).1, ScanStats::default());
    }
}
