//! Shared test fixture: a small MiniC graph pool + tiny model, used by the
//! coalescer and index test suites here and (behind the `test-fixtures`
//! feature) by `gbm-eval`'s sharded-equivalence tests — one template, so
//! the pools the equivalence suites test against cannot drift apart.

use gbm_frontends::{compile, SourceLang};
use gbm_nn::{encode_graph, EncodedGraph, GraphBinMatch, GraphBinMatchConfig};
use gbm_progml::{build_graph, NodeTextMode};
use gbm_tokenizer::{Tokenizer, TokenizerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `n` MiniC loop programs with varying trip counts, encoded against a
/// tokenizer trained on themselves. Returns `(pool, vocab_size)`.
pub fn toy(n: usize) -> (Vec<EncodedGraph>, usize) {
    let sources: Vec<String> = (0..n)
        .map(|k| {
            format!(
                "int main() {{ int s = {k}; for (int i = 0; i < {}; i++) {{ s += i * {k}; }} print(s); return s; }}",
                k % 5 + 2
            )
        })
        .collect();
    let graphs: Vec<gbm_progml::ProgramGraph> = sources
        .iter()
        .map(|s| build_graph(&compile(SourceLang::MiniC, "t", s).unwrap()))
        .collect();
    let refs: Vec<&gbm_progml::ProgramGraph> = graphs.iter().collect();
    let tok = Tokenizer::train_on_graphs(&refs, NodeTextMode::FullText, TokenizerConfig::default());
    let pool = graphs
        .iter()
        .map(|g| encode_graph(g, &tok, NodeTextMode::FullText))
        .collect();
    (pool, tok.vocab_size())
}

/// A seeded tiny-config model over `vocab` tokens.
pub fn model(vocab: usize, seed: u64) -> GraphBinMatch {
    let mut rng = StdRng::seed_from_u64(seed);
    GraphBinMatch::new(GraphBinMatchConfig::tiny(vocab), &mut rng)
}
