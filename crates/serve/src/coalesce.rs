//! Request coalescing: many arriving encode requests, few encoder forwards.
//!
//! A serving front-end receives graphs one at a time, but the encoder is at
//! its best running a disjoint-union [`GraphBatch`](gbm_nn::GraphBatch)
//! forward over many graphs at once (the PR 2 batching win). The
//! [`EncodeCoalescer`] sits between the two: requests queue until either
//! `max_batch` graphs are waiting (*full flush*) or the oldest request has
//! waited `max_wait` clock ticks (*timer flush* — the latency bound), then
//! one batched forward encodes the whole queue and each caller collects its
//! own `[1, hidden]` row by [`Ticket`].
//!
//! Time comes from an injected [`Clock`], so a test or load probe driving a
//! [`VirtualClock`](crate::VirtualClock) sees exactly reproducible flush
//! schedules and batch fills. Steady-state allocation stays flat: the
//! batched forward draws its buffers from `gbm-tensor`'s thread-local
//! scratch pool, and the queue itself recycles its capacity.

use std::collections::{HashMap, HashSet};

use gbm_nn::{EncodedGraph, GraphBinMatch};
use gbm_tensor::Tensor;

use crate::clock::Clock;

/// Flush policy for an [`EncodeCoalescer`].
#[derive(Clone, Copy, Debug)]
pub struct CoalescerConfig {
    /// Flush as soon as this many requests are queued (one batched forward
    /// encodes them all). Also the upper bound on batch fill.
    pub max_batch: usize,
    /// Flush when the *oldest* queued request has waited this many clock
    /// ticks — the tail-latency bound under light load.
    pub max_wait: u64,
}

impl Default for CoalescerConfig {
    fn default() -> CoalescerConfig {
        CoalescerConfig {
            max_batch: gbm_nn::embeddings::DEFAULT_ENCODE_BATCH,
            max_wait: 2,
        }
    }
}

impl CoalescerConfig {
    /// Applies the `GBM_FLUSH_TICKS` environment knob (the `max_wait`
    /// deadline, in clock ticks) on top of this config. Invalid values warn
    /// on stderr and leave the existing value in force.
    pub fn with_env(mut self) -> CoalescerConfig {
        if let Some(t) = crate::env::env_knob("GBM_FLUSH_TICKS", "a non-negative tick count") {
            self.max_wait = t;
        }
        self
    }
}

/// What caused a caller-driven flush — bookkeeping for the two-phase
/// [`EncodeCoalescer::begin_flush`]/[`EncodeCoalescer::complete_flush`] API,
/// where the trigger decision lives with the caller (a server worker loop)
/// rather than inside `submit`/`pump`/`flush`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushTrigger {
    /// The queue reached `max_batch`.
    Full,
    /// The oldest request crossed the `max_wait` deadline.
    Timer,
    /// An unconditional drain (shutdown / test path).
    Forced,
}

/// Handle to one submitted encode request; redeem it with
/// [`EncodeCoalescer::poll`] after a flush.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Aggregate coalescer behaviour — the load-probe observables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CoalescerStats {
    /// Batched forwards run.
    pub flushes: usize,
    /// Graphs encoded across all flushes.
    pub encoded: usize,
    /// Flushes triggered by the queue reaching `max_batch`.
    pub full_flushes: usize,
    /// Flushes triggered by the `max_wait` deadline.
    pub timer_flushes: usize,
    /// Unconditional flushes ([`EncodeCoalescer::flush`] called directly).
    pub forced_flushes: usize,
}

impl CoalescerStats {
    /// Mean graphs per batched forward — the coalescing quality metric
    /// (1.0 = no coalescing happened, `max_batch` = every flush was full).
    pub fn mean_batch_fill(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.encoded as f64 / self.flushes as f64
        }
    }
}

struct PendingRequest {
    ticket: Ticket,
    graph: EncodedGraph,
    enqueued_at: u64,
}

/// A drained flush batch whose encode is *in flight*: produced by
/// [`EncodeCoalescer::begin_flush`], redeemed by
/// [`EncodeCoalescer::complete_flush`]. Splitting the flush in two is the
/// worker-thread integration point (the encoder forward can run outside
/// the coalescer's owner), and it makes the mid-flight window first-class:
/// a ticket cancelled while its batch is in flight has its row *dropped*
/// at completion instead of leaking into the ready map.
///
/// Dropping a `FlushBatch` without completing it abandons its requests:
/// their tickets never resolve (poll returns `None` forever).
pub struct FlushBatch {
    requests: Vec<(Ticket, EncodedGraph, u64)>,
}

impl FlushBatch {
    /// The graphs to encode, in ticket order (row `i` of the batched
    /// forward must answer ticket `i`).
    pub fn graphs(&self) -> Vec<&EncodedGraph> {
        self.requests.iter().map(|(_, g, _)| g).collect()
    }

    /// Requests in this batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the batch carries no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The tickets of this batch, in row order (ticket `i` is answered by
    /// row `i` of the batched forward) — what a worker loop needs to route
    /// each row to its reply handle after
    /// [`complete_flush`](EncodeCoalescer::complete_flush).
    pub fn tickets(&self) -> Vec<Ticket> {
        self.requests.iter().map(|(t, _, _)| *t).collect()
    }

    /// The clock tick each request was enqueued at, in row order — what an
    /// instrumented worker needs to account per-request coalescer wait
    /// (`flush_tick - enqueued_at`) without a side lookup.
    pub fn enqueued_at(&self) -> Vec<u64> {
        self.requests.iter().map(|(_, _, at)| *at).collect()
    }
}

/// Queues encode requests and flushes them through one batched encoder
/// forward per batch. Single-owner by design: the tape underneath is
/// single-threaded, so a server wraps this in its own synchronization while
/// tests drive it directly.
pub struct EncodeCoalescer {
    cfg: CoalescerConfig,
    pending: Vec<PendingRequest>,
    ready: HashMap<Ticket, Tensor>,
    /// Tickets whose batch is between [`begin_flush`](Self::begin_flush)
    /// and [`complete_flush`](Self::complete_flush).
    in_flight: HashSet<Ticket>,
    /// In-flight tickets cancelled mid-flight: their rows are dropped at
    /// completion instead of entering `ready`.
    cancelled_in_flight: HashSet<Ticket>,
    next_ticket: u64,
    stats: CoalescerStats,
}

impl EncodeCoalescer {
    /// An empty coalescer with the given flush policy (`max_batch` is
    /// clamped to at least 1).
    pub fn new(cfg: CoalescerConfig) -> EncodeCoalescer {
        EncodeCoalescer {
            cfg: CoalescerConfig {
                max_batch: cfg.max_batch.max(1),
                ..cfg
            },
            pending: Vec::new(),
            ready: HashMap::new(),
            in_flight: HashSet::new(),
            cancelled_in_flight: HashSet::new(),
            next_ticket: 0,
            stats: CoalescerStats::default(),
        }
    }

    /// Queues `graph` for encoding at the clock's current tick and returns
    /// the ticket its embedding will be filed under. Reaching `max_batch`
    /// queued requests flushes immediately (a *full flush*).
    pub fn submit(
        &mut self,
        model: &GraphBinMatch,
        graph: EncodedGraph,
        clock: &dyn Clock,
    ) -> Ticket {
        let ticket = self.enqueue(graph, clock);
        if self.pending.len() >= self.cfg.max_batch {
            self.note_flush_trigger(FlushTrigger::Full);
            self.run_flush(model);
        }
        ticket
    }

    /// Queues `graph` *without* flushing, whatever the queue length — the
    /// submission half of the two-phase worker API. The caller owns the
    /// flush policy: check [`pending_len`](Self::pending_len) against
    /// `max_batch` and [`flush_due`](Self::flush_due) against the clock,
    /// then drive [`begin_flush`](Self::begin_flush)/
    /// [`complete_flush`](Self::complete_flush) itself (recording the
    /// trigger via [`note_flush_trigger`](Self::note_flush_trigger)).
    pub fn enqueue(&mut self, graph: EncodedGraph, clock: &dyn Clock) -> Ticket {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push(PendingRequest {
            ticket,
            graph,
            enqueued_at: clock.now(),
        });
        ticket
    }

    /// True when the oldest queued request has waited at least `max_wait`
    /// ticks — the timer-flush condition, split out so a worker loop can
    /// test it without owning a model (false on an empty queue).
    pub fn flush_due(&self, clock: &dyn Clock) -> bool {
        self.pending.first().is_some_and(|oldest| {
            clock.now().saturating_sub(oldest.enqueued_at) >= self.cfg.max_wait
        })
    }

    /// Records what caused a caller-driven flush in [`CoalescerStats`]
    /// (`begin_flush` itself counts nothing — the trigger decision belongs
    /// to whoever made it).
    pub fn note_flush_trigger(&mut self, trigger: FlushTrigger) {
        match trigger {
            FlushTrigger::Full => self.stats.full_flushes += 1,
            FlushTrigger::Timer => self.stats.timer_flushes += 1,
            FlushTrigger::Forced => self.stats.forced_flushes += 1,
        }
    }

    /// Timer path: flushes the queue when the oldest queued request has
    /// waited at least `max_wait` ticks. Call this on every server tick.
    /// Returns the number of graphs encoded (0 when the deadline hasn't
    /// passed or the queue is empty).
    pub fn pump(&mut self, model: &GraphBinMatch, clock: &dyn Clock) -> usize {
        if !self.flush_due(clock) {
            return 0;
        }
        self.note_flush_trigger(FlushTrigger::Timer);
        self.run_flush(model)
    }

    /// Unconditionally encodes everything queued (shutdown / test path).
    pub fn flush(&mut self, model: &GraphBinMatch) -> usize {
        if self.pending.is_empty() {
            return 0;
        }
        self.note_flush_trigger(FlushTrigger::Forced);
        self.run_flush(model)
    }

    /// The flush policy this coalescer was built with.
    pub fn config(&self) -> CoalescerConfig {
        self.cfg
    }

    fn run_flush(&mut self, model: &GraphBinMatch) -> usize {
        let Some(batch) = self.begin_flush() else {
            return 0;
        };
        // one disjoint-union forward for the whole flush; row i belongs to
        // submission i (embed_batch preserves input order)
        let rows = model.encoder().embed_batch(&batch.graphs());
        self.complete_flush(batch, rows)
    }

    /// Drains the queue into a [`FlushBatch`] and marks its tickets *in
    /// flight* (`None` when nothing is queued). The caller owns the encode:
    /// run `model.encoder().embed_batch(&batch.graphs())` — on a worker
    /// thread if it likes — and hand the rows back through
    /// [`complete_flush`](Self::complete_flush). Flush-trigger stats
    /// (`full`/`timer`/`forced`) are the trigger's business; this counts
    /// nothing.
    pub fn begin_flush(&mut self) -> Option<FlushBatch> {
        if self.pending.is_empty() {
            return None;
        }
        // drain (not take) so the queue keeps its capacity across flushes
        let requests: Vec<(Ticket, EncodedGraph, u64)> = self
            .pending
            .drain(..)
            .map(|r| {
                self.in_flight.insert(r.ticket);
                (r.ticket, r.graph, r.enqueued_at)
            })
            .collect();
        Some(FlushBatch { requests })
    }

    /// Files the encoded rows of `batch` (row `i` answers ticket `i` —
    /// `embed_batch` preserves input order; length mismatch panics).
    /// Tickets cancelled while the batch was in flight have their rows
    /// dropped here — the embedding never enters the ready map, so a
    /// timed-out caller leaks nothing. Returns the number of rows encoded.
    pub fn complete_flush(&mut self, batch: FlushBatch, rows: Vec<Tensor>) -> usize {
        assert_eq!(
            batch.requests.len(),
            rows.len(),
            "one encoded row per flushed request"
        );
        self.stats.flushes += 1;
        let encoded = batch.requests.len();
        self.stats.encoded += encoded;
        for ((ticket, _, _), row) in batch.requests.into_iter().zip(rows) {
            self.in_flight.remove(&ticket);
            if !self.cancelled_in_flight.remove(&ticket) {
                self.ready.insert(ticket, row);
            }
        }
        encoded
    }

    /// Collects (and removes) the embedding for `ticket`, if its batch has
    /// flushed. A second poll of the same ticket returns `None`.
    pub fn poll(&mut self, ticket: Ticket) -> Option<Tensor> {
        self.ready.remove(&ticket)
    }

    /// Abandons `ticket`: drops it from the queue (never encoded), marks it
    /// cancelled if its batch is mid-flight (the encoded row is dropped at
    /// [`complete_flush`](Self::complete_flush) — it never reaches the
    /// ready map), or evicts it from the ready map (embedding discarded).
    /// A front-end that times a request out must call this, or the
    /// unredeemed embedding stays in `ready` for the coalescer's lifetime.
    /// Returns whether the ticket still existed (a second cancel of the
    /// same ticket reports `false`).
    pub fn cancel(&mut self, ticket: Ticket) -> bool {
        if let Some(pos) = self.pending.iter().position(|r| r.ticket == ticket) {
            self.pending.remove(pos);
            return true;
        }
        if self.in_flight.contains(&ticket) {
            // first cancel wins; a repeat finds it already in the set
            return self.cancelled_in_flight.insert(ticket);
        }
        self.ready.remove(&ticket).is_some()
    }

    /// Requests queued but not yet encoded.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Tickets whose flush batch is between `begin_flush` and
    /// `complete_flush` (always 0 when using the one-shot
    /// `submit`/`pump`/`flush` API, which encodes synchronously).
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Encoded embeddings awaiting collection.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Behaviour counters since construction.
    pub fn stats(&self) -> &CoalescerStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::testfix::{model, toy};

    #[test]
    fn full_queue_flushes_immediately() {
        let (pool, vocab) = toy(4);
        let model = model(vocab, 1);
        let clock = VirtualClock::new();
        let mut co = EncodeCoalescer::new(CoalescerConfig {
            max_batch: 4,
            max_wait: 10,
        });
        let tickets: Vec<Ticket> = pool
            .iter()
            .map(|g| co.submit(&model, g.clone(), &clock))
            .collect();
        // the 4th submit crossed max_batch: everything encoded in ONE forward
        assert_eq!(co.pending_len(), 0);
        assert_eq!(model.encoder().forward_count(), 4);
        assert_eq!(co.stats().flushes, 1);
        assert_eq!(co.stats().full_flushes, 1);
        assert_eq!(co.stats().mean_batch_fill(), 4.0);
        for t in tickets {
            assert!(co.poll(t).is_some());
            assert!(co.poll(t).is_none(), "tickets redeem exactly once");
        }
    }

    #[test]
    fn timer_flush_waits_for_the_deadline() {
        let (pool, vocab) = toy(2);
        let model = model(vocab, 2);
        let clock = VirtualClock::new();
        let mut co = EncodeCoalescer::new(CoalescerConfig {
            max_batch: 8,
            max_wait: 3,
        });
        let t0 = co.submit(&model, pool[0].clone(), &clock);
        clock.advance(1);
        let t1 = co.submit(&model, pool[1].clone(), &clock);
        // deadline not reached: pump is a no-op
        assert_eq!(co.pump(&model, &clock), 0);
        assert_eq!(co.pending_len(), 2);
        clock.advance(2); // oldest has now waited 3 ticks
        assert_eq!(co.pump(&model, &clock), 2);
        assert_eq!(co.stats().timer_flushes, 1);
        assert_eq!(co.stats().mean_batch_fill(), 2.0);
        assert!(co.poll(t0).is_some());
        assert!(co.poll(t1).is_some());
        // an empty queue never timer-flushes
        clock.advance(100);
        assert_eq!(co.pump(&model, &clock), 0);
        assert_eq!(co.stats().flushes, 1);
    }

    #[test]
    fn rows_route_to_their_tickets_and_match_single_graph_encoding() {
        let (pool, vocab) = toy(5);
        let model = model(vocab, 3);
        let clock = VirtualClock::new();
        let mut co = EncodeCoalescer::new(CoalescerConfig {
            max_batch: 3,
            max_wait: 1,
        });
        // submit out of pool order so row routing is actually exercised
        let order = [3usize, 0, 4, 2, 1];
        let tickets: Vec<(usize, Ticket)> = order
            .iter()
            .map(|&i| (i, co.submit(&model, pool[i].clone(), &clock)))
            .collect();
        co.flush(&model); // drain the 2-request remainder
        assert_eq!(co.stats().flushes, 2);
        assert_eq!(co.stats().full_flushes, 1);
        assert_eq!(co.stats().forced_flushes, 1);
        for (i, t) in tickets {
            let got = co.poll(t).expect("all batches flushed");
            let solo = model.encoder().embed(&pool[i]);
            for (a, b) in got.data().iter().zip(solo.data().iter()) {
                assert!((a - b).abs() < 1e-4, "graph {i}: coalesced {a} vs solo {b}");
            }
        }
    }

    #[test]
    fn cancel_evicts_pending_and_ready_tickets() {
        let (pool, vocab) = toy(3);
        let model = model(vocab, 6);
        let clock = VirtualClock::new();
        let mut co = EncodeCoalescer::new(CoalescerConfig {
            max_batch: 8,
            max_wait: 1,
        });
        // pending cancel: the request never encodes
        let t0 = co.submit(&model, pool[0].clone(), &clock);
        assert!(co.cancel(t0));
        assert_eq!(co.pending_len(), 0);
        co.flush(&model);
        assert_eq!(model.encoder().forward_count(), 0);
        assert!(co.poll(t0).is_none());
        // ready cancel: an abandoned embedding leaves the map
        let t1 = co.submit(&model, pool[1].clone(), &clock);
        let t2 = co.submit(&model, pool[2].clone(), &clock);
        co.flush(&model);
        assert_eq!(co.ready_len(), 2);
        assert!(co.cancel(t1));
        assert_eq!(co.ready_len(), 1);
        assert!(co.poll(t1).is_none());
        assert!(co.poll(t2).is_some(), "other tickets are untouched");
        assert!(!co.cancel(t1), "double cancel reports absence");
    }

    /// The mid-flight cancel regression: a ticket cancelled between
    /// `begin_flush` and `complete_flush` must have its result dropped at
    /// completion — not filed into `ready` (where an abandoned caller
    /// would leak it forever) — and must not leave tracking residue.
    #[test]
    fn cancel_mid_flight_drops_the_result_without_leaking() {
        let (pool, vocab) = toy(3);
        let model = model(vocab, 7);
        let clock = VirtualClock::new();
        let mut co = EncodeCoalescer::new(CoalescerConfig {
            max_batch: 8,
            max_wait: 1,
        });
        let t0 = co.submit(&model, pool[0].clone(), &clock);
        let t1 = co.submit(&model, pool[1].clone(), &clock);
        let batch = co.begin_flush().expect("two requests queued");
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert_eq!(co.pending_len(), 0, "begin_flush drains the queue");
        assert_eq!(co.in_flight_len(), 2);
        // the batch is mid-flight: cancel must succeed, exactly once
        assert!(co.cancel(t0), "mid-flight cancel reports the ticket live");
        assert!(!co.cancel(t0), "double mid-flight cancel reports absence");
        let rows = model.encoder().embed_batch(&batch.graphs());
        assert_eq!(co.complete_flush(batch, rows), 2, "both rows were encoded");
        // cancelled row dropped, surviving row filed, nothing leaked
        assert_eq!(co.in_flight_len(), 0);
        assert_eq!(co.ready_len(), 1, "cancelled embedding never enters ready");
        assert!(co.poll(t0).is_none());
        assert!(co.poll(t1).is_some());
        assert!(
            !co.cancel(t0),
            "post-completion cancel finds no residue (no ticket leak)"
        );
        assert_eq!(co.stats().flushes, 1);
        assert_eq!(co.stats().encoded, 2);
        // a fresh submit after the cycle behaves normally
        let t2 = co.submit(&model, pool[2].clone(), &clock);
        co.flush(&model);
        assert!(co.poll(t2).is_some());
    }

    /// The worker-loop API: `enqueue` never flushes (even past `max_batch`),
    /// `flush_due` reports the timer condition without a model, and the
    /// caller-driven two-phase flush routes every row by `tickets()`.
    #[test]
    fn enqueue_and_flush_due_leave_the_flush_policy_to_the_caller() {
        let (pool, vocab) = toy(5);
        let model = model(vocab, 9);
        let clock = VirtualClock::new();
        let mut co = EncodeCoalescer::new(CoalescerConfig {
            max_batch: 2,
            max_wait: 3,
        });
        assert!(!co.flush_due(&clock), "empty queue is never due");
        let tickets: Vec<Ticket> = pool.iter().map(|g| co.enqueue(g.clone(), &clock)).collect();
        assert_eq!(co.pending_len(), 5, "enqueue ignores max_batch");
        assert_eq!(model.encoder().forward_count(), 0);
        assert!(!co.flush_due(&clock), "deadline not reached yet");
        clock.advance(3);
        assert!(co.flush_due(&clock));
        co.note_flush_trigger(FlushTrigger::Timer);
        let batch = co.begin_flush().expect("queue is non-empty");
        assert_eq!(batch.tickets(), tickets, "tickets come back in row order");
        let rows = model.encoder().embed_batch(&batch.graphs());
        assert_eq!(co.complete_flush(batch, rows), 5);
        assert!(!co.flush_due(&clock), "drained queue is no longer due");
        assert_eq!(co.stats().timer_flushes, 1);
        assert_eq!(co.stats().flushes, 1);
        for t in tickets {
            assert!(co.poll(t).is_some());
        }
    }

    #[test]
    fn begin_flush_on_empty_queue_is_none() {
        let (_, vocab) = toy(1);
        let _model = model(vocab, 8);
        let mut co = EncodeCoalescer::new(CoalescerConfig::default());
        assert!(co.begin_flush().is_none());
        assert_eq!(co.in_flight_len(), 0);
    }

    #[test]
    fn flush_of_empty_queue_is_a_no_op() {
        let (_, vocab) = toy(1);
        let model = model(vocab, 4);
        let mut co = EncodeCoalescer::new(CoalescerConfig::default());
        assert_eq!(co.flush(&model), 0);
        assert_eq!(co.stats(), &CoalescerStats::default());
        assert_eq!(co.stats().mean_batch_fill(), 0.0);
    }

    #[test]
    fn max_batch_of_zero_degrades_to_one() {
        let (pool, vocab) = toy(1);
        let model = model(vocab, 5);
        let clock = VirtualClock::new();
        let mut co = EncodeCoalescer::new(CoalescerConfig {
            max_batch: 0,
            max_wait: 1,
        });
        let t = co.submit(&model, pool[0].clone(), &clock);
        assert!(co.poll(t).is_some(), "batch size 1: submit flushes at once");
    }
}
