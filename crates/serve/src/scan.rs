//! The precision-dispatched shard scan kernels, over *borrowed views*.
//!
//! Every scan the serving layer runs — exact f32, int8 coarse-scan +
//! exact re-rank, IVF probe — operates on a [`ShardView`]: plain slices
//! of ids, rows, quantized codes, and cell tables. The owned
//! [`Shard`](crate::index) builds its view from its own vectors; the
//! mapped [`ReadOnlyIndex`](crate::artifact::ReadOnlyIndex) builds the
//! *same* view type from byte ranges of an `mmap`'d artifact. One scan
//! implementation, two memory sources — which is what makes the mapped
//! index's rankings bit-identical to the in-process index by
//! construction rather than by parallel maintenance: there is no second
//! scan to drift.

use gbm_quant::{
    quantize_vector, IvfCells, IvfCellsView, IvfProbeStats, QuantizedMatrixView, QuantizedVector,
};
use gbm_tensor::top_k;

use crate::index::{merge_row_ranked, GraphId, ScanStats, SCAN_BLOCK};
use crate::quantized::ScanPrecision;

/// Same accumulation order as
/// [`EmbeddingStore::cosine`](gbm_nn::EmbeddingStore::cosine) — keeps
/// sharded scores bit-identical to the monolithic scan.
#[inline]
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// A shard's int8 mirror as borrowed slices: the code matrix view plus the
/// per-`SCAN_BLOCK` bound maxima the blocked margin cut reads.
#[derive(Clone, Copy)]
pub(crate) struct QuantView<'a> {
    /// Codes + per-row scales.
    pub mat: QuantizedMatrixView<'a>,
    /// Largest quantization scale per [`SCAN_BLOCK`] of rows.
    pub block_scale: &'a [f32],
    /// Largest row L1 norm per [`SCAN_BLOCK`].
    pub block_l1: &'a [f32],
}

impl QuantView<'_> {
    /// Per-block error bounds: `bounds[b]` caps `|approx − exact|` for
    /// every row of block `b` (see `QuantizedShard::block_bounds` for the
    /// derivation — this is the single definition both the owned shard and
    /// the mapped index evaluate).
    pub fn block_bounds(&self, q: &QuantizedVector, l1_q: f32) -> Vec<f32> {
        let n = q.codes.len() as f32;
        self.block_scale
            .iter()
            .zip(self.block_l1)
            .map(|(&bs, &bl)| {
                (bs * 0.5 * l1_q + q.scale * 0.5 * bl + n * q.scale * bs * 0.25) * 1.05 + 1e-6
            })
            .collect()
    }

    /// The blocked-margin candidate scan (see
    /// `QuantizedShard::scan_candidates_blocked`, which delegates here):
    /// keeps the approximate top-`kprime` plus every row within its
    /// block's margin of the cut. Returns `(row, approx_score)` sorted by
    /// `(score desc, row asc)`.
    pub fn scan_candidates_blocked(
        &self,
        q: &QuantizedVector,
        l1_q: f32,
        kprime: usize,
    ) -> Vec<(usize, f32)> {
        if kprime == 0 {
            return Vec::new();
        }
        let bounds = self.block_bounds(q, l1_q);
        let max_bound = bounds.iter().copied().fold(0.0, f32::max);
        let margins: Vec<f32> = bounds.iter().map(|&b| b + max_bound).collect();
        let rows = self.mat.rows();
        let mut best: Vec<(usize, f32)> = Vec::new();
        let mut cands: Vec<(usize, f32)> = Vec::new();
        let mut scores = [0.0f32; SCAN_BLOCK];
        let mut start = 0;
        while start < rows {
            let n = SCAN_BLOCK.min(rows - start);
            let b = start / SCAN_BLOCK;
            let mut block_max = f32::NEG_INFINITY;
            for (i, s) in scores[..n].iter_mut().enumerate() {
                *s = self.mat.approx_dot(start + i, q);
                block_max = block_max.max(*s);
            }
            let cut = (best.len() >= kprime).then(|| best[kprime - 1].1);
            if cut.is_none_or(|c| block_max >= c) {
                best = merge_row_ranked(
                    best,
                    top_k(&scores[..n], kprime)
                        .into_iter()
                        .map(|(r, s)| (r + start, s))
                        .collect(),
                    kprime,
                );
            }
            let cut = (best.len() >= kprime).then(|| best[kprime - 1].1);
            let t = cut.map(|c| c - margins[b]);
            for (i, &s) in scores[..n].iter().enumerate() {
                if t.is_none_or(|t| s >= t) {
                    cands.push((start + i, s));
                }
            }
            if cands.len() > kprime + SCAN_BLOCK {
                if let Some(c) = cut {
                    cands.retain(|&(r, s)| s >= c - margins[r / SCAN_BLOCK]);
                }
            }
            start += n;
        }
        if let Some(c) = (best.len() >= kprime).then(|| best[kprime - 1].1) {
            cands.retain(|&(r, s)| s >= c - margins[r / SCAN_BLOCK]);
        }
        cands.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        cands
    }

    /// Bytes one full coarse scan touches: codes + scales + both bound
    /// arrays (same accounting as `QuantizedShard::scan_bytes`).
    pub fn scan_bytes(&self) -> usize {
        self.mat.scan_bytes()
            + (self.block_scale.len() + self.block_l1.len()) * std::mem::size_of::<f32>()
    }
}

/// A trained IVF cell index, wherever it lives: the owned
/// [`IvfCells`] (in-process serving) or the CSR [`IvfCellsView`] over a
/// mapped artifact. Probe arithmetic is shared upstream in `gbm-quant`, so
/// the two variants order cells bit-identically.
pub(crate) enum IvfRef<'a> {
    /// The live, churn-maintained index.
    Owned(&'a IvfCells),
    /// Flat CSR slices out of a mapped artifact (always trained — writers
    /// only serialize trained cell tables).
    Mapped(IvfCellsView<'a>),
}

impl IvfRef<'_> {
    /// Whether probes may run; untrained owned indexes answer no and the
    /// scan falls back to the exact int8 path.
    pub fn is_trained(&self) -> bool {
        match self {
            IvfRef::Owned(i) => i.is_trained(),
            IvfRef::Mapped(_) => true,
        }
    }

    /// The `nprobe` cells nearest `query`, best first.
    pub fn probe_cells(&self, query: &[f32], nprobe: usize) -> Vec<u32> {
        match self {
            IvfRef::Owned(i) => i.probe_cells(query, nprobe),
            IvfRef::Mapped(v) => v.probe_cells(query, nprobe),
        }
    }

    /// Cost accounting for a probe over `probed` cells.
    pub fn probe_stats(&self, probed: &[u32]) -> IvfProbeStats {
        match self {
            IvfRef::Owned(i) => i.probe_stats(probed),
            IvfRef::Mapped(v) => v.probe_stats(probed),
        }
    }

    /// The member rows of cell `c`.
    pub fn cell(&self, c: usize) -> &[u32] {
        match self {
            IvfRef::Owned(i) => i.cell(c),
            IvfRef::Mapped(v) => v.cell(c),
        }
    }

    /// Bytes the IVF structures add to a scan pass.
    pub fn scan_bytes(&self) -> usize {
        match self {
            IvfRef::Owned(i) => i.scan_bytes(),
            IvfRef::Mapped(v) => v.scan_bytes(),
        }
    }
}

/// One shard's scannable state as borrowed slices — what every scan kernel
/// below actually reads. Both index flavors produce this.
pub(crate) struct ShardView<'a> {
    /// `ids[r]` owns matrix row `r`.
    pub ids: &'a [GraphId],
    /// Row-major `[ids.len() × hidden]`.
    pub rows: &'a [f32],
    /// int8 mirror (present at the Int8/Ivf precisions, absent on shards
    /// with no rows).
    pub quant: Option<QuantView<'a>>,
    /// IVF cell index (present at Ivf precision; mapped artifacts omit it
    /// for shards that were untrained, which falls back to int8 exactly
    /// like an untrained owned index does).
    pub ivf: Option<IvfRef<'a>>,
}

impl ShardView<'_> {
    /// Blocked top-K scan: score `SCAN_BLOCK` rows at a time into a reused
    /// buffer, partial-select each block, and merge into the running best
    /// list. Returns `(id, score)` sorted by `(score desc, row asc)`.
    pub fn scan_top_k(
        &self,
        query: &[f32],
        k: usize,
        hidden: usize,
        stats: &mut ScanStats,
    ) -> Vec<(GraphId, f32)> {
        if k == 0 || self.ids.is_empty() {
            return Vec::new();
        }
        stats.rows_scanned += self.ids.len() as u64;
        stats.scan_bytes += std::mem::size_of_val(self.rows) as u64;
        let mut best: Vec<(usize, f32)> = Vec::new();
        let mut scores = [0.0f32; SCAN_BLOCK];
        for (block, rows) in self.rows.chunks(SCAN_BLOCK * hidden).enumerate() {
            let n = rows.len() / hidden;
            for (r, row) in rows.chunks_exact(hidden).enumerate() {
                scores[r] = dot(query, row);
            }
            let block_best = top_k(&scores[..n], k);
            let offset = block * SCAN_BLOCK;
            best = merge_row_ranked(
                best,
                block_best
                    .into_iter()
                    .map(|(r, s)| (r + offset, s))
                    .collect(),
                k,
            );
        }
        best.into_iter().map(|(r, s)| (self.ids[r], s)).collect()
    }

    /// Quantized top-K scan: an int8 coarse scan keeps the approximate
    /// top-`k·widen` rows plus the quantization-error margin zone, then
    /// exactly those candidates are re-scored against the retained f32
    /// rows — same [`dot`] accumulation order as the f32 scan, candidates
    /// visited in ascending row order, so ids, scores, and tie order all
    /// match [`scan_top_k`](Self::scan_top_k) unconditionally (the margin
    /// provably covers the true top-K; see `quantized`'s module docs).
    #[allow(clippy::too_many_arguments)]
    pub fn scan_top_k_int8(
        &self,
        query: &[f32],
        q: &QuantizedVector,
        l1_q: f32,
        k: usize,
        widen: usize,
        hidden: usize,
        stats: &mut ScanStats,
    ) -> Vec<(GraphId, f32)> {
        if k == 0 || self.ids.is_empty() {
            return Vec::new();
        }
        let quant = self
            .quant
            .as_ref()
            .expect("int8 scan requires the quantized mirror");
        let kprime = k.saturating_mul(widen.max(1)).min(self.ids.len());
        let candidates = quant.scan_candidates_blocked(q, l1_q, kprime);
        // exact re-rank in ascending row order: top_k ties then break by
        // candidate position = row index, exactly as the full f32 scan
        let mut cand_rows: Vec<usize> = candidates.into_iter().map(|(r, _)| r).collect();
        cand_rows.sort_unstable();
        stats.rows_scanned += self.ids.len() as u64;
        stats.survivors += cand_rows.len() as u64;
        stats.scan_bytes += (quant.scan_bytes() + cand_rows.len() * hidden * 4) as u64;
        let exact: Vec<f32> = cand_rows
            .iter()
            .map(|&r| dot(query, &self.rows[r * hidden..(r + 1) * hidden]))
            .collect();
        top_k(&exact, k)
            .into_iter()
            .map(|(i, s)| (self.ids[cand_rows[i]], s))
            .collect()
    }

    /// IVF approximate top-K scan: probe the `nprobe` cells whose
    /// centroids sit nearest the query, approximate-score only their
    /// member rows over the int8 mirror, keep the best `k · widen`, and
    /// exact-f32 re-rank those (ascending row order, same [`dot`] as every
    /// other path, so returned scores are exact even though the candidate
    /// *set* is approximate). Shards without a trained cell index —
    /// untrained owned, or mapped with no serialized IVF sections — fall
    /// back to [`scan_top_k_int8`](Self::scan_top_k_int8), which *is*
    /// exact.
    #[allow(clippy::too_many_arguments)]
    pub fn scan_top_k_ivf(
        &self,
        query: &[f32],
        q: &QuantizedVector,
        l1_q: f32,
        k: usize,
        nprobe: usize,
        widen: usize,
        hidden: usize,
        stats: &mut ScanStats,
    ) -> Vec<(GraphId, f32)> {
        if k == 0 || self.ids.is_empty() {
            return Vec::new();
        }
        let Some(ivf) = self.ivf.as_ref().filter(|i| i.is_trained()) else {
            return self.scan_top_k_int8(query, q, l1_q, k, widen, hidden, stats);
        };
        let quant = self
            .quant
            .as_ref()
            .expect("ivf scan requires the quantized mirror");
        let mat = &quant.mat;
        let probed = ivf.probe_cells(query, nprobe.max(1));
        let probe = ivf.probe_stats(&probed);
        stats.cells_probed += probe.cells_probed as u64;
        stats.rows_scanned += probe.members_visited as u64;
        stats.scan_bytes += probe.probe_bytes as u64;
        let mut cand: Vec<u32> = Vec::new();
        for &c in &probed {
            cand.extend_from_slice(ivf.cell(c as usize));
        }
        if cand.is_empty() {
            return Vec::new();
        }
        let approx: Vec<f32> = cand
            .iter()
            .map(|&r| mat.approx_dot(r as usize, q))
            .collect();
        let kprime = k.saturating_mul(widen.max(1));
        let mut cand_rows: Vec<usize> = top_k(&approx, kprime)
            .into_iter()
            .map(|(i, _)| cand[i] as usize)
            .collect();
        cand_rows.sort_unstable();
        stats.survivors += cand_rows.len() as u64;
        // visited int8 codes (+ per-row scale) and the survivors' exact rows
        stats.scan_bytes += (cand.len() * (hidden + 4) + cand_rows.len() * hidden * 4) as u64;
        let exact: Vec<f32> = cand_rows
            .iter()
            .map(|&r| dot(query, &self.rows[r * hidden..(r + 1) * hidden]))
            .collect();
        top_k(&exact, k)
            .into_iter()
            .map(|(i, s)| (self.ids[cand_rows[i]], s))
            .collect()
    }
}

/// The shard-independent half of a query under `precision`: the quantized
/// query codes and L1 norm (at int8 and IVF — `None` at f32).
pub(crate) fn prepare_query(
    precision: ScanPrecision,
    query: &[f32],
) -> Option<(QuantizedVector, f32)> {
    matches!(
        precision,
        ScanPrecision::Int8 { .. } | ScanPrecision::Ivf { .. }
    )
    .then(|| {
        (
            quantize_vector(query),
            query.iter().map(|v| v.abs()).sum::<f32>(),
        )
    })
}

/// One shard's sorted top-K partial under `precision` — the unit of work
/// every query fan-out dispatches, for both index flavors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_shard(
    shard: &ShardView<'_>,
    query: &[f32],
    quant_query: &Option<(QuantizedVector, f32)>,
    k: usize,
    precision: ScanPrecision,
    hidden: usize,
    stats: &mut ScanStats,
) -> Vec<(GraphId, f32)> {
    stats.shards += 1;
    match (precision, quant_query) {
        (ScanPrecision::Int8 { widen }, Some((q, l1_q))) => {
            shard.scan_top_k_int8(query, q, *l1_q, k, widen, hidden, stats)
        }
        (ScanPrecision::Ivf { nprobe, widen }, Some((q, l1_q))) => {
            shard.scan_top_k_ivf(query, q, *l1_q, k, nprobe, widen, hidden, stats)
        }
        _ => shard.scan_top_k(query, k, hidden, stats),
    }
}
