//! # gbm-serve
//!
//! The serving layer: everything between "a trained model and a graph pool"
//! and "answer top-K queries under load". Contrastively-trained models rank
//! by plain embedding dot product ([`RankBy::Cosine`] in `gbm-eval`), so the
//! hot retrieval path needs no match head at all — serving reduces to an
//! embedding-index scan, the shape of XLIR's IR-embedding search:
//!
//! * [`ShardedIndex`] — the candidate pool partitioned across S shards by a
//!   stable hash of graph id. Each shard owns a dense row-major embedding
//!   matrix built through the batched encoder, supports incremental
//!   `insert`/`remove` (inserts queue into a pending batch that re-encodes
//!   through **one** disjoint-union forward), and answers queries with a
//!   blocked top-K dot-product scan ([`gbm_tensor::top_k`]). Shards scan in
//!   parallel (rayon) and their sorted partial results k-way merge.
//! * [`ScanPrecision`] / [`QuantizedShard`] — the int8 scan path: each
//!   shard shadows its f32 rows with a `gbm-quant` per-row symmetric code
//!   matrix (~4× smaller scan footprint), coarse-scans it for a widened
//!   top-K′ candidate set, and re-scores exactly those candidates against
//!   the retained f32 rows — final rankings equal the f32 scan (ids,
//!   scores, tie order) whenever the widened set covers the true top-K.
//! * [`ScanPrecision::Ivf`] — the approximate tier above int8: each shard
//!   past a training threshold keeps a seeded-k-means inverted-file index
//!   ([`gbm_quant::IvfCells`]) over its rows, maintained incrementally
//!   through insert/remove churn with amortized doubling retrains. A query
//!   scores the `≈√n` coarse centroids, visits only the `nprobe` nearest
//!   cells over the int8 mirror, and exactly re-ranks the `k·widen`
//!   survivors against f32 — sub-linear scan work in exchange for a
//!   *recall* contract (measured and CI-gated at ≥0.95 recall@10 on the
//!   clustered bench pool) instead of the exact tiers' rank identity.
//!   Untrained shards fall back to the exact int8 path, so toy pools and
//!   cold starts stay bit-identical. `GBM_SCAN_NPROBE` / `GBM_IVF_CELLS`
//!   tune probing from the environment ([`IndexConfig::with_env`]).
//! * [`EncodeCoalescer`] — the request-side batcher: incoming encode
//!   requests queue until `max_batch` graphs are waiting or the oldest has
//!   waited `max_wait` clock ticks, then one [`GraphBatch`] forward encodes
//!   the whole flush and every caller picks up its own row by ticket.
//! * [`Clock`] / [`VirtualClock`] — time is injected, never read from the
//!   OS, so coalescing behaviour (flush timing, batch fill under a given
//!   arrival rate) is exactly reproducible in tests and load probes.
//! * [`Server`] — the concurrent front-end tying it together: one encode
//!   worker drives the coalescer's two-phase flush (the batched forward
//!   runs off-lock, overlapping scans), N shard-pinned scan workers answer
//!   query fan-outs via [`ShardedIndex::query_shards`], and callers k-way
//!   merge the sorted partials — bit-identical to the single-threaded
//!   query. Submissions resolve through oneshot handles, never polling.
//!   `GBM_SERVE_WORKERS` / `GBM_FLUSH_TICKS` tune the topology from the
//!   environment ([`ServerConfig::with_env`]).
//! * [`persist`] — crash-safe persistence: checksummed atomic snapshots of
//!   the index (plus tokenizer and model) and an append-only op WAL the
//!   durable server tees every insert/remove through. [`recover`] rebuilds
//!   serving state from the newest verifying snapshot plus a WAL tail
//!   replay, rank-identical to a never-crashed replay of the durable ops —
//!   every corruption surfaces as a typed error, never a wrong ranking.
//!   Storage is injected ([`gbm_store::Storage`]) so crashes, torn writes,
//!   and bit rot are deterministically testable, mirroring the injected
//!   [`Clock`]. `GBM_SNAPSHOT_DIR` / `GBM_WAL_FSYNC` tune durability from
//!   the environment ([`DurabilityConfig::with_env`]).
//! * [`artifact`] — multi-process serving from a published v2 artifact
//!   (`gbm-artifact`'s page-aligned zero-copy format): a writer
//!   [`publish_index_artifact`]s generations (tmp → fsync → rename, then a
//!   `CURRENT` pointer swing), reader processes `mmap` them and serve
//!   through [`ReadOnlyIndex`] — the same query surface as
//!   [`ShardedIndex`], rank-identical at the exact tiers because both run
//!   the *same* scan kernels over borrowed shard views — and
//!   [`ArtifactReader`] polls `CURRENT` to swap generations without
//!   dropping in-flight queries. `GBM_ARTIFACT_DIR` / `GBM_ARTIFACT_MMAP`
//!   tune the reader from the environment ([`ArtifactConfig::with_env`]).
//!
//! Rankings are *exact*: a sharded top-K scan returns the same candidates in
//! the same order as a full monolithic
//! [`EmbeddingStore`](gbm_nn::EmbeddingStore) scan (equality asserted in
//! tests here and in `gbm-eval`, which wires this index into its retrieval
//! API). `RankBy::Cosine` is documented in `gbm_eval::retrieval`.

pub mod artifact;
pub mod clock;
pub mod coalesce;
mod env;
pub mod index;
mod metrics;
pub mod persist;
pub mod quantized;
mod scan;
pub mod server;
#[cfg(any(test, feature = "test-fixtures"))]
pub mod testfix;

pub use artifact::{
    encode_index_artifact, publish_index_artifact, ArtifactConfig, ArtifactReader, ReadOnlyIndex,
};
pub use clock::{Clock, VirtualClock, WallClock};
pub use gbm_artifact::{ArtifactError, MapKind};
pub use gbm_obs::{MetricsRegistry, MetricsSnapshot, ObsConfig, TraceSpan, TraceStage};

pub use coalesce::{
    CoalescerConfig, CoalescerStats, EncodeCoalescer, FlushBatch, FlushTrigger, Ticket,
};
pub use index::{shard_of, GraphId, IndexConfig, ScanStats, ShardedIndex};
pub use persist::{
    checkpoint, recover, restore_index, snapshot_index, DurabilityConfig, PersistError, Recovery,
    RecoveryStats,
};
pub use quantized::{QuantizedShard, ScanPrecision};
pub use server::{
    EncodeHandle, InsertHandle, RemoveHandle, ServeError, Server, ServerConfig, ServerReport,
};
