//! Golden-file test pinning the v2 artifact byte format in both
//! directions.
//!
//! `tests/data/golden_v2.gbm` is a committed encoding of a fixed index
//! state. The test fails the moment `encode_artifact` produces different
//! bytes for the same data, or the moment the committed bytes parse,
//! verify, or resolve differently — i.e. the moment an innocent-looking
//! change breaks every already-published artifact in the field. A
//! deliberate format change must bump `ARTIFACT_VERSION` (old files then
//! fail typed, not misparse) and re-bless:
//!
//! ```text
//! GBM_BLESS_GOLDEN=1 cargo test -p gbm-artifact --test golden
//! ```

use std::path::PathBuf;

use gbm_artifact::{
    encode_artifact, ArtifactIvf, ArtifactMap, ArtifactMeta, ArtifactQuant, ArtifactShard,
    ArtifactView, HeapMap, PAGE_ALIGN,
};
use gbm_store::PrecisionTag;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_v2.gbm")
}

struct GoldenData {
    meta: ArtifactMeta,
    ids0: Vec<u64>,
    rows0: Vec<f32>,
    codes0: Vec<i8>,
    scales0: Vec<f32>,
    block_scale0: Vec<f32>,
    block_l10: Vec<f32>,
    centroids0: Vec<f32>,
    sqnorms0: Vec<f32>,
    offsets0: Vec<u32>,
    members0: Vec<u32>,
    cell_of0: Vec<u32>,
    ids2: Vec<u64>,
    rows2: Vec<f32>,
    codes2: Vec<i8>,
    scales2: Vec<f32>,
    block_scale2: Vec<f32>,
    block_l12: Vec<f32>,
}

/// A fixed three-shard index exercising every section kind and edge: a
/// shard with quant + trained IVF, a completely empty shard, and a
/// quant-only shard; negative floats, -0.0, and full-range codes included.
fn golden_data() -> GoldenData {
    GoldenData {
        meta: ArtifactMeta {
            num_shards: 3,
            encode_batch: 8,
            hidden: 4,
            precision: PrecisionTag::Ivf {
                nprobe: 2,
                widen: 3,
                cells: 0,
            },
            last_seq: 77,
        },
        ids0: vec![2, 40, 7, 900],
        rows0: vec![
            0.5, -1.25, 0.0, 1.0, 2.5, -0.75, 0.125, -0.0, -2.0, 0.25, 1.5, -0.5, 0.0, 0.0, 0.0,
            0.0,
        ],
        codes0: vec![
            51, -127, 0, 102, 127, -38, 6, 0, -127, 16, 95, -32, 0, 0, 0, 0,
        ],
        scales0: vec![0.009_842_52, 0.019_685_04, 0.015_748_03, 0.0],
        block_scale0: vec![0.019_685_04],
        block_l10: vec![4.1],
        centroids0: vec![0.5, -1.0, 0.25, 0.75, -0.25, 1.0, -0.5, 0.0],
        sqnorms0: vec![1.937_5, 1.3125],
        offsets0: vec![0, 3, 4],
        members0: vec![0, 2, 3, 1],
        cell_of0: vec![0, 1, 0, 0],
        ids2: vec![11],
        rows2: vec![1.0, -1.0, 0.5, 0.25],
        codes2: vec![127, -127, 64, 32],
        scales2: vec![0.007_874_016],
        block_scale2: vec![0.007_874_016],
        block_l12: vec![2.75],
    }
}

fn encode(d: &GoldenData) -> Vec<u8> {
    let shards = [
        ArtifactShard {
            ids: &d.ids0,
            rows: &d.rows0,
            quant: Some(ArtifactQuant {
                codes: &d.codes0,
                scales: &d.scales0,
                block_scale: &d.block_scale0,
                block_l1: &d.block_l10,
            }),
            ivf: Some(ArtifactIvf {
                centroids: &d.centroids0,
                sqnorms: &d.sqnorms0,
                offsets: &d.offsets0,
                members: &d.members0,
                cell_of: &d.cell_of0,
            }),
        },
        ArtifactShard {
            ids: &[],
            rows: &[],
            quant: None,
            ivf: None,
        },
        ArtifactShard {
            ids: &d.ids2,
            rows: &d.rows2,
            quant: Some(ArtifactQuant {
                codes: &d.codes2,
                scales: &d.scales2,
                block_scale: &d.block_scale2,
                block_l1: &d.block_l12,
            }),
            ivf: None,
        },
    ];
    encode_artifact(&d.meta, &shards)
}

#[test]
fn golden_v2_bytes_are_stable_in_both_directions() {
    let data = golden_data();
    let bytes = encode(&data);
    let path = golden_path();
    if std::env::var("GBM_BLESS_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless it with GBM_BLESS_GOLDEN=1",
            path.display()
        )
    });
    // encode direction: today's encoder reproduces the committed bytes
    assert_eq!(
        bytes, golden,
        "artifact encoding changed — a deliberate format change must bump \
         ARTIFACT_VERSION and re-bless the golden file"
    );

    // decode direction: the committed bytes parse, fully verify, and
    // resolve back to the fixed data, in place
    let map = HeapMap::from_bytes(&golden);
    let view = ArtifactView::parse(map.bytes()).expect("committed golden artifact parses");
    view.verify().expect("committed golden artifact verifies");
    assert_eq!(*view.meta(), data.meta);
    for e in view.sections() {
        assert_eq!(e.offset % PAGE_ALIGN, 0, "{:?} is page-aligned", e.kind);
    }

    let s0 = view.shard(0).expect("shard 0 resolves");
    assert_eq!(s0.ids, &data.ids0[..]);
    assert_eq!(s0.rows, &data.rows0[..]);
    assert!(
        s0.rows[7] == 0.0 && s0.rows[7].is_sign_negative(),
        "-0.0 survives bit-exactly"
    );
    let q0 = s0.quant.expect("shard 0 quant");
    assert_eq!(q0.codes, &data.codes0[..]);
    assert_eq!(q0.scales, &data.scales0[..]);
    assert_eq!(q0.block_scale, &data.block_scale0[..]);
    assert_eq!(q0.block_l1, &data.block_l10[..]);
    let ivf0 = s0.ivf.expect("shard 0 ivf");
    assert_eq!(ivf0.centroids, &data.centroids0[..]);
    assert_eq!(ivf0.sqnorms, &data.sqnorms0[..]);
    assert_eq!(ivf0.offsets, &data.offsets0[..]);
    assert_eq!(ivf0.members, &data.members0[..]);
    assert_eq!(ivf0.cell_of, &data.cell_of0[..]);

    let s1 = view.shard(1).expect("empty shard resolves");
    assert!(s1.ids.is_empty() && s1.rows.is_empty());
    assert!(s1.quant.is_none() && s1.ivf.is_none());

    let s2 = view.shard(2).expect("shard 2 resolves");
    assert_eq!(s2.ids, &data.ids2[..]);
    assert_eq!(s2.rows, &data.rows2[..]);
    assert_eq!(s2.quant.expect("shard 2 quant").codes, &data.codes2[..]);
    assert!(s2.ivf.is_none());
}
