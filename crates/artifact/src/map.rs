//! How artifact bytes get into the address space: a real `mmap` on unix
//! (raw `extern "C"` binding — the workspace vendors no libc crate) or a
//! portable read-to-heap fallback, both behind [`ArtifactMap`]. Readers are
//! written against the trait, so the zero-copy path and the portable path
//! serve queries through identical code.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// Which loading strategy backs a map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapKind {
    /// `mmap(2)`: cold start is bounded by page faults, pages are shared
    /// across reader processes by the page cache.
    Mmap,
    /// A heap buffer filled by ordinary reads: portable everywhere, still
    /// decode-free (the artifact layout is served in place either way).
    Heap,
}

/// A read-only byte mapping of an artifact file. The base pointer is
/// guaranteed to be at least 8-byte aligned (page-aligned for
/// [`MapKind::Mmap`]), which together with the format's page-aligned
/// section offsets makes in-place typed casts safe.
pub trait ArtifactMap: Send + Sync {
    /// The mapped bytes.
    fn bytes(&self) -> &[u8];
    /// Which strategy produced this map.
    fn kind(&self) -> MapKind;
}

/// The portable fallback: the whole file read into an 8-byte-aligned heap
/// buffer.
pub struct HeapMap {
    /// Backing storage as `u64`s so the base alignment is 8 regardless of
    /// allocator mood; `len` trims the tail padding word.
    buf: Vec<u64>,
    len: usize,
}

impl HeapMap {
    /// Reads `path` fully into an aligned heap buffer.
    pub fn read(path: &Path) -> io::Result<HeapMap> {
        let mut f = File::open(path)?;
        let expect = f.metadata()?.len() as usize;
        let mut bytes = Vec::with_capacity(expect);
        f.read_to_end(&mut bytes)?;
        Ok(HeapMap::from_bytes(&bytes))
    }

    /// Wraps in-memory bytes (tests and the writer's self-verification).
    pub fn from_bytes(bytes: &[u8]) -> HeapMap {
        let words = bytes.len().div_ceil(8);
        let mut buf = vec![0u64; words];
        // SAFETY: the u64 buffer is at least bytes.len() bytes long and u64
        // has no invalid bit patterns to corrupt.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr() as *mut u8, bytes.len());
        }
        HeapMap {
            buf,
            len: bytes.len(),
        }
    }
}

impl ArtifactMap for HeapMap {
    fn bytes(&self) -> &[u8] {
        // SAFETY: buf holds at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.buf.as_ptr() as *const u8, self.len) }
    }

    fn kind(&self) -> MapKind {
        MapKind::Heap
    }
}

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A private read-only `mmap` of the whole file. The fd is closed after
/// mapping (the mapping keeps the pages alive); `Drop` unmaps.
#[cfg(unix)]
pub struct MmapMap {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE — immutable shared bytes,
// like a leaked &'static [u8].
#[cfg(unix)]
unsafe impl Send for MmapMap {}
#[cfg(unix)]
unsafe impl Sync for MmapMap {}

#[cfg(unix)]
impl MmapMap {
    /// Maps `path` read-only.
    pub fn open(path: &Path) -> io::Result<MmapMap> {
        use std::os::unix::io::AsRawFd;
        let f = File::open(path)?;
        let len = f.metadata()?.len() as usize;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "cannot map an empty artifact",
            ));
        }
        // SAFETY: fd is a freshly opened readable file, len is its size,
        // and we request a fresh private read-only mapping (addr = null).
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                f.as_raw_fd(),
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(MmapMap {
            ptr: ptr as *const u8,
            len,
        })
    }
}

#[cfg(unix)]
impl Drop for MmapMap {
    fn drop(&mut self) {
        // SAFETY: ptr/len describe exactly the mapping mmap returned.
        unsafe {
            sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

#[cfg(unix)]
impl ArtifactMap for MmapMap {
    fn bytes(&self) -> &[u8] {
        // SAFETY: the mapping is len bytes of readable memory for as long
        // as self lives.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    fn kind(&self) -> MapKind {
        MapKind::Mmap
    }
}

/// Opens `path` with the preferred strategy. `prefer_mmap` tries the
/// zero-copy map first and falls back to the heap on any mapping failure
/// (or off-unix); the second return value reports whether a fallback
/// happened, so callers can count it. A missing/unreadable file is an error
/// either way.
pub fn open_map(path: &Path, prefer_mmap: bool) -> io::Result<(Box<dyn ArtifactMap>, bool)> {
    #[cfg(unix)]
    if prefer_mmap {
        match MmapMap::open(path) {
            Ok(m) => return Ok((Box::new(m), false)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(e),
            Err(_) => return Ok((Box::new(HeapMap::read(path)?), true)),
        }
    }
    // heap: explicitly requested, or no zero-copy flavor on this platform
    let fell_back = prefer_mmap && cfg!(not(unix));
    Ok((Box::new(HeapMap::read(path)?), fell_back))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("gbm-artifact-map-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn heap_map_round_trips_bytes_with_aligned_base() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_001).collect();
        let path = tmp_file("heap", &data);
        let m = HeapMap::read(&path).unwrap();
        assert_eq!(m.bytes(), &data[..]);
        assert_eq!(m.kind(), MapKind::Heap);
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0, "8-byte aligned base");
        std::fs::remove_file(path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn mmap_map_serves_the_same_bytes() {
        let data: Vec<u8> = (0..9000u32).flat_map(|i| i.to_le_bytes()).collect();
        let path = tmp_file("mmap", &data);
        let m = MmapMap::open(&path).unwrap();
        assert_eq!(m.bytes(), &data[..]);
        assert_eq!(m.kind(), MapKind::Mmap);
        assert_eq!(m.bytes().as_ptr() as usize % 4096, 0, "page-aligned base");
        drop(m); // munmap must not blow up
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_map_prefers_mmap_and_errors_on_missing_files() {
        let data = vec![7u8; 4096];
        let path = tmp_file("open", &data);
        let (m, fell_back) = open_map(&path, true).unwrap();
        assert_eq!(m.bytes(), &data[..]);
        if cfg!(unix) {
            assert_eq!(m.kind(), MapKind::Mmap);
            assert!(!fell_back);
        } else {
            assert_eq!(m.kind(), MapKind::Heap);
            assert!(fell_back);
        }
        let (h, fell_back) = open_map(&path, false).unwrap();
        assert_eq!(h.kind(), MapKind::Heap);
        assert!(!fell_back, "asking for heap is not a fallback");
        std::fs::remove_file(&path).ok();
        assert!(open_map(&path, true).is_err(), "missing file is an error");
    }
}
