//! Typed failures for artifact encoding, mapping, and parsing. Corrupt or
//! foreign bytes must fail loudly and gracefully — a reader process polling
//! a publish directory sees half-written files as errors, never as panics
//! or silently wrong rankings.

use std::fmt;

/// Everything that can go wrong opening or validating an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem-level failure (open, read, map).
    Io(std::io::Error),
    /// The buffer ends before a required structure.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// Structurally invalid bytes (bad magic, inconsistent lengths,
    /// out-of-range indices).
    Malformed {
        /// What failed validation.
        what: String,
    },
    /// A crc32 mismatch in the header, TOC, or a payload section.
    Checksum {
        /// Which checksum failed.
        what: String,
    },
    /// A format version this reader does not speak.
    Version {
        /// The version the file claims.
        found: u32,
    },
    /// The file was written on a host with a different byte order; the
    /// zero-copy layout is native-endian by design and refuses to guess.
    Endian,
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io error: {e}"),
            ArtifactError::Truncated { what } => write!(f, "artifact truncated reading {what}"),
            ArtifactError::Malformed { what } => write!(f, "malformed artifact: {what}"),
            ArtifactError::Checksum { what } => write!(f, "artifact checksum mismatch: {what}"),
            ArtifactError::Version { found } => {
                write!(f, "unsupported artifact version {found}")
            }
            ArtifactError::Endian => write!(f, "artifact byte order does not match this host"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> ArtifactError {
        ArtifactError::Io(e)
    }
}
