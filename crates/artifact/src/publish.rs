//! The single-writer / multi-reader publish protocol.
//!
//! The writer checkpoints each generation to `artifact-<seq>.gbm` via the
//! only crash-safe file dance POSIX offers — write a temp file, `fsync` it,
//! `rename(2)` into place — then swings a `CURRENT` pointer file (itself
//! tmp→fsync→rename'd) at the new name. Readers poll `CURRENT`: because
//! both renames are atomic, a reader observes either the previous complete
//! generation or the next complete generation, never a torn file, no
//! matter where the writer dies. Sequence numbers are zero-padded to 20
//! digits so lexicographic directory order equals publish order (the same
//! convention as the v1 `snap-<seq>.gbms` snapshots).

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The pointer file naming the live artifact generation.
pub const CURRENT_FILE: &str = "CURRENT";

/// Artifact file extension.
pub const ARTIFACT_EXT: &str = "gbm";

/// `artifact-<seq, zero-padded>.gbm`.
pub fn artifact_file_name(seq: u64) -> String {
    format!("artifact-{seq:020}.{ARTIFACT_EXT}")
}

/// Inverse of [`artifact_file_name`]; `None` for foreign names.
pub fn parse_artifact_seq(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("artifact-")?.strip_suffix(".gbm")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn write_atomic(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<PathBuf> {
    let final_path = dir.join(name);
    let tmp = dir.join(format!("{name}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &final_path)?;
    Ok(final_path)
}

/// Publishes one generation: the artifact lands atomically, then `CURRENT`
/// swings to it. Returns the published artifact path. Killing the writer
/// at any point leaves readers on the previous complete generation.
pub fn publish_artifact(dir: &Path, seq: u64, bytes: &[u8]) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let name = artifact_file_name(seq);
    let path = write_atomic(dir, &name, bytes)?;
    write_atomic(dir, CURRENT_FILE, format!("{name}\n").as_bytes())?;
    // best-effort directory fsync so the renames themselves are durable
    #[cfg(unix)]
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(path)
}

/// Reads the `CURRENT` pointer: `Ok(None)` when no generation has ever
/// been published, `Ok(Some((seq, path)))` for the live one.
pub fn read_current(dir: &Path) -> io::Result<Option<(u64, PathBuf)>> {
    match fs::read_to_string(dir.join(CURRENT_FILE)) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
        Ok(s) => {
            let name = s.trim();
            match parse_artifact_seq(name) {
                Some(seq) => Ok(Some((seq, dir.join(name)))),
                None => Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("CURRENT names a non-artifact: {name:?}"),
                )),
            }
        }
    }
}

/// Removes published generations older than `keep_from` (by sequence),
/// returning how many files were deleted. Writers call this to bound disk
/// growth; a reader that raced onto a reaped generation simply re-polls
/// `CURRENT`.
pub fn reap_artifacts(dir: &Path, keep_from: u64) -> io::Result<usize> {
    let mut reaped = 0;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_artifact_seq(name) {
            if seq < keep_from && fs::remove_file(entry.path()).is_ok() {
                reaped += 1;
            }
        }
    }
    Ok(reaped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gbm-artifact-publish-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_names_sort_in_sequence_order_and_parse_back() {
        let names: Vec<String> = [1u64, 9, 10, 400, u64::MAX]
            .iter()
            .map(|&s| artifact_file_name(s))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names, "lexicographic = numeric");
        for (i, &seq) in [1u64, 9, 10, 400, u64::MAX].iter().enumerate() {
            assert_eq!(parse_artifact_seq(&names[i]), Some(seq));
        }
        assert_eq!(parse_artifact_seq("artifact-12.gbm"), None, "unpadded");
        assert_eq!(parse_artifact_seq("snap-00000000000000000001.gbms"), None);
        assert_eq!(parse_artifact_seq(CURRENT_FILE), None);
    }

    #[test]
    fn publish_then_read_current_tracks_the_latest_generation() {
        let dir = temp_dir("latest");
        assert_eq!(read_current(&dir).unwrap(), None);
        publish_artifact(&dir, 1, b"gen one").unwrap();
        let (seq, path) = read_current(&dir).unwrap().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(fs::read(&path).unwrap(), b"gen one");
        publish_artifact(&dir, 2, b"gen two").unwrap();
        let (seq, path) = read_current(&dir).unwrap().unwrap();
        assert_eq!(seq, 2);
        assert_eq!(fs::read(&path).unwrap(), b"gen two");
        // both generations still on disk until reaped
        assert!(dir.join(artifact_file_name(1)).exists());
        assert_eq!(reap_artifacts(&dir, 2).unwrap(), 1);
        assert!(!dir.join(artifact_file_name(1)).exists());
        assert!(dir.join(artifact_file_name(2)).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_garbage_current_file_is_a_typed_error() {
        let dir = temp_dir("garbage");
        fs::write(dir.join(CURRENT_FILE), "what even is this\n").unwrap();
        assert!(read_current(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stray_tmp_files_do_not_confuse_the_reader() {
        let dir = temp_dir("tmp");
        publish_artifact(&dir, 3, b"published").unwrap();
        // simulate a writer killed mid-publish of the next generation
        fs::write(dir.join(format!("{}.tmp", artifact_file_name(4))), b"torn").unwrap();
        fs::write(dir.join("CURRENT.tmp"), b"torn pointer").unwrap();
        let (seq, path) = read_current(&dir).unwrap().unwrap();
        assert_eq!(seq, 3);
        assert_eq!(fs::read(path).unwrap(), b"published");
        fs::remove_dir_all(&dir).ok();
    }
}
