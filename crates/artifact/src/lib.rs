//! # gbm-artifact
//!
//! The v2 zero-copy index artifact: the serving state of a sharded index —
//! f32 row matrices, int8 code mirrors, IVF cell tables — laid out in a
//! single file whose payload sections are page-aligned, length-prefixed,
//! and byte-for-byte in the layout the scan kernels consume. A reader
//! `mmap`s the file (or falls back to a heap read behind the same
//! [`ArtifactMap`] trait) and serves queries directly out of the mapping:
//! no decode, no copy, cold start bounded by page faults rather than
//! deserialization work.
//!
//! Three layers, bottom up:
//!
//! * [`map`]: how bytes enter the address space — a raw `mmap(2)` binding
//!   on unix, a portable aligned heap read everywhere, both behind
//!   [`ArtifactMap`] so serving code is strategy-blind.
//! * [`layout`]: the format itself — checksummed header + TOC,
//!   [`encode_artifact`] on the writer side, [`ArtifactView`] /
//!   [`resolve_shard`] for in-place typed access on the reader side.
//!   Opening checksums only the header and TOC; full payload verification
//!   is an explicit [`ArtifactView::verify`] pass.
//! * [`publish`]: the single-writer / multi-reader generation protocol —
//!   `artifact-<seq>.gbm` via tmp→fsync→rename plus a `CURRENT` pointer
//!   file, so readers polling the directory only ever observe complete
//!   generations.
//!
//! The crate is deliberately index-agnostic: it moves validated slices,
//! not index types. `gbm_serve::ReadOnlyIndex` owns the mapping and runs
//! the actual scans.

mod cast;

pub mod error;
pub mod layout;
pub mod map;
pub mod publish;

pub use error::ArtifactError;
pub use layout::{
    encode_artifact, resolve_shard, ArtifactIvf, ArtifactMeta, ArtifactQuant, ArtifactShard,
    ArtifactView, Section, SectionKind, ARTIFACT_MAGIC, ARTIFACT_VERSION, HEADER_LEN, PAGE_ALIGN,
};
#[cfg(unix)]
pub use map::MmapMap;
pub use map::{open_map, ArtifactMap, HeapMap, MapKind};
pub use publish::{
    artifact_file_name, parse_artifact_seq, publish_artifact, read_current, reap_artifacts,
    ARTIFACT_EXT, CURRENT_FILE,
};
