//! The v2 index artifact format: a fixed header, a checksummed table of
//! contents, and page-aligned, length-prefixed payload sections that are
//! the *serving* layout — row matrices, int8 code mirrors, and IVF cell
//! tables land in the file exactly as the scan kernels consume them, so a
//! reader maps the file and queries it with no decode and no copy.
//!
//! ```text
//! offset 0    magic "GBMART2\0" · version · endian mark · index meta
//!             · section count · last WAL seq · header crc32
//! offset 64   TOC: one 32-byte entry per section
//!             (kind, shard, offset, len, payload crc32) · TOC crc32
//! page edge   section 0 payload   (page-aligned, zero-padded to page)
//! page edge   section 1 payload
//! ...
//! ```
//!
//! Opening an artifact checksums only the header and TOC — O(sections),
//! independent of pool size — so cold start is bounded by page faults, not
//! deserialization. Full payload verification ([`ArtifactView::verify`]) is
//! a separate, explicit pass for writers and CI golden tests. The layout is
//! native-little-endian by construction; a byte-order mark turns foreign
//! files into a typed [`ArtifactError::Endian`] instead of silent garbage.

use crate::cast::cast_slice;
use crate::error::ArtifactError;
use gbm_store::codec::Writer;
use gbm_store::{crc32, PrecisionTag};

/// Leading magic: "GBMART2\0".
pub const ARTIFACT_MAGIC: [u8; 8] = *b"GBMART2\0";

/// Format version. v1 is the decode-style snapshot in `gbm-store`; the
/// page-aligned zero-copy layout starts the artifact line at 2.
pub const ARTIFACT_VERSION: u32 = 2;

/// Byte-order mark, read back with native endianness: a big-endian reader
/// sees `0x04030201` and refuses the file.
pub const ENDIAN_MARK: u32 = 0x0102_0304;

/// Payload section alignment: one page, so mapped sections start on page
/// boundaries and every in-place cast is trivially aligned.
pub const PAGE_ALIGN: usize = 4096;

/// Fixed header size; the TOC starts here.
pub const HEADER_LEN: usize = 64;

/// TOC entry size.
pub const TOC_ENTRY_LEN: usize = 32;

/// Section kinds. Per shard, `Ids`/`Rows` are always present (possibly
/// empty); the quant quadruple appears iff the shard carries an int8
/// mirror; the IVF quintuple iff its cell index is trained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionKind {
    /// Graph ids, `u64` per row.
    Ids = 1,
    /// Dense row-major `[n × hidden]` f32 embedding matrix.
    Rows = 2,
    /// Row-major `[n × hidden]` int8 code mirror.
    QuantCodes = 3,
    /// Per-row dequantization scales, f32.
    QuantScales = 4,
    /// Per-block max dequantization scale, f32 (the margin-cut bounds).
    QuantBlockScale = 5,
    /// Per-block max row L1 norm, f32.
    QuantBlockL1 = 6,
    /// Dense `[ncells × hidden]` f32 centroid matrix.
    IvfCentroids = 7,
    /// `‖centroid‖²` per cell, f32.
    IvfSqnorms = 8,
    /// CSR cell offsets, `ncells + 1` u32s.
    IvfOffsets = 9,
    /// CSR member row indices, u32 per row.
    IvfMembers = 10,
    /// Cell id per row, u32.
    IvfCellOf = 11,
}

impl SectionKind {
    fn from_u32(v: u32) -> Option<SectionKind> {
        Some(match v {
            1 => SectionKind::Ids,
            2 => SectionKind::Rows,
            3 => SectionKind::QuantCodes,
            4 => SectionKind::QuantScales,
            5 => SectionKind::QuantBlockScale,
            6 => SectionKind::QuantBlockL1,
            7 => SectionKind::IvfCentroids,
            8 => SectionKind::IvfSqnorms,
            9 => SectionKind::IvfOffsets,
            10 => SectionKind::IvfMembers,
            11 => SectionKind::IvfCellOf,
            _ => return None,
        })
    }
}

/// Index-level metadata carried in the fixed header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Shard count; sections are tagged `0..num_shards`.
    pub num_shards: usize,
    /// The index's configured encode batch (round-tripped for config
    /// fidelity, not used by reads).
    pub encode_batch: usize,
    /// Row width shared by every shard.
    pub hidden: usize,
    /// Scan precision the index was configured with.
    pub precision: PrecisionTag,
    /// WAL sequence the artifact is consistent with (the publish
    /// generation).
    pub last_seq: u64,
}

/// One parsed TOC entry: where a section's payload lives in the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Section {
    /// What the payload is.
    pub kind: SectionKind,
    /// Which shard it belongs to.
    pub shard: u32,
    /// Byte offset of the payload (a multiple of [`PAGE_ALIGN`]).
    pub offset: usize,
    /// Exact payload length in bytes (the length prefix; padding to the
    /// next page edge is not included).
    pub len: usize,
    /// crc32 of the payload bytes.
    pub crc: u32,
}

/// A shard's quantized mirror, as borrowed slices — the encoder's input
/// and, symmetrically, what a mapped artifact resolves back to.
#[derive(Clone, Copy, Debug)]
pub struct ArtifactQuant<'a> {
    /// Row-major `[n × hidden]` int8 codes.
    pub codes: &'a [i8],
    /// Per-row scales.
    pub scales: &'a [f32],
    /// Per-block max scale (margin-cut bound input).
    pub block_scale: &'a [f32],
    /// Per-block max row L1 norm.
    pub block_l1: &'a [f32],
}

/// A shard's trained IVF cell index in CSR form, as borrowed slices.
#[derive(Clone, Copy, Debug)]
pub struct ArtifactIvf<'a> {
    /// Dense `[ncells × hidden]` centroid matrix.
    pub centroids: &'a [f32],
    /// `‖centroid‖²` per cell.
    pub sqnorms: &'a [f32],
    /// CSR offsets, `ncells + 1` entries starting at 0.
    pub offsets: &'a [u32],
    /// CSR member row indices (cell `c` owns `members[offsets[c]..offsets[c+1]]`).
    pub members: &'a [u32],
    /// Cell id per row.
    pub cell_of: &'a [u32],
}

/// One shard's full serving state, as borrowed slices.
#[derive(Clone, Copy, Debug)]
pub struct ArtifactShard<'a> {
    /// Graph ids, one per row.
    pub ids: &'a [u64],
    /// Dense row-major `[n × hidden]` f32 rows.
    pub rows: &'a [f32],
    /// Int8 mirror, when the shard keeps one.
    pub quant: Option<ArtifactQuant<'a>>,
    /// Trained cell index, when present.
    pub ivf: Option<ArtifactIvf<'a>>,
}

fn align_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

fn precision_fields(p: PrecisionTag) -> (u32, u32, u32, u32) {
    match p {
        PrecisionTag::F32 => (0, 0, 0, 0),
        PrecisionTag::Int8 { widen } => (1, widen, 0, 0),
        PrecisionTag::Ivf {
            nprobe,
            widen,
            cells,
        } => (2, widen, nprobe, cells),
    }
}

fn precision_from_fields(
    tag: u32,
    widen: u32,
    nprobe: u32,
    cells: u32,
) -> Result<PrecisionTag, ArtifactError> {
    Ok(match tag {
        0 => PrecisionTag::F32,
        1 => PrecisionTag::Int8 { widen },
        2 => PrecisionTag::Ivf {
            nprobe,
            widen,
            cells,
        },
        _ => {
            return Err(ArtifactError::Malformed {
                what: format!("unknown precision tag {tag}"),
            })
        }
    })
}

/// Raw little-endian bytes of a typed slice (the writer-side copy; readers
/// never copy).
fn slice_bytes_u64(v: &[u64]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64_slice(v);
    w.into_bytes()
}

fn slice_bytes_f32(v: &[f32]) -> Vec<u8> {
    let mut w = Writer::new();
    w.f32_slice(v);
    w.into_bytes()
}

fn slice_bytes_u32(v: &[u32]) -> Vec<u8> {
    let mut w = Writer::new();
    for &x in v {
        w.u32(x);
    }
    w.into_bytes()
}

fn slice_bytes_i8(v: &[i8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.i8_slice(v);
    w.into_bytes()
}

/// Encodes an index into v2 artifact bytes. Panics on internally
/// inconsistent inputs (wrong matrix sizes) — the writer owns its data and
/// a mismatch is a bug, not an IO condition.
pub fn encode_artifact(meta: &ArtifactMeta, shards: &[ArtifactShard]) -> Vec<u8> {
    assert_eq!(shards.len(), meta.num_shards, "one entry per shard");
    assert!(meta.hidden > 0, "hidden must be positive");
    assert!(meta.num_shards > 0, "at least one shard");
    assert!(meta.num_shards <= u32::MAX as usize, "shard count fits u32");

    // materialize every section's payload bytes in file order
    let mut payloads: Vec<(SectionKind, u32, Vec<u8>)> = Vec::new();
    for (s, shard) in shards.iter().enumerate() {
        let n = shard.ids.len();
        assert_eq!(
            shard.rows.len(),
            n * meta.hidden,
            "shard {s}: rows must be a whole [n x hidden] matrix"
        );
        let s32 = s as u32;
        payloads.push((SectionKind::Ids, s32, slice_bytes_u64(shard.ids)));
        payloads.push((SectionKind::Rows, s32, slice_bytes_f32(shard.rows)));
        if let Some(q) = &shard.quant {
            assert_eq!(q.codes.len(), n * meta.hidden, "shard {s}: quant codes");
            assert_eq!(q.scales.len(), n, "shard {s}: quant scales");
            assert_eq!(
                q.block_scale.len(),
                q.block_l1.len(),
                "shard {s}: block bound arrays"
            );
            payloads.push((SectionKind::QuantCodes, s32, slice_bytes_i8(q.codes)));
            payloads.push((SectionKind::QuantScales, s32, slice_bytes_f32(q.scales)));
            payloads.push((
                SectionKind::QuantBlockScale,
                s32,
                slice_bytes_f32(q.block_scale),
            ));
            payloads.push((SectionKind::QuantBlockL1, s32, slice_bytes_f32(q.block_l1)));
        }
        if let Some(ivf) = &shard.ivf {
            let ncells = ivf.sqnorms.len();
            assert!(ncells > 0, "shard {s}: trained ivf has cells");
            assert_eq!(
                ivf.centroids.len(),
                ncells * meta.hidden,
                "shard {s}: centroid matrix"
            );
            assert_eq!(ivf.offsets.len(), ncells + 1, "shard {s}: csr offsets");
            assert_eq!(
                *ivf.offsets.last().unwrap() as usize,
                ivf.members.len(),
                "shard {s}: csr terminates at member count"
            );
            assert_eq!(ivf.members.len(), n, "shard {s}: every row in a cell");
            assert_eq!(ivf.cell_of.len(), n, "shard {s}: cell_of per row");
            payloads.push((
                SectionKind::IvfCentroids,
                s32,
                slice_bytes_f32(ivf.centroids),
            ));
            payloads.push((SectionKind::IvfSqnorms, s32, slice_bytes_f32(ivf.sqnorms)));
            payloads.push((SectionKind::IvfOffsets, s32, slice_bytes_u32(ivf.offsets)));
            payloads.push((SectionKind::IvfMembers, s32, slice_bytes_u32(ivf.members)));
            payloads.push((SectionKind::IvfCellOf, s32, slice_bytes_u32(ivf.cell_of)));
        }
    }

    // lay out: header · TOC · TOC crc, then each payload at a page edge
    let toc_end = HEADER_LEN + payloads.len() * TOC_ENTRY_LEN + 4;
    let mut offsets = Vec::with_capacity(payloads.len());
    let mut cursor = align_up(toc_end, PAGE_ALIGN);
    for (_, _, bytes) in &payloads {
        offsets.push(cursor);
        cursor = align_up(cursor + bytes.len(), PAGE_ALIGN);
    }

    let mut w = Writer::new();
    w.bytes(&ARTIFACT_MAGIC);
    w.u32(ARTIFACT_VERSION);
    w.u32(ENDIAN_MARK);
    w.u32(meta.num_shards as u32);
    w.u32(meta.encode_batch as u32);
    w.u32(meta.hidden as u32);
    let (tag, widen, nprobe, cells) = precision_fields(meta.precision);
    w.u32(tag);
    w.u32(widen);
    w.u32(nprobe);
    w.u32(cells);
    w.u32(payloads.len() as u32);
    w.u64(meta.last_seq);
    debug_assert_eq!(w.len(), 56);
    w.u32(0); // header crc, patched once the bytes are final
    w.u32(0); // reserved
    debug_assert_eq!(w.len(), HEADER_LEN);
    for (i, (kind, shard, bytes)) in payloads.iter().enumerate() {
        w.u32(*kind as u32);
        w.u32(*shard);
        w.u64(offsets[i] as u64);
        w.u64(bytes.len() as u64);
        w.u32(crc32(bytes));
        w.u32(0); // reserved
    }
    w.u32(0); // toc crc, patched once the bytes are final
    w.pad_to(PAGE_ALIGN);
    for (i, (_, _, bytes)) in payloads.iter().enumerate() {
        debug_assert_eq!(w.len(), offsets[i]);
        w.bytes(bytes);
        w.pad_to(PAGE_ALIGN);
    }

    let mut out = w.into_bytes();
    // patch the two structural crcs now that their input bytes are final
    let hc = crc32(&out[..56]);
    out[56..60].copy_from_slice(&hc.to_le_bytes());
    let tc = crc32(&out[HEADER_LEN..toc_end - 4]);
    out[toc_end - 4..toc_end].copy_from_slice(&tc.to_le_bytes());
    out
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// A parsed, structurally validated artifact over borrowed bytes. Parsing
/// checksums the header and TOC only; [`verify`](ArtifactView::verify)
/// checksums payloads on demand.
pub struct ArtifactView<'a> {
    bytes: &'a [u8],
    meta: ArtifactMeta,
    sections: Vec<Section>,
}

impl<'a> ArtifactView<'a> {
    /// Parses and validates the header and TOC.
    pub fn parse(bytes: &'a [u8]) -> Result<ArtifactView<'a>, ArtifactError> {
        if bytes.len() < HEADER_LEN {
            return Err(ArtifactError::Truncated { what: "header" });
        }
        if bytes[..8] != ARTIFACT_MAGIC {
            return Err(ArtifactError::Malformed {
                what: "bad magic (not a gbm artifact)".to_string(),
            });
        }
        let version = read_u32(bytes, 8);
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::Version { found: version });
        }
        // the one native-endian read: a foreign-order file (or host) fails
        // here before any payload is reinterpreted
        let endian = u32::from_ne_bytes(bytes[12..16].try_into().unwrap());
        if endian != ENDIAN_MARK {
            return Err(ArtifactError::Endian);
        }
        let header_crc = read_u32(bytes, 56);
        if crc32(&bytes[..56]) != header_crc {
            return Err(ArtifactError::Checksum {
                what: "header".to_string(),
            });
        }
        let num_shards = read_u32(bytes, 16) as usize;
        let encode_batch = read_u32(bytes, 20) as usize;
        let hidden = read_u32(bytes, 24) as usize;
        let precision = precision_from_fields(
            read_u32(bytes, 28),
            read_u32(bytes, 32),
            read_u32(bytes, 36),
            read_u32(bytes, 40),
        )?;
        let section_count = read_u32(bytes, 44) as usize;
        let last_seq = read_u64(bytes, 48);
        if num_shards == 0 || hidden == 0 {
            return Err(ArtifactError::Malformed {
                what: format!("degenerate header: {num_shards} shards, hidden {hidden}"),
            });
        }
        let toc_end = HEADER_LEN
            .checked_add(section_count.checked_mul(TOC_ENTRY_LEN).ok_or(
                ArtifactError::Malformed {
                    what: "section count overflows".to_string(),
                },
            )?)
            .and_then(|v| v.checked_add(4))
            .ok_or(ArtifactError::Malformed {
                what: "section count overflows".to_string(),
            })?;
        if bytes.len() < toc_end {
            return Err(ArtifactError::Truncated { what: "toc" });
        }
        let toc_crc = read_u32(bytes, toc_end - 4);
        if crc32(&bytes[HEADER_LEN..toc_end - 4]) != toc_crc {
            return Err(ArtifactError::Checksum {
                what: "toc".to_string(),
            });
        }
        let mut sections = Vec::with_capacity(section_count);
        for i in 0..section_count {
            let at = HEADER_LEN + i * TOC_ENTRY_LEN;
            let kind_raw = read_u32(bytes, at);
            let kind = SectionKind::from_u32(kind_raw).ok_or_else(|| ArtifactError::Malformed {
                what: format!("toc entry {i}: unknown section kind {kind_raw}"),
            })?;
            let shard = read_u32(bytes, at + 4);
            let offset = read_u64(bytes, at + 8) as usize;
            let len = read_u64(bytes, at + 16) as usize;
            let crc = read_u32(bytes, at + 24);
            if shard as usize >= num_shards {
                return Err(ArtifactError::Malformed {
                    what: format!("toc entry {i}: shard {shard} out of range"),
                });
            }
            if !offset.is_multiple_of(PAGE_ALIGN) {
                return Err(ArtifactError::Malformed {
                    what: format!("toc entry {i}: offset {offset} is not page-aligned"),
                });
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| ArtifactError::Malformed {
                    what: format!("toc entry {i}: section extent overflows"),
                })?;
            if end > bytes.len() {
                return Err(ArtifactError::Truncated {
                    what: "section payload",
                });
            }
            if sections
                .iter()
                .any(|e: &Section| e.kind == kind && e.shard == shard)
            {
                return Err(ArtifactError::Malformed {
                    what: format!("duplicate section {kind:?} for shard {shard}"),
                });
            }
            sections.push(Section {
                kind,
                shard,
                offset,
                len,
                crc,
            });
        }
        Ok(ArtifactView {
            bytes,
            meta: ArtifactMeta {
                num_shards,
                encode_batch,
                hidden,
                precision,
                last_seq,
            },
            sections,
        })
    }

    /// The header metadata.
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// The parsed TOC.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Consumes the view into its owned parse products, for holders that
    /// own the byte mapping separately (see
    /// [`resolve_shard`]).
    pub fn into_parts(self) -> (ArtifactMeta, Vec<Section>) {
        (self.meta, self.sections)
    }

    /// Checksums every payload section — the explicit full-integrity pass
    /// (writers after publish, golden tests, drills). Not run on open, so
    /// cold start stays O(sections) + page faults.
    pub fn verify(&self) -> Result<(), ArtifactError> {
        for e in &self.sections {
            let payload = &self.bytes[e.offset..e.offset + e.len];
            if crc32(payload) != e.crc {
                return Err(ArtifactError::Checksum {
                    what: format!("section {:?} shard {}", e.kind, e.shard),
                });
            }
        }
        Ok(())
    }

    /// Resolves shard `s` to typed in-place slices, with full structural
    /// validation (lengths, CSR shape, member ranges).
    pub fn shard(&self, s: usize) -> Result<ArtifactShard<'a>, ArtifactError> {
        resolve_shard(self.bytes, &self.meta, &self.sections, s)
    }
}

fn section_bytes<'a>(
    bytes: &'a [u8],
    sections: &[Section],
    kind: SectionKind,
    shard: usize,
) -> Option<&'a [u8]> {
    sections
        .iter()
        .find(|e| e.kind == kind && e.shard as usize == shard)
        .map(|e| &bytes[e.offset..e.offset + e.len])
}

/// Resolves one shard of a parsed artifact to borrowed typed slices,
/// validating every structural invariant the scan kernels rely on. The
/// free-function form lets an owner of the mapping hold `(meta, sections)`
/// without a self-referential view.
pub fn resolve_shard<'a>(
    bytes: &'a [u8],
    meta: &ArtifactMeta,
    sections: &[Section],
    s: usize,
) -> Result<ArtifactShard<'a>, ArtifactError> {
    if s >= meta.num_shards {
        return Err(ArtifactError::Malformed {
            what: format!("shard {s} out of range ({} shards)", meta.num_shards),
        });
    }
    let ids_raw =
        section_bytes(bytes, sections, SectionKind::Ids, s).ok_or(ArtifactError::Truncated {
            what: "ids section",
        })?;
    let rows_raw =
        section_bytes(bytes, sections, SectionKind::Rows, s).ok_or(ArtifactError::Truncated {
            what: "rows section",
        })?;
    let ids: &[u64] = cast_slice(ids_raw, "ids")?;
    let rows: &[f32] = cast_slice(rows_raw, "rows")?;
    let n = ids.len();
    if rows.len() != n * meta.hidden {
        return Err(ArtifactError::Malformed {
            what: format!(
                "shard {s}: {} row f32s for {n} ids at hidden {}",
                rows.len(),
                meta.hidden
            ),
        });
    }

    let quant = match section_bytes(bytes, sections, SectionKind::QuantCodes, s) {
        None => None,
        Some(codes_raw) => {
            let take = |kind, what: &'static str| {
                section_bytes(bytes, sections, kind, s).ok_or(ArtifactError::Truncated { what })
            };
            let codes: &[i8] = cast_slice(codes_raw, "quant codes")?;
            let scales: &[f32] = cast_slice(
                take(SectionKind::QuantScales, "quant scales")?,
                "quant scales",
            )?;
            let block_scale: &[f32] = cast_slice(
                take(SectionKind::QuantBlockScale, "quant block scales")?,
                "quant block scales",
            )?;
            let block_l1: &[f32] = cast_slice(
                take(SectionKind::QuantBlockL1, "quant block l1s")?,
                "quant block l1s",
            )?;
            if codes.len() != n * meta.hidden || scales.len() != n {
                return Err(ArtifactError::Malformed {
                    what: format!("shard {s}: quant mirror does not cover its {n} rows"),
                });
            }
            if block_scale.len() != block_l1.len() {
                return Err(ArtifactError::Malformed {
                    what: format!("shard {s}: block bound arrays disagree"),
                });
            }
            Some(ArtifactQuant {
                codes,
                scales,
                block_scale,
                block_l1,
            })
        }
    };

    let ivf = match section_bytes(bytes, sections, SectionKind::IvfCentroids, s) {
        None => None,
        Some(cent_raw) => {
            let take = |kind, what: &'static str| {
                section_bytes(bytes, sections, kind, s).ok_or(ArtifactError::Truncated { what })
            };
            let centroids: &[f32] = cast_slice(cent_raw, "ivf centroids")?;
            let sqnorms: &[f32] =
                cast_slice(take(SectionKind::IvfSqnorms, "ivf sqnorms")?, "ivf sqnorms")?;
            let offsets: &[u32] =
                cast_slice(take(SectionKind::IvfOffsets, "ivf offsets")?, "ivf offsets")?;
            let members: &[u32] =
                cast_slice(take(SectionKind::IvfMembers, "ivf members")?, "ivf members")?;
            let cell_of: &[u32] =
                cast_slice(take(SectionKind::IvfCellOf, "ivf cell_of")?, "ivf cell_of")?;
            let ncells = sqnorms.len();
            let shape_ok = ncells > 0
                && centroids.len() == ncells * meta.hidden
                && offsets.len() == ncells + 1
                && offsets[0] == 0
                && offsets.windows(2).all(|w| w[0] <= w[1])
                && *offsets.last().unwrap() as usize == members.len()
                && members.len() == n
                && cell_of.len() == n;
            if !shape_ok {
                return Err(ArtifactError::Malformed {
                    what: format!("shard {s}: ivf csr shape is inconsistent"),
                });
            }
            if members.iter().any(|&m| m as usize >= n)
                || cell_of.iter().any(|&c| c as usize >= ncells)
            {
                return Err(ArtifactError::Malformed {
                    what: format!("shard {s}: ivf indices out of range"),
                });
            }
            Some(ArtifactIvf {
                centroids,
                sqnorms,
                offsets,
                members,
                cell_of,
            })
        }
    };

    Ok(ArtifactShard {
        ids,
        rows,
        quant,
        ivf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{ArtifactMap, HeapMap};

    fn sample_meta() -> ArtifactMeta {
        ArtifactMeta {
            num_shards: 2,
            encode_batch: 8,
            hidden: 3,
            precision: PrecisionTag::Ivf {
                nprobe: 2,
                widen: 3,
                cells: 0,
            },
            last_seq: 41,
        }
    }

    /// Two shards: one with quant + ivf, one bare (rows only).
    fn sample_bytes() -> Vec<u8> {
        let meta = sample_meta();
        let ids0: Vec<u64> = vec![10, 11, 12];
        let rows0: Vec<f32> = (0..9).map(|i| i as f32 * 0.5 - 2.0).collect();
        let codes0: Vec<i8> = (0..9).map(|i| (i * 13 % 255) as i8).collect();
        let scales0 = vec![0.1f32, 0.2, 0.3];
        let block_scale0 = vec![0.3f32];
        let block_l10 = vec![6.0f32];
        let centroids0: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let sqnorms0 = vec![5.0f32, 50.0];
        let offsets0 = vec![0u32, 2, 3];
        let members0 = vec![0u32, 2, 1];
        let cell_of0 = vec![0u32, 1, 0];
        let ids1: Vec<u64> = vec![99];
        let rows1 = vec![1.0f32, -1.0, 0.5];
        let shards = [
            ArtifactShard {
                ids: &ids0,
                rows: &rows0,
                quant: Some(ArtifactQuant {
                    codes: &codes0,
                    scales: &scales0,
                    block_scale: &block_scale0,
                    block_l1: &block_l10,
                }),
                ivf: Some(ArtifactIvf {
                    centroids: &centroids0,
                    sqnorms: &sqnorms0,
                    offsets: &offsets0,
                    members: &members0,
                    cell_of: &cell_of0,
                }),
            },
            ArtifactShard {
                ids: &ids1,
                rows: &rows1,
                quant: None,
                ivf: None,
            },
        ];
        encode_artifact(&meta, &shards)
    }

    #[test]
    fn encode_parse_round_trips_meta_and_sections() {
        let bytes = sample_bytes();
        assert_eq!(bytes.len() % PAGE_ALIGN, 0, "file is page-padded");
        let map = HeapMap::from_bytes(&bytes);
        let view = ArtifactView::parse(map.bytes()).unwrap();
        assert_eq!(*view.meta(), sample_meta());
        view.verify().unwrap();
        // every section sits on a page edge
        for e in view.sections() {
            assert_eq!(e.offset % PAGE_ALIGN, 0, "{:?}", e.kind);
        }
        let s0 = view.shard(0).unwrap();
        assert_eq!(s0.ids, &[10, 11, 12]);
        assert_eq!(s0.rows.len(), 9);
        assert_eq!(s0.rows[3], -0.5);
        let q = s0.quant.unwrap();
        assert_eq!(q.scales, &[0.1, 0.2, 0.3]);
        assert_eq!(q.block_l1, &[6.0]);
        let ivf = s0.ivf.unwrap();
        assert_eq!(ivf.offsets, &[0, 2, 3]);
        assert_eq!(ivf.members, &[0, 2, 1]);
        let s1 = view.shard(1).unwrap();
        assert_eq!(s1.ids, &[99]);
        assert!(s1.quant.is_none() && s1.ivf.is_none());
        assert!(view.shard(2).is_err(), "shard index is range-checked");
    }

    #[test]
    fn empty_shards_round_trip_as_zero_length_sections() {
        let meta = ArtifactMeta {
            num_shards: 2,
            encode_batch: 4,
            hidden: 5,
            precision: PrecisionTag::F32,
            last_seq: 0,
        };
        let shards = [
            ArtifactShard {
                ids: &[],
                rows: &[],
                quant: None,
                ivf: None,
            },
            ArtifactShard {
                ids: &[7],
                rows: &[0.0, 1.0, 2.0, 3.0, 4.0],
                quant: None,
                ivf: None,
            },
        ];
        let bytes = encode_artifact(&meta, &shards);
        let map = HeapMap::from_bytes(&bytes);
        let view = ArtifactView::parse(map.bytes()).unwrap();
        view.verify().unwrap();
        let s0 = view.shard(0).unwrap();
        assert!(s0.ids.is_empty() && s0.rows.is_empty());
        let s1 = view.shard(1).unwrap();
        assert_eq!(s1.ids, &[7]);
    }

    #[test]
    fn corruption_is_detected_where_it_matters() {
        let good = sample_bytes();
        // magic
        let mut b = good.clone();
        b[0] ^= 1;
        assert!(matches!(
            ArtifactView::parse(HeapMap::from_bytes(&b).bytes()),
            Err(ArtifactError::Malformed { .. })
        ));
        // version
        let mut b = good.clone();
        b[8] = 9;
        // header crc covers the version field, so either error is fine —
        // but the version check runs first by design
        assert!(matches!(
            ArtifactView::parse(HeapMap::from_bytes(&b).bytes()),
            Err(ArtifactError::Version { found: 9 })
        ));
        // endian mark
        let mut b = good.clone();
        b[12..16].copy_from_slice(&ENDIAN_MARK.to_be_bytes());
        assert!(matches!(
            ArtifactView::parse(HeapMap::from_bytes(&b).bytes()),
            Err(ArtifactError::Endian)
        ));
        // header field flip → header crc
        let mut b = good.clone();
        b[20] ^= 0x40;
        assert!(matches!(
            ArtifactView::parse(HeapMap::from_bytes(&b).bytes()),
            Err(ArtifactError::Checksum { .. })
        ));
        // toc flip → toc crc
        let mut b = good.clone();
        b[HEADER_LEN + 9] ^= 1;
        assert!(matches!(
            ArtifactView::parse(HeapMap::from_bytes(&b).bytes()),
            Err(ArtifactError::Checksum { .. })
        ));
        // payload flip → parse succeeds (lazy), verify() catches it
        let map = HeapMap::from_bytes(&good);
        let view = ArtifactView::parse(map.bytes()).unwrap();
        for e in view.sections().to_vec() {
            if e.len == 0 {
                continue;
            }
            let mut b = good.clone();
            b[e.offset] ^= 0x10;
            let m = HeapMap::from_bytes(&b);
            let v = ArtifactView::parse(m.bytes()).unwrap();
            assert!(
                matches!(v.verify(), Err(ArtifactError::Checksum { .. })),
                "flip in {:?} shard {} undetected",
                e.kind,
                e.shard
            );
        }
        // truncation mid-payload
        let m = HeapMap::from_bytes(&good[..good.len() - PAGE_ALIGN]);
        assert!(ArtifactView::parse(m.bytes()).is_err());
    }

    #[test]
    fn inconsistent_ivf_indices_are_malformed_not_panics() {
        let meta = ArtifactMeta {
            num_shards: 1,
            encode_batch: 1,
            hidden: 2,
            precision: PrecisionTag::F32,
            last_seq: 0,
        };
        let ids = [1u64, 2];
        let rows = [0.0f32, 1.0, 2.0, 3.0];
        // member index 9 is out of range for a 2-row shard
        let shards = [ArtifactShard {
            ids: &ids,
            rows: &rows,
            quant: None,
            ivf: Some(ArtifactIvf {
                centroids: &[0.0, 0.0],
                sqnorms: &[0.0],
                offsets: &[0, 2],
                members: &[0, 9],
                cell_of: &[0, 0],
            }),
        }];
        let bytes = encode_artifact(&meta, &shards);
        let map = HeapMap::from_bytes(&bytes);
        let view = ArtifactView::parse(map.bytes()).unwrap();
        assert!(matches!(
            view.shard(0),
            Err(ArtifactError::Malformed { .. })
        ));
    }
}
