//! Checked zero-copy reinterpretation of mapped bytes as typed slices.
//!
//! The artifact format lays every payload section out at a page-aligned
//! offset in the file, and both map flavors guarantee at least 8-byte base
//! alignment, so a section's bytes can be viewed as `&[u64]` / `&[f32]` /
//! `&[u32]` / `&[i8]` in place. The casts here still *verify* alignment and
//! size divisibility at runtime — a malformed TOC downgrades to a typed
//! error instead of undefined behavior.

use crate::error::ArtifactError;

mod sealed {
    /// Types a section may be reinterpreted as: fixed-size, no padding, any
    /// bit pattern valid.
    pub trait Pod: Copy {}
    impl Pod for u8 {}
    impl Pod for i8 {}
    impl Pod for u32 {}
    impl Pod for u64 {}
    impl Pod for f32 {}
}

pub(crate) use sealed::Pod;

/// Reinterprets `bytes` as a slice of `T` without copying. Errors when the
/// byte length is not a whole number of elements or the pointer is not
/// aligned for `T`.
pub(crate) fn cast_slice<'a, T: Pod>(
    bytes: &'a [u8],
    what: &'static str,
) -> Result<&'a [T], ArtifactError> {
    let size = std::mem::size_of::<T>();
    if !bytes.len().is_multiple_of(size) {
        return Err(ArtifactError::Malformed {
            what: format!("{what}: {} bytes is not a whole element count", bytes.len()),
        });
    }
    if bytes.is_empty() {
        return Ok(&[]);
    }
    let ptr = bytes.as_ptr();
    if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
        return Err(ArtifactError::Malformed {
            what: format!("{what}: section is not aligned for its element type"),
        });
    }
    // SAFETY: `T: Pod` means any bit pattern is a valid `T` with no padding;
    // length divisibility and pointer alignment were checked above; the
    // returned lifetime is tied to `bytes`.
    Ok(unsafe { std::slice::from_raw_parts(ptr as *const T, bytes.len() / size) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn casts_aligned_bytes_in_place() {
        // Vec<u64> guarantees 8-byte alignment for the backing buffer.
        let backing: Vec<u64> = vec![0x0807_0605_0403_0201, 0x1817_1615_1413_1211];
        let bytes =
            unsafe { std::slice::from_raw_parts(backing.as_ptr() as *const u8, backing.len() * 8) };
        let u64s: &[u64] = cast_slice(bytes, "u64s").unwrap();
        assert_eq!(u64s, &backing[..]);
        let u32s: &[u32] = cast_slice(bytes, "u32s").unwrap();
        assert_eq!(u32s.len(), 4);
        assert_eq!(u32s[0], 0x0403_0201);
        let i8s: &[i8] = cast_slice(bytes, "i8s").unwrap();
        assert_eq!(i8s.len(), 16);
        assert_eq!(i8s[0], 1);
    }

    #[test]
    fn rejects_partial_elements_and_misalignment() {
        let backing: Vec<u64> = vec![0, 0];
        let bytes =
            unsafe { std::slice::from_raw_parts(backing.as_ptr() as *const u8, backing.len() * 8) };
        assert!(matches!(
            cast_slice::<u64>(&bytes[..12], "short"),
            Err(ArtifactError::Malformed { .. })
        ));
        assert!(matches!(
            cast_slice::<u32>(&bytes[1..13], "offset"),
            Err(ArtifactError::Malformed { .. })
        ));
        let empty: &[f32] = cast_slice(&bytes[..0], "empty").unwrap();
        assert!(empty.is_empty());
    }
}
