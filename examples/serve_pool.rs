//! The serving layer end to end: a sharded embedding index over a source
//! corpus, queries (decompiled binaries) coalescing through the batch
//! encoder, exact top-K cosine answers, and live pool updates.
//!
//! This is `examples/binary_search.rs` rebuilt on `gbm-serve`: instead of a
//! monolithic `EmbeddingStore` + full per-query scan, candidates live in a
//! [`ShardedIndex`] (stable-hash partitioning, batched encode) and query
//! graphs flow through an [`EncodeCoalescer`] — one disjoint-union forward
//! per flush, per-row results by ticket. The `serve_query` bench measures
//! the speedup; this example shows the moving parts.
//!
//! ```text
//! cargo run --release --example serve_pool
//! ```

use std::sync::Arc;

use gbm_nn::{encode_graph, EncodedGraph, GraphBinMatch, GraphBinMatchConfig};
use gbm_progml::{build_graph, NodeTextMode};
use gbm_serve::{
    CoalescerConfig, EncodeCoalescer, IndexConfig, ScanPrecision, Server, ServerConfig,
    ShardedIndex, VirtualClock,
};
use gbm_tokenizer::{Tokenizer, TokenizerConfig};
use graphbinmatch::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ── candidate corpus: 8 tasks × {MiniC, MiniJava} ───────────────────
    let tasks: Vec<usize> = (0..8).collect();
    let mut corpus: Vec<(String, Module)> = Vec::new();
    for &t in &tasks {
        for (lang, tag) in [(SourceLang::MiniC, "c"), (SourceLang::MiniJava, "java")] {
            let src = gbm_datasets::tasks::emit(
                t,
                lang,
                &mut gbm_datasets::style::Style::new(7 + t as u64),
            );
            let name = format!("{}.{tag}", gbm_datasets::tasks::TASK_NAMES[t]);
            corpus.push((
                name,
                Pipeline::compile_source(lang, &src).expect("task compiles"),
            ));
        }
    }

    // ── queries: three "unknown" optimized binaries, decompiled ─────────
    let query_tasks = [2usize, 5, 7];
    let unknowns: Vec<Module> = query_tasks
        .iter()
        .map(|&t| {
            let src = gbm_datasets::tasks::emit(
                t,
                SourceLang::MiniC,
                &mut gbm_datasets::style::Style::new(99 + t as u64),
            );
            let m = Pipeline::compile_source(SourceLang::MiniC, &src).unwrap();
            let obj = Pipeline::compile_to_binary(&m, Compiler::Gcc, OptLevel::O2).unwrap();
            Pipeline::decompile(&obj)
        })
        .collect();

    // shared tokenizer over everything the encoder will ever see
    let graphs: Vec<gbm_progml::ProgramGraph> = corpus
        .iter()
        .map(|(_, m)| build_graph(m))
        .chain(unknowns.iter().map(build_graph))
        .collect();
    let refs: Vec<&gbm_progml::ProgramGraph> = graphs.iter().collect();
    let tok = Tokenizer::train_on_graphs(&refs, NodeTextMode::FullText, TokenizerConfig::default());
    let encoded: Vec<EncodedGraph> = graphs
        .iter()
        .map(|g| encode_graph(g, &tok, NodeTextMode::FullText))
        .collect();
    let (cand_graphs, query_graphs) = encoded.split_at(corpus.len());

    let mut rng = StdRng::seed_from_u64(0);
    let model = GraphBinMatch::new(GraphBinMatchConfig::small(tok.vocab_size()), &mut rng);

    // ── the index: 4 hash shards, batched encode ────────────────────────
    let mut index = ShardedIndex::build(
        &model,
        cand_graphs,
        IndexConfig {
            num_shards: 4,
            encode_batch: 8,
            ..Default::default()
        },
    );
    println!(
        "indexed {} candidates over {} shards (sizes {:?}), {} encoder forwards",
        index.num_encoded(),
        index.num_shards(),
        index.shard_sizes(),
        model.encoder().forward_count()
    );

    // ── queries coalesce: 3 requests, ONE batched forward ───────────────
    let clock = VirtualClock::new();
    let mut coalescer = EncodeCoalescer::new(CoalescerConfig {
        max_batch: 8,
        max_wait: 2,
    });
    let tickets: Vec<_> = query_graphs
        .iter()
        .map(|g| coalescer.submit(&model, g.clone(), &clock))
        .collect();
    clock.advance(2); // the max_wait deadline passes…
    coalescer.pump(&model, &clock); // …and the timer flush fires
    println!(
        "\ncoalesced {} queries into {} batched forward(s) (mean fill {:.1})",
        coalescer.stats().encoded,
        coalescer.stats().flushes,
        coalescer.stats().mean_batch_fill()
    );

    for (qi, t) in tickets.into_iter().enumerate() {
        let emb = coalescer.poll(t).expect("flushed");
        let top = index.query(emb.data(), 3);
        println!(
            "\ntop-3 for unknown binary of task {} (truth: {}):",
            query_tasks[qi],
            corpus[query_tasks[qi] * 2].0
        );
        for (rank, (id, score)) in top.iter().enumerate() {
            println!(
                "  {:>2}. {:<24} cosine {score:.3}",
                rank + 1,
                corpus[*id as usize].0
            );
        }
    }

    // ── the pool is live: insert a fresh solution, retire an old one ────
    let new_src = gbm_datasets::tasks::emit(
        2,
        SourceLang::MiniJava,
        &mut gbm_datasets::style::Style::new(123),
    );
    let new_mod = Pipeline::compile_source(SourceLang::MiniJava, &new_src).unwrap();
    let new_graph = encode_graph(&build_graph(&new_mod), &tok, NodeTextMode::FullText);
    let new_id = corpus.len() as u64;
    index.insert(&model, new_id, new_graph);
    index.flush(&model); // pending batch → one batched forward
    index.remove(0);
    println!(
        "\nafter insert+remove: {} candidates (shard sizes {:?})",
        index.num_encoded(),
        index.shard_sizes()
    );
    // ── int8 scans: same answers, a quarter of the scan footprint ───────
    let int8_index = ShardedIndex::build(
        &model,
        cand_graphs,
        IndexConfig {
            num_shards: 4,
            encode_batch: 8,
            precision: ScanPrecision::Int8 { widen: 2 },
            ..Default::default()
        },
    );
    let f32_index = ShardedIndex::build(
        &model,
        cand_graphs,
        IndexConfig {
            num_shards: 4,
            encode_batch: 8,
            ..Default::default()
        },
    );
    let probe = model.replica().encoder().embed(&query_graphs[0]);
    assert_eq!(
        int8_index.query(probe.data(), 5),
        f32_index.query(probe.data(), 5),
        "int8 coarse scan + exact f32 re-rank returns the identical ranking"
    );
    println!(
        "\nint8 scan precision: identical top-5, scan footprint {} B vs {} B f32 ({:.1}x)",
        int8_index.scan_bytes(),
        f32_index.scan_bytes(),
        f32_index.scan_bytes() as f64 / int8_index.scan_bytes() as f64
    );

    // ── the concurrent server is instrumented end to end ────────────────
    // Replay the three queries through a `Server` over the same pool and
    // end on the gbm-obs registry exposition — the per-query scan work,
    // merge latency, and query counters the serving stack reports for free.
    let rows: Vec<f32> = (0..corpus.len() as u64)
        .flat_map(|id| {
            f32_index
                .embedding(id)
                .expect("candidate is indexed")
                .data()
                .to_vec()
        })
        .collect();
    let server = Server::from_rows(
        &rows,
        f32_index.hidden(),
        ServerConfig {
            scan_workers: 2,
            index: IndexConfig {
                num_shards: 4,
                ..Default::default()
            },
            ..Default::default()
        },
        Arc::new(VirtualClock::new()),
    );
    for g in query_graphs {
        let emb = model.replica().encoder().embed(g);
        let _ = server.query(emb.data(), 3);
    }
    let snapshot = server.metrics();
    server.shutdown();
    println!("\n--- server metrics exposition (text format) ---");
    print!("{}", snapshot.to_text());

    println!("\n(untrained model — scores are illustrative; contrastively-trained");
    println!(" models make this cosine ranking the real retrieval path)");
}
