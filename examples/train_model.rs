//! Trains a GraphBinMatch model on the synthetic CLCDSA dataset and reports
//! held-out precision/recall/F1 — the core experiment of the paper, scaled
//! to run in about a minute.
//!
//! ```text
//! cargo run --release --example train_model
//! ```

use gbm_binary::{Compiler, OptLevel};
use gbm_eval::{run_experiment, ExperimentSpec, HarnessConfig};
use gbm_frontends::SourceLang;

fn main() {
    // cross-language binary-source matching: MiniC binaries vs MiniJava source
    let spec = ExperimentSpec::cross_language(
        SourceLang::MiniC,
        SourceLang::MiniJava,
        Compiler::Clang,
        OptLevel::Oz,
    );
    let mut cfg = HarnessConfig::quick();
    cfg.epochs = 6;
    cfg.num_tasks = 8;

    println!("generating dataset, compiling, decompiling, building graphs…");
    let result = run_experiment(&spec, &cfg);

    println!("\ntraining curve:");
    for (i, s) in result.train_stats.iter().enumerate() {
        println!(
            "  epoch {:>2}: loss {:.4}  train-acc {:.2}",
            i + 1,
            s.loss,
            s.accuracy
        );
    }
    println!("\ntest-set results (threshold 0.5):");
    for m in &result.methods {
        println!(
            "  {:<22} P={:.2} R={:.2} F1={:.2}",
            m.method, m.prf.precision, m.prf.recall, m.prf.f1
        );
    }
}
