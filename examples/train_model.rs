//! Trains a GraphBinMatch model on the synthetic CLCDSA dataset and reports
//! held-out precision/recall/F1 plus ranked-retrieval quality — the core
//! experiment of the paper, scaled to run in about a minute.
//!
//! ```text
//! cargo run --release --example train_model
//! GBM_OBJECTIVE=infonce cargo run --release --example train_model
//! ```
//!
//! `GBM_OBJECTIVE` selects the training objective: `bce` (the paper's
//! pairwise loss, the default), `triplet[:margin]`, or
//! `infonce[:temperature]` (XLIR-style contrastive losses over the batch
//! embedding matrix). Invalid values warn and fall back to BCE.

use gbm_binary::{Compiler, OptLevel};
use gbm_eval::{run_experiment, ExperimentSpec, HarnessConfig};
use gbm_frontends::SourceLang;
use gbm_nn::{Scoring, TrainObjective};

fn objective_from_env() -> TrainObjective {
    match std::env::var("GBM_OBJECTIVE") {
        Err(_) => TrainObjective::PairwiseBce,
        Ok(raw) => raw.parse().unwrap_or_else(|e| {
            eprintln!("warning: ignoring invalid GBM_OBJECTIVE ({e}); using bce");
            TrainObjective::PairwiseBce
        }),
    }
}

fn main() {
    // cross-language binary-source matching: MiniC binaries vs MiniJava source
    let spec = ExperimentSpec::cross_language(
        SourceLang::MiniC,
        SourceLang::MiniJava,
        Compiler::Clang,
        OptLevel::Oz,
    );
    let mut cfg = HarnessConfig::quick();
    cfg.epochs = 6;
    cfg.num_tasks = 8;
    cfg.objective = objective_from_env();

    println!("objective: {}", cfg.objective);
    println!("generating dataset, compiling, decompiling, building graphs…");
    let result = run_experiment(&spec, &cfg);

    println!("\ntraining curve:");
    for (i, s) in result.train_stats.iter().enumerate() {
        println!(
            "  epoch {:>2}: loss {:.4}  train-acc {:.2}",
            i + 1,
            s.loss,
            s.accuracy
        );
    }
    println!("\ntest-set results:");
    for m in &result.methods {
        println!(
            "  {:<22} P={:.2} R={:.2} F1={:.2} (thr {:.2})",
            m.method, m.prf.precision, m.prf.recall, m.prf.f1, m.threshold
        );
    }
    println!(
        "\nretrieval ({} queries over {} candidates, ranked by {}):",
        result.retrieval.num_queries,
        result.retrieval.num_candidates,
        match result.objective.scoring() {
            Scoring::Cosine => "embedding cosine",
            Scoring::Head => "matching head",
        }
    );
    println!("  MRR {:.3}", result.retrieval.mrr);
    for &(k, v) in &result.retrieval.recall_at {
        println!("  recall@{k} {v:.3}");
    }
}
