//! Reverse-engineering scenario from the paper's introduction: given an
//! unknown binary, retrieve the most similar *source* file from a corpus —
//! so an analyst can read source instead of decompiled soup.
//!
//! ```text
//! cargo run --release --example reverse_engineering
//! ```

use gbm_datasets::{clcdsa, DatasetConfig};
use gbm_frontends::SourceLang;
use graphbinmatch::prelude::*;

fn main() {
    // a small source corpus: solutions to several tasks in both languages
    let ds = clcdsa(DatasetConfig {
        num_tasks: 6,
        solutions_per_task: 2,
        seed: 11,
    });
    println!("source corpus: {} files", ds.solutions.len());

    // the "unknown binary": one MiniC solution compiled at O2 and stripped
    // of its source identity (we only keep the object file)
    let target_idx = ds
        .solutions
        .iter()
        .position(|s| s.lang == SourceLang::MiniC && s.task == 3)
        .expect("corpus has a task-3 C solution");
    let target_task = ds.solutions[target_idx].task;
    let binary = Pipeline::compile_to_binary(
        &ds.solutions[target_idx].module,
        Compiler::Gcc,
        OptLevel::O2,
    )
    .expect("compiles");
    let lifted = Pipeline::decompile(&binary);
    println!(
        "unknown binary: {} bytes, decompiles to {} IR instructions",
        binary.code_bytes(),
        lifted.num_insts()
    );

    // rank every corpus source against the decompiled binary
    let corpus_modules: Vec<&Module> = ds.solutions.iter().map(|s| &s.module).collect();
    let mut all: Vec<&Module> = corpus_modules.clone();
    all.push(&lifted);
    let mut pipeline = Pipeline::fit_tokenizer(&all);

    let mut ranked: Vec<(usize, f32)> = (0..ds.solutions.len())
        .map(|i| (i, pipeline.score_pair(&lifted, &ds.solutions[i].module)))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("\ntop-5 retrieved sources (untrained model — rankings are illustrative):");
    for (rank, (i, score)) in ranked.iter().take(5).enumerate() {
        let s = &ds.solutions[*i];
        let marker = if s.task == target_task {
            "  <-- same task"
        } else {
            ""
        };
        println!(
            "  {}. score {:.3}  task={:<16} lang={}{}",
            rank + 1,
            score,
            gbm_datasets::tasks::TASK_NAMES[s.task],
            s.lang.name(),
            marker
        );
    }
    println!("\n(train the model as in train_model.rs to make retrieval reliable)");
}
