//! Demonstrates the compiler/optimization-level robustness setting behind
//! Table V: the same program compiled by two compiler personas at five
//! optimization levels, decompiled, and compared structurally.
//!
//! ```text
//! cargo run --release --example cross_compiler
//! ```

use graphbinmatch::prelude::*;

const SRC: &str = r#"
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps++;
    }
    return steps;
}
int main() { print(collatz(27)); return 0; }
"#;

fn main() {
    let m = Pipeline::compile_source(SourceLang::MiniC, SRC).expect("compiles");
    let src_graph = build_graph(&m);
    println!(
        "source IR: {} insts, graph {} nodes / {} edges\n",
        m.num_insts(),
        src_graph.num_nodes(),
        src_graph.num_edges()
    );

    println!(
        "{:<9} {:<6} {:>11} {:>12} {:>11} {:>11}",
        "compiler", "level", "code bytes", "lifted insts", "graph nodes", "graph edges"
    );
    println!("{}", "-".repeat(66));
    for compiler in [Compiler::Clang, Compiler::Gcc] {
        for level in OptLevel::ALL {
            let obj = Pipeline::compile_to_binary(&m, compiler, level).expect("compiles");
            let lifted = Pipeline::decompile(&obj);
            let g = build_graph(&lifted);
            println!(
                "{:<9} {:<6} {:>11} {:>12} {:>11} {:>11}",
                compiler.name(),
                level.name(),
                obj.code_bytes(),
                lifted.num_insts(),
                g.num_nodes(),
                g.num_edges()
            );
        }
    }
    println!(
        "\nhigher optimization restructures the binary further from the source\n\
         (and gcc output decompiles larger than clang's — both observations\n\
         match the paper's Table V discussion)."
    );
}
