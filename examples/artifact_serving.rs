//! Multi-process serving with the v2 index artifact: a writer publishes
//! immutable generations (atomic tmp → fsync → rename, then a `CURRENT`
//! pointer swing), readers `mmap` the current generation and serve top-K
//! queries straight out of the mapping — no decode, no copy — and swap to
//! newer generations without dropping in-flight queries.
//!
//! Both roles run in this one process to keep the example self-contained;
//! `probe_artifact` runs the same protocol across real processes and kills
//! the writer mid-publish. The moving parts are identical:
//!
//! * writer: [`publish_index_artifact`] on a [`ShardedIndex`]
//! * reader: [`ArtifactReader`] (open `CURRENT`, `poll()` for newer
//!   generations, `current()` for an `Arc` that outlives any swap)
//!
//! ```text
//! cargo run --release --example artifact_serving
//! ```

use gbm_serve::{
    publish_index_artifact, ArtifactConfig, ArtifactReader, IndexConfig, ScanPrecision,
    ShardedIndex,
};

/// Deterministic pseudo-random rows in `[-1, 1)` — stand-ins for encoder
/// embeddings (see `examples/serve_pool.rs` for the real encode path).
fn synth_rows(n: usize, hidden: usize, mut state: u64) -> Vec<f32> {
    let mut rows = Vec::with_capacity(n * hidden);
    for _ in 0..n * hidden {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        rows.push(((z ^ (z >> 31)) % 2000) as f32 / 1000.0 - 1.0);
    }
    rows
}

fn main() {
    let hidden = 16;
    let dir = std::env::temp_dir().join(format!("gbm-artifact-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create artifact dir");

    // ── writer: build generation 1 and publish it ───────────────────────
    let cfg = IndexConfig {
        num_shards: 4,
        precision: ScanPrecision::Int8 { widen: 2 },
        ..Default::default()
    };
    let gen1 = ShardedIndex::from_rows(&synth_rows(200, hidden, 1), hidden, cfg);
    let path = publish_index_artifact(&gen1, &dir, 1).expect("publish generation 1");
    println!("writer : published generation 1 → {}", path.display());

    // ── reader: map CURRENT and serve from the mapping ──────────────────
    let reader = ArtifactReader::open(ArtifactConfig::new(&dir)).expect("open reader");
    let ro = reader.current();
    println!(
        "reader : generation {} mapped ({:?}, {} rows, {} shards) — cold start \
         is page faults, not decoding",
        reader.generation(),
        ro.map_kind(),
        ro.num_encoded(),
        ro.num_shards(),
    );
    let query = synth_rows(1, hidden, 99);
    let top = ro.query(&query, 3);
    println!("reader : top-3 = {top:?}");
    assert_eq!(
        top,
        gen1.query(&query, 3),
        "mapped rankings are bit-identical to the index that published them"
    );

    // ── writer: a new generation lands atomically ───────────────────────
    let mut rows2 = synth_rows(200, hidden, 1);
    rows2.extend_from_slice(&synth_rows(100, hidden, 2));
    let gen2 = ShardedIndex::from_rows(&rows2, hidden, cfg);
    publish_index_artifact(&gen2, &dir, 2).expect("publish generation 2");
    println!("writer : published generation 2 (pool grew to 300 rows)");

    // an "in-flight query" holds the old generation's Arc across the swap
    let in_flight = reader.current();
    let swapped = reader.poll().expect("poll");
    assert!(swapped, "reader observed the newer CURRENT");
    println!(
        "reader : swapped to generation {} — in-flight queries keep the old \
         mapping alive until they finish",
        reader.generation()
    );
    assert_eq!(in_flight.last_seq(), 1, "the held Arc still serves gen 1");
    assert_eq!(in_flight.query(&query, 3), gen1.query(&query, 3));
    assert_eq!(reader.current().query(&query, 3), gen2.query(&query, 3));
    println!("reader : old-Arc and new-generation answers both verified exact");

    let _ = std::fs::remove_dir_all(&dir);
    println!("done   : see probe_artifact for the cross-process writer-kill drill");
}
