//! Ranked binary→source search — the paper's headline workload. Given a
//! stripped binary, rank a corpus of candidate sources (here: both MiniC and
//! MiniJava solutions) by matching score and see whether the true origin
//! lands on top.
//!
//! Retrieval runs encode-once/score-many: every graph goes through the GNN
//! encoder exactly once, queries are ranked through the cheap matching head
//! over the cached embeddings.
//!
//! ```text
//! cargo run --release --example binary_search
//! ```

use gbm_eval::{rank_candidates, RetrievalConfig};
use gbm_nn::{encode_graph, EmbeddingStore, GraphBinMatch, GraphBinMatchConfig};
use gbm_progml::{build_graph, NodeTextMode};
use gbm_tokenizer::{Tokenizer, TokenizerConfig};
use graphbinmatch::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // a corpus of candidate sources drawn from the synthetic task library —
    // 6 tasks, one MiniC and one MiniJava solution each
    let tasks: Vec<usize> = (0..6).collect();
    let mut corpus: Vec<(String, Module)> = Vec::new();
    for &t in &tasks {
        for (lang, tag) in [(SourceLang::MiniC, "c"), (SourceLang::MiniJava, "java")] {
            let src = gbm_datasets::tasks::emit(
                t,
                lang,
                &mut gbm_datasets::style::Style::new(7 + t as u64),
            );
            let name = format!("{}.{tag}", gbm_datasets::tasks::TASK_NAMES[t]);
            corpus.push((
                name,
                Pipeline::compile_source(lang, &src).expect("task compiles"),
            ));
        }
    }

    // the "unknown" binary under analysis: task 2's MiniC solution, compiled
    // with a different style seed, optimized, and decompiled RetDec-style
    let query_task = 2usize;
    let unknown_src = gbm_datasets::tasks::emit(
        query_task,
        SourceLang::MiniC,
        &mut gbm_datasets::style::Style::new(99),
    );
    let unknown = Pipeline::compile_source(SourceLang::MiniC, &unknown_src).unwrap();
    let obj = Pipeline::compile_to_binary(&unknown, Compiler::Gcc, OptLevel::O2).unwrap();
    let lifted = Pipeline::decompile(&obj);

    // graphs + tokenizer over the whole pool, then one encoder pass per graph
    let graphs: Vec<gbm_progml::ProgramGraph> = corpus
        .iter()
        .map(|(_, m)| build_graph(m))
        .chain(std::iter::once(build_graph(&lifted)))
        .collect();
    let refs: Vec<&gbm_progml::ProgramGraph> = graphs.iter().collect();
    let tok = Tokenizer::train_on_graphs(&refs, NodeTextMode::FullText, TokenizerConfig::default());
    let pool: Vec<_> = graphs
        .iter()
        .map(|g| encode_graph(g, &tok, NodeTextMode::FullText))
        .collect();

    let mut rng = StdRng::seed_from_u64(0);
    let model = GraphBinMatch::new(GraphBinMatchConfig::small(tok.vocab_size()), &mut rng);
    let store = EmbeddingStore::build(&model, &pool);
    println!(
        "encoded {} graphs with {} encoder forwards (one each)\n",
        pool.len(),
        model.encoder().forward_count()
    );

    // rank all sources for the decompiled query (pool index = last)
    let query = pool.len() - 1;
    let candidates: Vec<usize> = (0..corpus.len()).collect();
    let ranking = rank_candidates(
        &model,
        &store,
        query,
        &candidates,
        &RetrievalConfig::default(),
    );

    println!(
        "ranked candidates for the unknown binary (truth: {}):",
        corpus[query_task * 2].0
    );
    for (rank, (c, score)) in ranking.iter().take(5).enumerate() {
        println!("  {:>2}. {:<24} score {score:.3}", rank + 1, corpus[*c].0);
    }
    println!("\n(untrained model — scores are illustrative; the table_retrieval");
    println!(" binary reports MRR/recall@k with a trained model)");
}
