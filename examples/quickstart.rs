//! Quickstart: score a (binary, source) pair end-to-end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Mirrors the paper's Fig. 1 workflow: a C-like program is compiled to a
//! binary and decompiled (RetDec-style); a Java-like program stays as source
//! IR; both become heterogeneous program graphs and a GraphBinMatch model
//! scores the pair.

use graphbinmatch::prelude::*;

fn main() {
    // Two solutions to the same task ("sum the first n integers"),
    // written in different languages.
    let c_source = r#"
int main() {
    int total = 0;
    for (int i = 1; i <= 10; i++) { total += i; }
    print(total);
    return 0;
}
"#;
    let java_source = r#"
class Main {
    public static void main(String[] args) {
        int sum = 0;
        int k = 1;
        while (k <= 10) { sum += k; k++; }
        System.out.println(sum);
    }
}
"#;

    // 1. front-ends
    let c_module = Pipeline::compile_source(SourceLang::MiniC, c_source).expect("C compiles");
    let j_module =
        Pipeline::compile_source(SourceLang::MiniJava, java_source).expect("Java compiles");
    println!("MiniC IR: {} instructions", c_module.num_insts());
    println!(
        "MiniJava IR: {} instructions (JLang-style runtime included)",
        j_module.num_insts()
    );

    // 2. binary side: compile the C program and decompile it
    let binary = Pipeline::compile_to_binary(&c_module, Compiler::Clang, OptLevel::Oz)
        .expect("binary compiles");
    println!("binary: {} bytes of VISA code", binary.code_bytes());
    let lifted = Pipeline::decompile(&binary);
    println!(
        "decompiled IR: {} instructions (type-degraded)",
        lifted.num_insts()
    );

    // 3. graphs
    let bin_graph = build_graph(&lifted);
    let src_graph = build_graph(&j_module);
    println!(
        "graphs: binary {} nodes / {} edges, source {} nodes / {} edges",
        bin_graph.num_nodes(),
        bin_graph.num_edges(),
        src_graph.num_nodes(),
        src_graph.num_edges()
    );

    // 4. score with a fresh (untrained) model — see train_model.rs for the
    //    full training loop that makes these scores meaningful
    let mut pipeline = Pipeline::fit_tokenizer(&[&lifted, &j_module]);
    let score = pipeline.score_pair(&lifted, &j_module);
    println!("untrained matching score: {score:.3} (train a model to calibrate it)");
}
