#!/usr/bin/env python3
"""Compare a fresh `encode_batch` bench run against the checked-in baseline.

Usage:
    cargo bench -p gbm-bench --bench encode_batch | tee bench_out.txt
    python3 scripts/check_bench_regression.py [--quick] bench_out.txt

Absolute times are machine-dependent, so the gate is on *ratios inside one
run*: for every config group, the speedup of the best batched variant
(`batched_b*` / `store_build`) over `per_graph_replica` (the PR 1 path) is
compared against the same speedup recorded in BENCH_encode_batch.json. A
fresh speedup more than REGRESSION_TOLERANCE worse than baseline fails the
check — that is the signal that batching stopped paying for itself, however
fast the host is.

`--quick` compares against the `quick_ms` baseline section (the CI smoke
run, `GBM_BENCH_SCALE=quick`); the default compares against `full_ms`.
"""

import json
import re
import sys
from pathlib import Path

REGRESSION_TOLERANCE = 0.20  # fail when a speedup degrades by more than 20%
BASELINE = Path(__file__).resolve().parent.parent / "BENCH_encode_batch.json"

ROW = re.compile(
    r"(?P<name>encode_batch_\w+/\S+)\s+time:\s+(?P<value>[0-9.]+)\s*(?P<unit>ms|µs|us)/iter"
)

UNIT_MS = {"ms": 1.0, "µs": 1e-3, "us": 1e-3}


def parse_run(text: str) -> dict:
    times = {}
    for m in ROW.finditer(text):
        times[m.group("name")] = float(m.group("value")) * UNIT_MS[m.group("unit")]
    return times


def speedups(times: dict) -> dict:
    """Per config group: time(per_graph_replica) / time(best batched)."""
    out = {}
    groups = {name.split("/")[0] for name in times}
    for g in sorted(groups):
        base = times.get(f"{g}/per_graph_replica")
        batched = [
            t
            for name, t in times.items()
            if name.startswith(f"{g}/")
            and ("batched_b" in name or name.endswith("store_build"))
        ]
        if base is None or not batched:
            continue
        out[g] = base / min(batched)
    return out


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--quick"]
    quick = "--quick" in sys.argv[1:]
    if len(args) != 1:
        print(__doc__)
        return 2
    run_text = Path(args[0]).read_text()
    fresh = parse_run(run_text)
    if not fresh:
        print("error: no bench rows found in input (expected 'group/name time: X ms/iter')")
        return 2

    baseline_doc = json.loads(BASELINE.read_text())
    section = "quick_ms" if quick else "full_ms"
    base_times = baseline_doc[section]

    fresh_sp = speedups(fresh)
    base_sp = speedups(base_times)

    print(f"{'config':<24} {'baseline':>9} {'fresh':>9}  verdict")
    print("-" * 56)
    failed = False
    for g, b in sorted(base_sp.items()):
        f = fresh_sp.get(g)
        if f is None:
            print(f"{g:<24} {b:>8.2f}x {'—':>9}  MISSING (row absent in fresh run)")
            failed = True
            continue
        ok = f >= b * (1.0 - REGRESSION_TOLERANCE)
        verdict = "ok" if ok else f"REGRESSION (>{REGRESSION_TOLERANCE:.0%} below baseline)"
        print(f"{g:<24} {b:>8.2f}x {f:>8.2f}x  {verdict}")
        failed |= not ok
    if failed:
        print("\nbatched-encoding speedup regressed; see BENCH_encode_batch.json for baselines")
        return 1
    print("\nall batched-encoding speedups within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
