#!/usr/bin/env python3
"""Compare a fresh bench run against its checked-in baseline.

Usage:
    cargo bench -p gbm-bench --bench encode_batch | tee bench_out.txt
    python3 scripts/check_bench_regression.py [--quick] bench_out.txt

    cargo bench -p gbm-bench --bench train_step | tee train_step_out.txt
    python3 scripts/check_bench_regression.py --bench train_step [--quick] train_step_out.txt

    cargo bench -p gbm-bench --bench serve_query | tee serve_query_out.txt
    python3 scripts/check_bench_regression.py --bench serve_query [--quick] serve_query_out.txt

    cargo bench -p gbm-bench --bench serve_concurrent | tee serve_concurrent_out.txt
    python3 scripts/check_bench_regression.py --bench serve_concurrent [--quick] serve_concurrent_out.txt

Absolute times are machine-dependent, so every gate is on *ratios inside one
run*:

* `encode_batch` (default): for every config group, the speedup of the best
  batched variant (`batched_b*` / `store_build`) over `per_graph_replica`
  (the PR 1 path) is compared against the same speedup recorded in
  BENCH_encode_batch.json. A fresh speedup more than REGRESSION_TOLERANCE
  worse than baseline fails — the signal that batching stopped paying for
  itself, however fast the host is.

* `train_step`: for every batch-size group, the cost ratio of each
  contrastive objective over `bce` (time(objective) / time(bce)) is compared
  against BENCH_train_step.json. A fresh ratio more than
  REGRESSION_TOLERANCE above baseline fails — the signal that in-batch
  objectives stopped being "nearly free" on top of the shared batched
  forward.

* `serve_query`: per pool group, two speedups of the serving path over its
  unbatched per-query baselines — `per_query_head_scan / best
  serve_rerank_*` (the head leaving the hot loop) and
  `per_query_cosine_scan / best serve_b*` (the pure coalescing + partial
  select win) — compared against BENCH_serve_query.json. A fresh speedup
  more than REGRESSION_TOLERANCE below baseline fails. The
  `serve_query_scan_*` groups additionally gate the quantized path:
  `scan_f32 / best scan_i8_*` (the int8 coarse-scan + exact-re-rank win
  over the dense f32 scan; the bench itself asserts ranking equivalence
  before timing, so an equivalence regression fails the bench step
  outright) and the IVF path: `i8_vs_ivf_scan = best scan_i8_* /
  scan_ivf` (the sub-linear win over the full int8 scan), plus two
  absolute floors from `meta.ivf_floors` — every printed
  `<group>/recall_ivf` row must reach `min_recall_at_10`, and at full
  scale the IVF speedup must reach `min_speedup_full`. The
  `serve_query_obs_*` groups carry an absolute metrics-overhead ceiling
  from `meta.metrics_overhead`: `server_metrics_on / server_metrics_off`
  (the concurrent Server query sweep with the gbm-obs registry enabled vs
  instrumented out) must stay under `max_ratio` — the "metrics are cheap
  enough to leave on" acceptance criterion, checked fresh-run-only like
  the floors.

* `serve_concurrent`: per pool group, two ratio families against
  BENCH_serve_concurrent.json — `scaling_tT = scan_t1 / scan_tT` (the
  worker fan-out must not cost throughput; a worker scanning shards it
  does not own, or scans serialized behind a held write lock, craters
  this on any host) and `tail_tT = p50_tT / p99_tT` (a p99 blowing up
  relative to p50 is the tail-latency regression signature, host speed
  cancels out). Both are higher-is-better. Additionally every fresh
  `p99_tT` must stay under the absolute `meta.p99_ceiling_ms` ceiling for
  the section — the only absolute-time gate in this script, set loose
  enough (~5-7x baseline) that host variance passes but a real tail
  pathology does not.

`--quick` compares against the `quick_ms` baseline section (the CI smoke
run, `GBM_BENCH_SCALE=quick`); the default compares against `full_ms`.
"""

import json
import re
import sys
from pathlib import Path

REGRESSION_TOLERANCE = 0.20  # fail when a gated ratio degrades by more than 20%
ROOT = Path(__file__).resolve().parent.parent
BASELINES = {
    "encode_batch": ROOT / "BENCH_encode_batch.json",
    "train_step": ROOT / "BENCH_train_step.json",
    "serve_query": ROOT / "BENCH_serve_query.json",
    "serve_concurrent": ROOT / "BENCH_serve_concurrent.json",
}

ROW = re.compile(
    r"(?P<name>\w+/\S+)\s+time:\s+(?P<value>[0-9.]+)\s*(?P<unit>ms|µs|us)/iter"
)

UNIT_MS = {"ms": 1.0, "µs": 1e-3, "us": 1e-3}


def parse_run(text: str, bench: str) -> dict:
    times = {}
    for m in ROW.finditer(text):
        name = m.group("name")
        if name.startswith(bench):
            times[name] = float(m.group("value")) * UNIT_MS[m.group("unit")]
    return times


def encode_batch_ratios(times: dict) -> dict:
    """Per config group: time(per_graph_replica) / time(best batched).

    Higher is better; a fresh value *below* baseline is a regression.
    """
    out = {}
    groups = {name.split("/")[0] for name in times}
    for g in sorted(groups):
        base = times.get(f"{g}/per_graph_replica")
        batched = [
            t
            for name, t in times.items()
            if name.startswith(f"{g}/")
            and ("batched_b" in name or name.endswith("store_build"))
        ]
        if base is None or not batched:
            continue
        out[g] = base / min(batched)
    return out


def train_step_ratios(times: dict) -> dict:
    """Per batch-size group and contrastive objective: time(obj) / time(bce).

    Lower is better; a fresh value *above* baseline is a regression.
    """
    out = {}
    groups = {name.split("/")[0] for name in times}
    for g in sorted(groups):
        bce = times.get(f"{g}/bce")
        if bce is None:
            continue
        for name, t in times.items():
            prefix = f"{g}/"
            if name.startswith(prefix) and not name.endswith("/bce"):
                out[name] = t / bce
    return out


def serve_query_ratios(times: dict) -> dict:
    """Per pool group: baseline time / best serving-path time.

    Higher is better; a fresh value *below* baseline is a regression.
    `serve_b*` names the cosine serving variants, `serve_rerank_*` the
    head-reranked ones — each is gated against its like-for-like baseline.
    """
    out = {}
    groups = {name.split("/")[0] for name in times}
    for g in sorted(groups):
        head = times.get(f"{g}/per_query_head_scan")
        cosine = times.get(f"{g}/per_query_cosine_scan")
        rerank = [
            t for name, t in times.items() if name.startswith(f"{g}/serve_rerank_")
        ]
        serve = [t for name, t in times.items() if name.startswith(f"{g}/serve_b")]
        if head is not None and rerank:
            out[f"{g}/head_vs_rerank"] = head / min(rerank)
        if cosine is not None and serve:
            out[f"{g}/cosine_vs_serve"] = cosine / min(serve)
        scan_f32 = times.get(f"{g}/scan_f32")
        scan_i8 = [t for name, t in times.items() if name.startswith(f"{g}/scan_i8_")]
        if scan_f32 is not None and scan_i8:
            out[f"{g}/f32_vs_i8_scan"] = scan_f32 / min(scan_i8)
        scan_ivf = times.get(f"{g}/scan_ivf")
        if scan_ivf is not None and scan_i8:
            out[f"{g}/i8_vs_ivf_scan"] = min(scan_i8) / scan_ivf
    return out


def serve_concurrent_ratios(times: dict) -> dict:
    """Per pool group: worker-scaling and tail-latency ratios.

    `scaling_tT` = scan_t1 / scan_tT — the T-worker fan-out relative to one
    worker (1-core hosts sit near 1.0; fan-out bugs crater it anywhere).
    `tail_tT` = p50_tT / p99_tT — how close the tail sits to the median
    (host speed cancels; a growing tail drops it). Higher is better for
    both.
    """
    out = {}
    groups = {name.split("/")[0] for name in times}
    for g in sorted(groups):
        t1 = times.get(f"{g}/scan_t1")
        for name, t in sorted(times.items()):
            prefix = f"{g}/scan_t"
            if t1 is not None and name.startswith(prefix) and name != f"{g}/scan_t1":
                out[f"{g}/scaling_t{name[len(prefix):]}"] = t1 / t
            if name.startswith(f"{g}/p50_t"):
                tt = name.split("_t")[-1]
                p99 = times.get(f"{g}/p99_t{tt}")
                if p99 is not None:
                    out[f"{g}/tail_t{tt}"] = t / p99
    return out


RECALL_ROW = re.compile(r"(?P<name>\S+/recall_ivf):\s+(?P<value>[0-9.]+)")


def ivf_floor_failures(run_text: str, fresh: dict, baseline_doc: dict, quick: bool) -> list:
    """Absolute IVF gates from `meta.ivf_floors`: every printed
    `<group>/recall_ivf` row must reach `min_recall_at_10`, and (full scale
    only — quick pools are too small for the sub-linear win to be stable)
    `min(scan_i8_*) / scan_ivf` must reach `min_speedup_full`. Unlike the
    ratio gates these do not drift with the baseline: they are the
    acceptance criteria themselves."""
    floors = baseline_doc.get("meta", {}).get("ivf_floors", {})
    msgs = []
    min_recall = floors.get("min_recall_at_10")
    if min_recall is not None:
        recalls = RECALL_ROW.findall(run_text)
        groups_with_ivf = {
            name.split("/")[0] for name in fresh if name.endswith("/scan_ivf")
        }
        if groups_with_ivf and not recalls:
            msgs.append(
                "scan_ivf was timed but no recall_ivf row was printed — "
                "rerun the bench without filtering its stdout"
            )
        for name, val in recalls:
            if float(val) < min_recall:
                msgs.append(
                    f"{name}: recall {float(val):.3f} below the {min_recall} floor"
                )
    min_speedup = floors.get("min_speedup_full")
    if min_speedup is not None and not quick:
        groups = {name.split("/")[0] for name in fresh}
        for g in sorted(groups):
            ivf = fresh.get(f"{g}/scan_ivf")
            i8 = [t for name, t in fresh.items() if name.startswith(f"{g}/scan_i8_")]
            if ivf is None or not i8:
                continue
            speedup = min(i8) / ivf
            if speedup < min_speedup:
                msgs.append(
                    f"{g}: IVF speedup over the int8 full scan {speedup:.2f}x "
                    f"below the {min_speedup}x floor"
                )
    return msgs


def metrics_overhead_failures(fresh: dict, baseline_doc: dict) -> list:
    """Absolute observability gate from `meta.metrics_overhead`: in every
    `serve_query_obs_*` group, the metrics-enabled Server query sweep must
    stay within `max_ratio` of the instrumented-out baseline measured in
    the same run. Host speed cancels; like the IVF floors this does not
    drift with the baseline — it is the acceptance criterion itself."""
    max_ratio = baseline_doc.get("meta", {}).get("metrics_overhead", {}).get("max_ratio")
    if max_ratio is None:
        return []
    msgs = []
    pairs = 0
    for name, on in sorted(fresh.items()):
        if not name.endswith("/server_metrics_on"):
            continue
        g = name.rsplit("/", 1)[0]
        off = fresh.get(f"{g}/server_metrics_off")
        if off is None:
            msgs.append(f"{g}: server_metrics_on timed but server_metrics_off missing")
            continue
        pairs += 1
        ratio = on / off
        if ratio > max_ratio:
            msgs.append(
                f"{g}: metrics-on query sweep is {ratio:.3f}x the "
                f"instrumented-out baseline (ceiling {max_ratio}x)"
            )
    if pairs == 0 and not msgs:
        msgs.append(
            "meta.metrics_overhead is set but no server_metrics_on/off rows "
            "appeared in the fresh run — rerun the full serve_query bench"
        )
    return msgs


def p99_ceiling_failures(fresh: dict, baseline_doc: dict, quick: bool) -> list:
    """Absolute tail gate: fresh p99 rows must stay under the baseline's
    `meta.p99_ceiling_ms` for the section. Returns failure messages."""
    ceiling = baseline_doc.get("meta", {}).get("p99_ceiling_ms", {})
    limit = ceiling.get("quick" if quick else "full")
    if limit is None:
        return []
    return [
        f"{name}: {t:.3f} ms exceeds the p99 ceiling of {limit:.1f} ms"
        for name, t in sorted(fresh.items())
        if "/p99_t" in name and t > limit
    ]


# per-bench: (ratio fn, True when higher-is-better)
GATES = {
    "encode_batch": (encode_batch_ratios, True),
    "train_step": (train_step_ratios, False),
    "serve_query": (serve_query_ratios, True),
    "serve_concurrent": (serve_concurrent_ratios, True),
}


def main() -> int:
    args = sys.argv[1:]
    quick = "--quick" in args
    args = [a for a in args if a != "--quick"]
    bench = "encode_batch"
    if "--bench" in args:
        i = args.index("--bench")
        try:
            bench = args[i + 1]
        except IndexError:
            print(__doc__)
            return 2
        del args[i : i + 2]
    if len(args) != 1 or bench not in GATES:
        print(__doc__)
        return 2
    ratio_fn, higher_is_better = GATES[bench]

    run_text = Path(args[0]).read_text()
    fresh = parse_run(run_text, bench)
    if not fresh:
        print(
            f"error: no {bench} rows found in input "
            "(expected 'group/name time: X ms/iter')"
        )
        return 2

    baseline_doc = json.loads(BASELINES[bench].read_text())
    section = "quick_ms" if quick else "full_ms"
    base_times = baseline_doc[section]

    fresh_r = ratio_fn(fresh)
    base_r = ratio_fn(base_times)

    unit = "x" if higher_is_better else "×bce"
    print(f"{'gate':<28} {'baseline':>10} {'fresh':>10}  verdict")
    print("-" * 62)
    # every failure also emits one self-contained line — measured value,
    # required threshold, and the bench key — so a CI log tail is enough
    # to see exactly which gate tripped and by how much
    failures = []
    for g, b in sorted(base_r.items()):
        f = fresh_r.get(g)
        op = ">=" if higher_is_better else "<="
        if higher_is_better:
            threshold = b * (1.0 - REGRESSION_TOLERANCE)
        else:
            threshold = b * (1.0 + REGRESSION_TOLERANCE)
        if f is None:
            print(f"{g:<28} {b:>9.2f}{unit} {'—':>10}  MISSING (row absent in fresh run)")
            failures.append(
                f"{bench}:{g}: measured (missing), required {op} {threshold:.2f}{unit}"
            )
            continue
        ok = f >= threshold if higher_is_better else f <= threshold
        verdict = "ok" if ok else f"REGRESSION (>{REGRESSION_TOLERANCE:.0%} off baseline)"
        print(f"{g:<28} {b:>9.2f}{unit} {f:>9.2f}{unit}  {verdict}")
        if not ok:
            failures.append(
                f"{bench}:{g}: measured {f:.2f}{unit}, "
                f"required {op} {threshold:.2f}{unit}"
            )
    if bench == "serve_concurrent":
        failures += [
            f"{bench}:{msg}" for msg in p99_ceiling_failures(fresh, baseline_doc, quick)
        ]
    if bench == "serve_query":
        failures += [
            f"{bench}:{msg}"
            for msg in ivf_floor_failures(run_text, fresh, baseline_doc, quick)
        ]
        failures += [
            f"{bench}:{msg}" for msg in metrics_overhead_failures(fresh, baseline_doc)
        ]
    if failures:
        for line in failures:
            print(f"FAIL {line}")
        print(f"\n{bench} gates failed; see {BASELINES[bench].name} for baselines")
        return 1
    print(f"\nall {bench} ratios within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
