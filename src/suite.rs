//! Umbrella library for the GraphBinMatch reproduction workspace.
//!
//! This crate exists so that the workspace root can host `examples/` and
//! `tests/` that span every member crate. The real public API lives in the
//! [`graphbinmatch`] facade crate; see the README for a tour.

pub use graphbinmatch as api;
