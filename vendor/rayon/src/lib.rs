//! A compact stand-in for `rayon` built on `std::thread::scope`.
//!
//! The workspace vendors its external dependencies (see the root README);
//! this crate implements the data-parallel surface the codebase uses:
//!
//! * `slice.par_iter()` / `vec.par_iter()`,
//! * `slice.par_chunks(n)` / `slice.par_chunks_mut(n)`,
//! * adaptor chains `.map(..)`, `.zip(..)`, `.enumerate()`,
//! * terminals `.for_each(..)` and `.collect::<Vec<_>>() / ::<HashMap<_,_>>()`.
//!
//! Unlike real rayon there is no work-stealing pool: each *stage* splits its
//! items into contiguous per-thread buckets and runs them on scoped threads,
//! falling back to the current thread when the workload is too small to
//! amortize a spawn (see [`MIN_ITEMS_PER_THREAD`]). Order is preserved, so
//! `collect` sees items in the same order as the sequential iterator — a
//! property the deterministic experiment harness relies on.

use std::num::NonZeroUsize;

/// Below this many items per would-be thread a stage runs sequentially by
/// default: an OS thread spawn costs tens of microseconds, which dwarfs
/// fine-grained stages (tensor-kernel rows). Coarse-grained callers whose
/// items are each worth milliseconds (e.g. GNN forwards) override this with
/// [`Par::with_min_len`].
const DEFAULT_MIN_ITEMS_PER_THREAD: usize = 16;

fn worker_count(items: usize, min_per_thread: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    avail.min(items / min_per_thread.max(1)).max(1)
}

/// Maps `items` to a new vector, preserving order, using scoped threads when
/// the workload is large enough.
fn parallel_map<T, U, F>(items: Vec<T>, min_per_thread: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let workers = worker_count(n, min_per_thread);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut buckets: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        buckets.push(std::mem::replace(&mut rest, tail));
    }
    buckets.push(rest);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| s.spawn(move || bucket.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// An eager "parallel iterator": adaptors apply immediately (in parallel for
/// [`Par::map`] / [`Par::for_each`]), terminals drain the buffered items.
pub struct Par<T> {
    items: Vec<T>,
    min_per_thread: usize,
}

impl<T: Send> Par<T> {
    fn new(items: Vec<T>) -> Par<T> {
        Par {
            items,
            min_per_thread: DEFAULT_MIN_ITEMS_PER_THREAD,
        }
    }

    /// Sets the minimum items per worker thread (as in real rayon). Use
    /// `with_min_len(1)` when each item is itself a coarse batch of work —
    /// otherwise small item counts run sequentially.
    pub fn with_min_len(mut self, n: usize) -> Par<T> {
        self.min_per_thread = n.max(1);
        self
    }

    /// Parallel map; preserves item order.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> Par<U> {
        Par {
            items: parallel_map(self.items, self.min_per_thread, f),
            min_per_thread: self.min_per_thread,
        }
    }

    /// Pairs items positionally with another parallel iterator.
    pub fn zip<U: Send>(self, other: Par<U>) -> Par<(T, U)> {
        Par {
            items: self.items.into_iter().zip(other.items).collect(),
            min_per_thread: self.min_per_thread,
        }
    }

    /// Attaches the item index.
    pub fn enumerate(self) -> Par<(usize, T)> {
        Par {
            items: self.items.into_iter().enumerate().collect(),
            min_per_thread: self.min_per_thread,
        }
    }

    /// Runs `f` over every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, self.min_per_thread, f);
    }

    /// Drains into any `FromIterator` collection, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

/// `.par_iter()` on shared slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// A parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> Par<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> Par<&'a T> {
        Par::new(self.iter().collect())
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> Par<&'a T> {
        Par::new(self.iter().collect())
    }
}

/// `.par_chunks(n)` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `n`-sized sub-slices (last may be shorter).
    fn par_chunks(&self, n: usize) -> Par<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, n: usize) -> Par<&[T]> {
        Par::new(self.chunks(n).collect())
    }
}

/// `.par_chunks_mut(n)` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable `n`-sized sub-slices.
    fn par_chunks_mut(&mut self, n: usize) -> Par<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, n: usize) -> Par<&mut [T]> {
        Par::new(self.chunks_mut(n).collect())
    }
}

/// One-stop imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, Par, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn par_map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn par_map_collect_hashmap() {
        let keys: Vec<usize> = (0..1000).collect();
        let m: HashMap<usize, usize> = keys.par_iter().map(|&k| (k, k * k)).collect();
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&7], 49);
    }

    #[test]
    fn par_chunks_mut_writes_every_cell() {
        let mut v = vec![0u32; 4096];
        v.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for (j, cell) in chunk.iter_mut().enumerate() {
                *cell = (i * 64 + j) as u32;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn zip_pairs_positionally() {
        let mut out = vec![0i64; 1000];
        let src: Vec<i64> = (0..1000).collect();
        out.par_chunks_mut(10)
            .zip(src.par_chunks(10))
            .for_each(|(o, s)| o.copy_from_slice(s));
        assert_eq!(out, src);
    }

    #[test]
    fn with_min_len_allows_coarse_items_to_parallelize() {
        // 4 items would run sequentially under the default threshold; with
        // min_len 1 they may spread across threads — results must be
        // identical either way
        let xs: Vec<u64> = (0..4).collect();
        let ys: Vec<u64> = xs.par_iter().with_min_len(1).map(|&x| x * 3).collect();
        assert_eq!(ys, vec![0, 3, 6, 9]);
    }

    #[test]
    fn tiny_workloads_run_sequentially_but_correctly() {
        let xs = [1, 2, 3];
        let ys: Vec<i32> = xs.par_iter().map(|&x| x + 1).collect();
        assert_eq!(ys, vec![2, 3, 4]);
    }
}
