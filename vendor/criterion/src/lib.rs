//! A minimal wall-clock benchmark harness exposing the subset of the
//! `criterion` API the workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function`, `sample_size`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up, then timed over enough
//! iterations to fill a fixed budget; the mean per-iteration time is printed.
//! There is no statistical analysis or HTML report — the point is a cheap,
//! dependency-free `cargo bench` that still surfaces relative costs.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Target warm-up time per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(60);

/// Times one closure; handed to `bench_function` callbacks.
pub struct Bencher {
    /// Mean per-iteration time of the measured run.
    elapsed_per_iter: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // warm-up, also yields a per-iter estimate
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters = ((MEASURE_BUDGET.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, 10_000_000)
            .min(self.iters.max(1) * 1_000_000); // sample_size keeps a soft cap
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed_per_iter = start.elapsed() / iters as u32;
        self.iters = iters;
    }
}

fn report(name: &str, b: &Bencher) {
    let t = b.elapsed_per_iter;
    let pretty = if t >= Duration::from_millis(1) {
        format!("{:>10.3} ms", t.as_secs_f64() * 1e3)
    } else {
        format!("{:>10.3} µs", t.as_secs_f64() * 1e6)
    };
    println!("{name:<48} time: {pretty}/iter  ({} iters)", b.iters);
}

/// Benchmark registry/runner (criterion-compatible shell).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        report(&id, &b);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the harness sizes runs by a
    /// fixed time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
            iters: 1,
        };
        f(&mut b);
        report(&id, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one name, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function("inner", |b| b.iter(|| 2 * 2));
        g.finish();
    }
}
