//! A minimal property-testing harness exposing the subset of the `proptest`
//! API the workspace's tests use: the [`proptest!`] macro, [`Strategy`] with
//! range / [`Just`] / [`prop_oneof!`] / [`collection::vec`] strategies, and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest: failing cases are reported with their
//! case number but are **not shrunk**, and sampling is deterministic per
//! test function (seeded from the test name) so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::RngExt;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A recipe for generating random values of one type.
///
/// Object-safe (sampling takes a concrete [`StdRng`]) so heterogeneous
/// strategies can be unioned by [`prop_oneof!`].
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.random_range(self.clone())
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given options; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::Range<i32>> for SizeRange {
        fn from(r: std::ops::Range<i32>) -> Self {
            SizeRange {
                lo: r.start as usize,
                hi: r.end as usize,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.lo..self.size.hi.max(self.size.lo + 1));
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Stable 64-bit FNV-1a hash of the test name — the per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(
            {
                let boxed: Box<dyn $crate::Strategy<Value = _>> = Box::new($strategy);
                boxed
            }
        ),+])
    };
}

/// Asserts a condition inside a property (panics with the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Declares property tests: each `fn` samples its arguments from the given
/// strategies and runs the body for `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            for __case in 0..config.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2u32), Just(3u32)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 0.0f32..=1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        /// Unions only produce their options.
        #[test]
        fn oneof_produces_options(v in arb_small()) {
            prop_assert!((1..=3).contains(&v));
        }

        /// Collection vec respects the size range.
        #[test]
        fn vec_sizes(xs in crate::collection::vec(0i32..5, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
            prop_assert!(xs.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    #[test]
    fn seed_is_stable_per_name() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }
}
