//! A compact, dependency-free stand-in for the `rand` crate.
//!
//! The workspace vendors its external dependencies (see the root README);
//! this crate implements exactly the surface the codebase uses:
//!
//! * [`RngExt::random_range`] over integer and float ranges,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — xoshiro256++ seeded through SplitMix64,
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Everything is deterministic given a seed, across platforms: the
//! experiment harness and the test suite rely on that.

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform sample from `range` (half-open or inclusive; integer or
    /// float). Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// A range that knows how to sample itself uniformly.
///
/// The element type is a trait *parameter* (as in real rand), so type
/// inference can flow from the call site's expected result type into the
/// range's literal type — `rng.random_range(0.0..1.0) < p` with `p: f32`
/// resolves the literals to `f32`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Uniform integer in `[0, span)` without modulo bias (rejection sampling).
fn uniform_u64<G: RngCore + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Uniform f32 in `[0, 1)` using the top 24 bits of one word.
fn unit_f32<G: RngCore + ?Sized>(rng: &mut G) -> f32 {
    ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f32(rng);
        // guard against round-up at the high end of wide ranges
        if v >= self.end {
            self.end - (self.end - self.start) * f32::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = ((rng.next_u64() >> 40) as f32) * (1.0 / ((1u64 << 24) - 1) as f32);
        (lo + (hi - lo) * u).clamp(lo, hi)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// seeded by expanding the `u64` seed through SplitMix64. Fast, decent
    /// statistical quality, and fully deterministic across platforms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngExt;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..u64::MAX),
                b.random_range(0u64..u64::MAX)
            );
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..1u64 << 60)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..1u64 << 60)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.random_range(-4i32..=4);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn float_ranges_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut lo_half = 0;
        for _ in 0..1000 {
            let v = rng.random_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&v));
            if v < 0.5 {
                lo_half += 1;
            }
            let w = rng.random_range(0.0f32..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
        assert!(
            (300..700).contains(&lo_half),
            "uniformity way off: {lo_half}"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
