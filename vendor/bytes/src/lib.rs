//! A minimal stand-in for the `bytes` crate: the [`Buf`] / [`BufMut`]
//! little-endian accessors the VISA object-file codec uses, implemented for
//! `&[u8]` (reading advances the slice) and `Vec<u8>` (writing appends).

/// Sequential little-endian reads; each call consumes from the front.
///
/// Callers must check remaining length first (as the real crate requires);
/// reads past the end panic.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        let (_, rest) = self.split_at(n);
        *self = rest;
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_le_bytes([head[0], head[1]])
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes([head[0], head[1], head[2], head[3]])
    }

    fn get_i32_le(&mut self) -> i32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        i32::from_le_bytes([head[0], head[1], head[2], head[3]])
    }
}

/// Sequential little-endian writes (append-only).
pub trait BufMut {
    /// Writes one byte.
    fn put_u8(&mut self, v: u8);
    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Writes a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_u16_le(0x1234);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_i32_le(-7);
        let mut r: &[u8] = &out;
        assert_eq!(r.remaining(), 11);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32_le(), -7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn reading_past_end_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u32_le();
    }
}
