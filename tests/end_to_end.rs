//! Cross-crate integration tests: the full paper pipeline from source text
//! to matching score, exercised through the public facade.

use graphbinmatch::prelude::*;

const C_PROGRAM: &str = "
    int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
    int main() {
        int s = 0;
        for (int i = 0; i < 10; i++) { s += fib(i); }
        print(s);
        return 0;
    }";

const JAVA_PROGRAM: &str = "
    class Main {
        static int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        public static void main(String[] args) {
            int s = 0;
            for (int i = 0; i < 10; i++) { s += fib(i); }
            System.out.println(s);
        }
    }";

#[test]
fn full_pipeline_preserves_program_behaviour() {
    let c = Pipeline::compile_source(SourceLang::MiniC, C_PROGRAM).unwrap();
    let reference = graphbinmatch::lir::interp::run_function(&c, "main", &[], 10_000_000).unwrap();
    assert_eq!(reference.output, vec![88]); // Σ fib(0..9)

    for compiler in [Compiler::Clang, Compiler::Gcc] {
        for level in OptLevel::ALL {
            let obj = Pipeline::compile_to_binary(&c, compiler, level).unwrap();
            let lifted = Pipeline::decompile(&obj);
            let out = graphbinmatch::lir::interp::run_function(&lifted, "main", &[], 100_000_000)
                .unwrap_or_else(|e| panic!("{compiler}/{level}: {e}"));
            assert_eq!(out.output, reference.output, "{compiler}/{level}");
        }
    }
}

#[test]
fn both_languages_agree_on_behaviour_and_graphs_differ_in_size() {
    let c = Pipeline::compile_source(SourceLang::MiniC, C_PROGRAM).unwrap();
    let j = Pipeline::compile_source(SourceLang::MiniJava, JAVA_PROGRAM).unwrap();
    let co = graphbinmatch::lir::interp::run_function(&c, "main", &[], 10_000_000).unwrap();
    let jo = graphbinmatch::lir::interp::run_function(&j, "main", &[], 10_000_000).unwrap();
    assert_eq!(co.output, jo.output, "same task, same behaviour");

    let cg = build_graph(&c);
    let jg = build_graph(&j);
    assert!(jg.num_nodes() > cg.num_nodes(), "Fig. 4 size gap");
    cg.validate().unwrap();
    jg.validate().unwrap();
}

#[test]
fn score_pair_is_in_unit_interval_for_all_artifact_combinations() {
    let c = Pipeline::compile_source(SourceLang::MiniC, C_PROGRAM).unwrap();
    let j = Pipeline::compile_source(SourceLang::MiniJava, JAVA_PROGRAM).unwrap();
    let obj = Pipeline::compile_to_binary(&c, Compiler::Clang, OptLevel::Oz).unwrap();
    let lifted = Pipeline::decompile(&obj);

    let mut p = Pipeline::fit_tokenizer(&[&c, &j, &lifted]);
    for (a, b) in [(&c, &j), (&lifted, &j), (&lifted, &c), (&c, &c)] {
        let s = p.score_pair(a, b);
        assert!((0.0..=1.0).contains(&s), "score {s}");
    }
}

#[test]
fn trained_model_beats_chance_on_held_out_pairs() {
    use gbm_eval::{run_experiment, ExperimentSpec, HarnessConfig};
    let spec = ExperimentSpec::cross_language(
        SourceLang::MiniC,
        SourceLang::MiniJava,
        Compiler::Clang,
        OptLevel::Oz,
    );
    let mut cfg = HarnessConfig::quick();
    cfg.epochs = 5;
    cfg.with_seed(7);
    let result = run_experiment(&spec, &cfg);
    let gbm = &result.methods[0];
    assert_eq!(gbm.method, "GraphBinMatch");
    // balanced pairs ⇒ chance F1 ≈ 0.5/0.67; the trained model must do better
    // than coin-flipping on at least the training curve
    let first = result.train_stats.first().unwrap();
    let last = result.train_stats.last().unwrap();
    assert!(
        last.loss <= first.loss + 0.05,
        "training diverged: {first:?} -> {last:?}"
    );
}

/// Seed helper so the integration test reads naturally.
trait WithSeed {
    fn with_seed(&mut self, s: u64);
}
impl WithSeed for gbm_eval::HarnessConfig {
    fn with_seed(&mut self, s: u64) {
        self.seed = s;
    }
}

#[test]
fn dataset_statistics_match_table1_shape() {
    use gbm_datasets::{clcdsa, DatasetConfig};
    let ds = clcdsa(DatasetConfig {
        num_tasks: 4,
        solutions_per_task: 3,
        seed: 1,
    });
    let stats = ds.stats(Compiler::Clang, OptLevel::Oz);
    assert_eq!(stats.len(), 2);
    for s in &stats {
        assert_eq!(s.sources, 12);
        assert_eq!(s.ir, s.sources, "synthetic generator: 100% compile rate");
        assert_eq!(s.decompiled, s.binaries);
    }
}
