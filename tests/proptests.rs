//! Property-based tests over the whole pipeline.
//!
//! The task library doubles as a random-program generator: any
//! `(task, seed, language)` triple yields a valid program, which lets
//! proptest exercise parser round-trips, optimizer semantics preservation,
//! and compile→decompile equivalence on a large space of real programs.

use proptest::prelude::*;

use gbm_binary::{compile_to_binary, decompile::decompile, optimize, Compiler, OptLevel};
use gbm_datasets::{style::Style, tasks};
use gbm_frontends::{compile, SourceLang};
use gbm_lir::interp::run_function;
use gbm_lir::{parse_module, verify_module};

fn arb_lang() -> impl Strategy<Value = SourceLang> {
    prop_oneof![Just(SourceLang::MiniC), Just(SourceLang::MiniJava)]
}

fn arb_level() -> impl Strategy<Value = OptLevel> {
    prop_oneof![
        Just(OptLevel::O0),
        Just(OptLevel::O1),
        Just(OptLevel::O2),
        Just(OptLevel::O3),
        Just(OptLevel::Oz),
    ]
}

fn arb_compiler() -> impl Strategy<Value = Compiler> {
    prop_oneof![Just(Compiler::Clang), Just(Compiler::Gcc)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated program compiles, verifies, and prints something.
    #[test]
    fn generated_programs_compile_and_run(
        task in 0usize..tasks::NUM_TASKS,
        seed in 0u64..10_000,
        lang in arb_lang(),
    ) {
        let src = tasks::emit(task, lang, &mut Style::new(seed));
        let m = compile(lang, "p", &src).expect("generated program compiles");
        verify_module(&m).expect("verifies");
        let out = run_function(&m, "main", &[], 5_000_000).expect("runs");
        prop_assert!(!out.output.is_empty());
    }

    /// The LIR textual format round-trips: print → parse → print is a fixpoint.
    #[test]
    fn lir_print_parse_roundtrip(
        task in 0usize..tasks::NUM_TASKS,
        seed in 0u64..10_000,
        lang in arb_lang(),
    ) {
        let src = tasks::emit(task, lang, &mut Style::new(seed));
        let m = compile(lang, "p", &src).unwrap();
        let text = m.to_text();
        let parsed = parse_module(&text).expect("parses back");
        prop_assert_eq!(parsed.to_text(), text);
    }

    /// Optimization preserves observable behaviour at every level.
    #[test]
    fn optimizer_preserves_semantics(
        task in 0usize..tasks::NUM_TASKS,
        seed in 0u64..10_000,
        lang in arb_lang(),
        level in arb_level(),
    ) {
        let src = tasks::emit(task, lang, &mut Style::new(seed));
        let m = compile(lang, "p", &src).unwrap();
        let reference = run_function(&m, "main", &[], 5_000_000).unwrap();
        let mut opt = m.clone();
        optimize(&mut opt, level);
        verify_module(&opt).expect("optimized module verifies");
        let out = run_function(&opt, "main", &[], 5_000_000).unwrap();
        prop_assert_eq!(&out.output, &reference.output, "level {}", level);
    }

    /// Compile → binary → decompile → interpret equals direct interpretation.
    #[test]
    fn binary_roundtrip_preserves_semantics(
        task in 0usize..tasks::NUM_TASKS,
        seed in 0u64..10_000,
        lang in arb_lang(),
        compiler in arb_compiler(),
        level in arb_level(),
    ) {
        let src = tasks::emit(task, lang, &mut Style::new(seed));
        let m = compile(lang, "p", &src).unwrap();
        let reference = run_function(&m, "main", &[], 5_000_000).unwrap();
        let obj = compile_to_binary(&m, compiler, level).expect("codegen");
        // byte round-trip as well
        let obj = gbm_binary::ObjectFile::decode(&obj.encode()).expect("bytes");
        let lifted = decompile(&obj);
        verify_module(&lifted).expect("lifted verifies");
        let out = run_function(&lifted, "main", &[], 200_000_000).unwrap();
        prop_assert_eq!(&out.output, &reference.output, "{}/{}", compiler, level);
    }

    /// Program graphs are structurally valid with positional data edges.
    #[test]
    fn graphs_are_well_formed(
        task in 0usize..tasks::NUM_TASKS,
        seed in 0u64..10_000,
        lang in arb_lang(),
    ) {
        let src = tasks::emit(task, lang, &mut Style::new(seed));
        let m = compile(lang, "p", &src).unwrap();
        let g = gbm_progml::build_graph(&m);
        g.validate().expect("edges in range");
        prop_assert!(g.num_nodes() > 0);
        let [control, data, _call] = g.edge_counts();
        prop_assert!(control > 0, "every program has control flow");
        prop_assert!(data > 0, "every program has dataflow");
    }

    /// Tokenizer encodings are always fixed-length and in-vocabulary.
    #[test]
    fn tokenizer_encodings_bounded(
        task in 0usize..tasks::NUM_TASKS,
        seed in 0u64..10_000,
    ) {
        use gbm_tokenizer::{Tokenizer, TokenizerConfig};
        let src = tasks::emit(task, SourceLang::MiniC, &mut Style::new(seed));
        let m = compile(SourceLang::MiniC, "p", &src).unwrap();
        let g = gbm_progml::build_graph(&m);
        let tok = Tokenizer::train_on_graphs(
            &[&g],
            gbm_progml::NodeTextMode::FullText,
            TokenizerConfig { vocab_cap: 128, ..Default::default() },
        );
        prop_assert!(tok.seq_len().is_power_of_two());
        prop_assert!(tok.vocab_size() <= 128);
        for node in &g.nodes {
            let ids = tok.encode(&node.full_text);
            prop_assert_eq!(ids.len(), tok.seq_len());
            prop_assert!(ids.iter().all(|&id| (id as usize) < tok.vocab_size()));
        }
    }

    /// Metric values stay in [0,1] for arbitrary score/label vectors.
    #[test]
    fn metrics_bounded(
        scores in proptest::collection::vec(0.0f32..=1.0, 1..60),
        seed in 0u64..1000,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let labels: Vec<f32> = scores.iter().map(|_| {
            if rng.random_range(0..2) == 1 { 1.0 } else { 0.0 }
        }).collect();
        for t in [0.1f32, 0.5, 0.9] {
            let p = gbm_eval::Prf::at(&scores, &labels, t);
            prop_assert!((0.0..=1.0).contains(&p.precision));
            prop_assert!((0.0..=1.0).contains(&p.recall));
            prop_assert!((0.0..=1.0).contains(&p.f1));
        }
    }

    /// The similarity-matrix kernel agrees with naive per-entry dot products,
    /// for arbitrary shapes and values, and is symmetric under swapping its
    /// arguments (Sᵀ(a,b) = S(b,a)).
    #[test]
    fn similarity_matrix_kernel_matches_naive_dots(
        n in 1usize..5,
        m in 1usize..5,
        d in 1usize..6,
        cells in proptest::collection::vec(-2.0f32..2.0, 60),
    ) {
        use gbm_tensor::{Graph, Tensor};
        let a_data: Vec<f32> = (0..n * d).map(|i| cells[i % cells.len()]).collect();
        let b_data: Vec<f32> = (0..m * d).map(|i| cells[(i * 7 + 3) % cells.len()]).collect();
        let g = Graph::new();
        let a = g.leaf(Tensor::from_vec(a_data.clone(), &[n, d]));
        let b = g.leaf(Tensor::from_vec(b_data.clone(), &[m, d]));
        let s = g.similarity_matrix(a, b);
        let vs = g.value(s);
        prop_assert_eq!(vs.dims(), &[n, m]);
        for i in 0..n {
            for j in 0..m {
                let naive: f32 = (0..d).map(|k| a_data[i * d + k] * b_data[j * d + k]).sum();
                let got = vs.data()[i * m + j];
                prop_assert!(
                    (got - naive).abs() <= 1e-4 * (1.0 + naive.abs()),
                    "entry ({}, {}): {} vs naive {}", i, j, got, naive
                );
            }
        }
        // transpose symmetry
        let swapped = g.similarity_matrix(b, a);
        let vt = g.value(swapped);
        for i in 0..n {
            for j in 0..m {
                prop_assert_eq!(vs.data()[i * m + j], vt.data()[j * n + i]);
            }
        }
    }

    /// The Hungarian assignment never beats the row-minima lower bound and
    /// never loses to the diagonal assignment.
    #[test]
    fn hungarian_bounds(
        n in 1usize..6,
        cells in proptest::collection::vec(0.0f32..10.0, 36),
    ) {
        use gbm_baselines::binpro::hungarian;
        let cost: Vec<Vec<f32>> = (0..n).map(|i| cells[i*6..i*6+n].to_vec()).collect();
        let opt = hungarian(&cost);
        let lower: f32 = cost.iter().map(|row| {
            row.iter().copied().fold(f32::INFINITY, f32::min)
        }).sum();
        let diagonal: f32 = (0..n).map(|i| cost[i][i]).sum();
        prop_assert!(opt >= lower - 1e-3, "opt {opt} < lower bound {lower}");
        prop_assert!(opt <= diagonal + 1e-3, "opt {opt} > diagonal {diagonal}");
    }
}
